"""Domain logic behind the serving endpoints (batch-first API).

:class:`ConstellationService` answers three question shapes, each as a
*batch* handler (lists in, lists out) so the micro-batcher can coalesce
concurrent requests into shared array work:

* ``passes_batch`` — upcoming contact windows per observer;
* ``presence_batch`` — availability statistics (coverage fraction,
  window/gap structure) derived from the same windows;
* ``link_budget_batch`` — instantaneous per-satellite geometry, RSSI
  breakdown, link margin, Doppler and airtime at one instant.

Batched requests that share query parameters are grouped and answered
through the fleet fast path
(:meth:`satiot.runtime.EphemerisCache.find_passes_fleet`): the whole
constellation is propagated as one struct-of-arrays
:class:`~satiot.orbits.sgp4_batch.SGP4Batch` call over the shared
grid, with GMST and the TEME→ECEF conversion computed once per group
rather than once per satellite (set ``SATIOT_BATCH_SGP4=0`` to fall
back to the per-satellite multi-observer sweep).  A group of one falls
back to the serial per-observer path — by the batch layer's
bit-identity contract all paths produce identical windows and share
cache entries, so mixing them is safe.

All handlers are synchronous and thread-safe under the serving layer's
single-worker executor (one batch in flight at a time per batcher).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constellations.catalog import (CONSTELLATION_SPECS, Constellation,
                                      build_constellation)
from ..core.stats import merge_intervals, total_length
from ..orbits.doppler import doppler_shift_hz
from ..orbits.frames import GeodeticPoint
from ..orbits.passes import ContactWindow, observer_geometry
from ..orbits.sgp4_batch import batching_enabled
from ..orbits.timebase import Epoch
from ..orbits.topocentric import ecef_states, look_angles_from_ecef
from ..phy.link_budget import LinkBudget
from ..phy.lora import LoRaModulation, sensitivity_dbm
from ..runtime.ephemeris_cache import EphemerisCache
from .cache import quantize_coord

__all__ = ["ConstellationService", "LinkBudgetRequest", "PassesRequest",
           "PresenceRequest", "DEFAULT_CONSTELLATION"]

DEFAULT_CONSTELLATION = "tianqi"
MAX_HORIZON_S = 7 * 86400.0


def _get_float(params: dict, key: str, default: float) -> float:
    value = params.get(key, default)
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"parameter {key!r} must be a number, "
                         f"got {value!r}") from exc


def _get_int(params: dict, key: str, default: int) -> int:
    value = params.get(key, default)
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"parameter {key!r} must be an integer, "
                         f"got {value!r}") from exc


@dataclass(frozen=True)
class _ObserverRequest:
    """Common observer/constellation fields of all query shapes."""

    latitude_deg: float
    longitude_deg: float
    altitude_km: float = 0.0
    constellation: str = DEFAULT_CONSTELLATION

    def observer(self) -> GeodeticPoint:
        return GeodeticPoint(self.latitude_deg, self.longitude_deg,
                             self.altitude_km)

    def site_dict(self) -> dict:
        return {"latitude_deg": self.latitude_deg,
                "longitude_deg": self.longitude_deg,
                "altitude_km": self.altitude_km}

    @staticmethod
    def _base_kwargs(params: dict,
                     known: Optional[Sequence[str]] = None) -> dict:
        constellation = str(params.get("constellation",
                                       DEFAULT_CONSTELLATION)).lower()
        # With ``known`` (the serving layer passes its loaded names,
        # which may include catalog-built constellations), validate
        # against what can actually be answered; without it, fall back
        # to the built-in Table-3 specs.
        valid = sorted(known) if known is not None \
            else sorted(CONSTELLATION_SPECS)
        if constellation not in valid:
            raise ValueError(
                f"unknown constellation {constellation!r}; choose from "
                f"{valid}")
        if "lat" not in params or "lon" not in params:
            raise ValueError("parameters 'lat' and 'lon' are required")
        kwargs = {
            "latitude_deg": _get_float(params, "lat", 0.0),
            "longitude_deg": _get_float(params, "lon", 0.0),
            "altitude_km": _get_float(params, "alt_km", 0.0),
            "constellation": constellation,
        }
        if not -90.0 <= kwargs["latitude_deg"] <= 90.0:
            raise ValueError("lat must be within [-90, 90]")
        if not -180.0 <= kwargs["longitude_deg"] <= 180.0:
            raise ValueError("lon must be within [-180, 180]")
        if not -0.5 <= kwargs["altitude_km"] <= 50.0:
            raise ValueError("alt_km must be within [-0.5, 50]")
        return kwargs

    def _quantized_site(self, decimals: int) -> Tuple[float, float, float]:
        return (quantize_coord(self.latitude_deg, decimals),
                quantize_coord(self.longitude_deg, decimals),
                quantize_coord(self.altitude_km, decimals))


@dataclass(frozen=True)
class PassesRequest(_ObserverRequest):
    """``/v1/passes``: contact windows over a prediction horizon."""

    horizon_s: float = 86400.0
    min_elevation_deg: float = 10.0
    max_passes: int = 0          # 0 = unlimited

    @classmethod
    def from_params(cls, params: dict,
                    known: Optional[Sequence[str]] = None,
                    ) -> "PassesRequest":
        kwargs = cls._base_kwargs(params, known=known)
        kwargs["horizon_s"] = _get_float(params, "horizon_s", 86400.0)
        kwargs["min_elevation_deg"] = _get_float(
            params, "min_elevation_deg", 10.0)
        kwargs["max_passes"] = _get_int(params, "max_passes", 0)
        if not 0.0 < kwargs["horizon_s"] <= MAX_HORIZON_S:
            raise ValueError(
                f"horizon_s must be in (0, {MAX_HORIZON_S:.0f}]")
        if not -10.0 <= kwargs["min_elevation_deg"] < 90.0:
            raise ValueError("min_elevation_deg must be in [-10, 90)")
        if kwargs["max_passes"] < 0:
            raise ValueError("max_passes must be non-negative")
        return cls(**kwargs)

    def group_key(self) -> tuple:
        return ("passes", self.constellation, self.horizon_s,
                self.min_elevation_deg)

    def cache_key(self, decimals: int = 2) -> tuple:
        return ("passes", self.constellation,
                self._quantized_site(decimals), self.horizon_s,
                self.min_elevation_deg, self.max_passes)


@dataclass(frozen=True)
class PresenceRequest(_ObserverRequest):
    """``/v1/presence``: availability statistics over a horizon."""

    horizon_s: float = 86400.0
    min_elevation_deg: float = 10.0

    @classmethod
    def from_params(cls, params: dict,
                    known: Optional[Sequence[str]] = None,
                    ) -> "PresenceRequest":
        kwargs = cls._base_kwargs(params, known=known)
        kwargs["horizon_s"] = _get_float(params, "horizon_s", 86400.0)
        kwargs["min_elevation_deg"] = _get_float(
            params, "min_elevation_deg", 10.0)
        if not 0.0 < kwargs["horizon_s"] <= MAX_HORIZON_S:
            raise ValueError(
                f"horizon_s must be in (0, {MAX_HORIZON_S:.0f}]")
        if not -10.0 <= kwargs["min_elevation_deg"] < 90.0:
            raise ValueError("min_elevation_deg must be in [-10, 90)")
        return cls(**kwargs)

    def group_key(self) -> tuple:
        return ("presence", self.constellation, self.horizon_s,
                self.min_elevation_deg)

    def cache_key(self, decimals: int = 2) -> tuple:
        return ("presence", self.constellation,
                self._quantized_site(decimals), self.horizon_s,
                self.min_elevation_deg)


@dataclass(frozen=True)
class LinkBudgetRequest(_ObserverRequest):
    """``/v1/link_budget``: instantaneous per-satellite link state."""

    t_offset_s: float = 0.0
    min_elevation_deg: float = 0.0
    spreading_factor: int = 0    # 0 = constellation default
    payload_bytes: int = 0       # 0 = constellation beacon payload
    raining: bool = False

    @classmethod
    def from_params(cls, params: dict,
                    known: Optional[Sequence[str]] = None,
                    ) -> "LinkBudgetRequest":
        kwargs = cls._base_kwargs(params, known=known)
        kwargs["t_offset_s"] = _get_float(params, "t_offset_s", 0.0)
        kwargs["min_elevation_deg"] = _get_float(
            params, "min_elevation_deg", 0.0)
        kwargs["spreading_factor"] = _get_int(
            params, "spreading_factor", 0)
        kwargs["payload_bytes"] = _get_int(params, "payload_bytes", 0)
        raining = params.get("raining", False)
        if isinstance(raining, str):
            raining = raining.strip().lower() in ("1", "true", "yes")
        kwargs["raining"] = bool(raining)
        if not 0.0 <= kwargs["t_offset_s"] <= MAX_HORIZON_S:
            raise ValueError(
                f"t_offset_s must be in [0, {MAX_HORIZON_S:.0f}]")
        if not -10.0 <= kwargs["min_elevation_deg"] < 90.0:
            raise ValueError("min_elevation_deg must be in [-10, 90)")
        if kwargs["spreading_factor"] and \
                not 5 <= kwargs["spreading_factor"] <= 12:
            raise ValueError("spreading_factor must be in 5..12 (or 0)")
        if not 0 <= kwargs["payload_bytes"] <= 255:
            raise ValueError("payload_bytes must be in 0..255")
        return cls(**kwargs)

    def group_key(self) -> tuple:
        return ("link_budget", self.constellation, self.t_offset_s)

    def cache_key(self, decimals: int = 2) -> tuple:
        return ("link_budget", self.constellation,
                self._quantized_site(decimals), self.t_offset_s,
                self.min_elevation_deg, self.spreading_factor,
                self.payload_bytes, self.raining)


class ConstellationService:
    """Answers pass/presence/link-budget queries over shared ephemerides."""

    def __init__(self,
                 constellations: Sequence[str] = (DEFAULT_CONSTELLATION,),
                 ephemeris: Optional[EphemerisCache] = None,
                 coarse_step_s: float = 30.0,
                 refine: str = "interp",
                 refine_tol_s: float = 0.5,
                 epochyr: int = 24, epochdays: float = 245.0,
                 seed: int = 7,
                 extra: Sequence[Constellation] = ()) -> None:
        if coarse_step_s <= 0:
            raise ValueError("coarse_step_s must be positive")
        self.coarse_step_s = float(coarse_step_s)
        self.refine = refine
        self.refine_tol_s = float(refine_tol_s)
        self.ephemeris = ephemeris or EphemerisCache()
        self._constellations: Dict[str, Constellation] = {}
        self._epochs: Dict[str, Epoch] = {}
        for name in constellations:
            const = build_constellation(name, epochyr=epochyr,
                                        epochdays=epochdays, seed=seed)
            key = const.name.lower()
            self._constellations[key] = const
            self._epochs[key] = const.satellites[0].tle.epoch
        # Pre-built constellations (e.g. catalog selections via
        # satiot.catalog.constellation_from_catalog) served alongside
        # the named Table-3 builds.  Their reference instant is the
        # newest member epoch — catalog element sets need not share one.
        for const in extra:
            key = const.name.lower()
            if key in self._constellations:
                raise ValueError(
                    f"constellation name {const.name!r} already loaded")
            self._constellations[key] = const
            self._epochs[key] = Epoch(
                max(sat.tle.epoch.jd for sat in const.satellites))
        if not self._constellations:
            raise ValueError("no constellations loaded")

    # ------------------------------------------------------------------
    @property
    def constellation_names(self) -> List[str]:
        return sorted(self._constellations)

    def constellation(self, name: str) -> Constellation:
        try:
            return self._constellations[name.lower()]
        except KeyError as exc:
            raise ValueError(
                f"constellation {name!r} not loaded; available: "
                f"{self.constellation_names}") from exc

    def epoch(self, name: str) -> Epoch:
        self.constellation(name)
        return self._epochs[name.lower()]

    # ------------------------------------------------------------------
    # Shared pass computation
    # ------------------------------------------------------------------
    def _windows_for_group(self, constellation: str,
                           observers: Sequence[GeodeticPoint],
                           horizon_s: float, min_elevation_deg: float,
                           ) -> List[List[ContactWindow]]:
        """Merged, rise-sorted windows of the whole constellation for
        each observer of a parameter-homogeneous group."""
        const = self.constellation(constellation)
        epoch = self.epoch(constellation)
        per_observer: List[List[ContactWindow]] = \
            [[] for _ in observers]
        if len(observers) == 1:
            # Serial per-observer path: identical results by the batch
            # layer's bit-identity contract, and the honest baseline for
            # the unbatched serving mode.
            for sat in const:
                windows = self.ephemeris.find_passes(
                    sat.propagator, observers[0], epoch, horizon_s,
                    coarse_step_s=self.coarse_step_s,
                    min_elevation_deg=min_elevation_deg,
                    refine_tol_s=self.refine_tol_s, refine=self.refine)
                per_observer[0].extend(windows)
        elif batching_enabled():
            # Fleet flush: all N satellites x M observers through one
            # constellation-batched propagation, one GMST/ECEF pass and
            # one shared observer-geometry precompute.  Extension stays
            # satellite-major, so responses are byte-identical to the
            # per-satellite loop below (stable rise-time sort).
            geometry = observer_geometry(observers)
            per_sat = self.ephemeris.find_passes_fleet(
                [sat.propagator for sat in const], observers, epoch,
                horizon_s, coarse_step_s=self.coarse_step_s,
                min_elevation_deg=min_elevation_deg,
                refine_tol_s=self.refine_tol_s, refine=self.refine,
                geometry=geometry)
            for rows in per_sat:
                for windows, acc in zip(rows, per_observer):
                    acc.extend(windows)
        else:
            geometry = observer_geometry(observers)
            for sat in const:
                rows = self.ephemeris.find_passes_multi(
                    sat.propagator, observers, epoch, horizon_s,
                    coarse_step_s=self.coarse_step_s,
                    min_elevation_deg=min_elevation_deg,
                    refine_tol_s=self.refine_tol_s, refine=self.refine,
                    geometry=geometry)
                for windows, acc in zip(rows, per_observer):
                    acc.extend(windows)
        for acc in per_observer:
            acc.sort(key=lambda w: w.rise_s)
        return per_observer

    @staticmethod
    def _group_indices(requests: Sequence[object]) -> Dict[tuple,
                                                           List[int]]:
        groups: Dict[tuple, List[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(request.group_key(), []).append(index)
        return groups

    # ------------------------------------------------------------------
    # /v1/passes
    # ------------------------------------------------------------------
    def passes_batch(self, requests: Sequence[PassesRequest],
                     ) -> List[dict]:
        results: List[Optional[dict]] = [None] * len(requests)
        for _, indices in self._group_indices(requests).items():
            group = [requests[i] for i in indices]
            observers = [r.observer() for r in group]
            per_observer = self._windows_for_group(
                group[0].constellation, observers, group[0].horizon_s,
                group[0].min_elevation_deg)
            for request, index, windows in zip(group, indices,
                                               per_observer):
                results[index] = self._passes_payload(request, windows)
        return results  # type: ignore[return-value]

    def _passes_payload(self, request: PassesRequest,
                        windows: Sequence[ContactWindow]) -> dict:
        const = self.constellation(request.constellation)
        epoch = self.epoch(request.constellation)
        if request.max_passes:
            windows = windows[:request.max_passes]
        names = {sat.tle.norad_id: sat.name for sat in const}
        passes = [{
            "satellite": names.get(w.norad_id, str(w.norad_id)),
            "norad_id": w.norad_id,
            "rise_s": round(w.rise_s, 3),
            "set_s": round(w.set_s, 3),
            "duration_s": round(w.duration_s, 3),
            "culmination_s": round(w.culmination_s, 3),
            "max_elevation_deg": round(w.max_elevation_deg, 3),
        } for w in windows]
        return {
            "site": request.site_dict(),
            "constellation": const.name,
            "epoch": epoch.isoformat(),
            "horizon_s": request.horizon_s,
            "min_elevation_deg": request.min_elevation_deg,
            "count": len(passes),
            "next_pass": passes[0] if passes else None,
            "passes": passes,
        }

    # ------------------------------------------------------------------
    # /v1/presence
    # ------------------------------------------------------------------
    def presence_batch(self, requests: Sequence[PresenceRequest],
                       ) -> List[dict]:
        results: List[Optional[dict]] = [None] * len(requests)
        for _, indices in self._group_indices(requests).items():
            group = [requests[i] for i in indices]
            observers = [r.observer() for r in group]
            per_observer = self._windows_for_group(
                group[0].constellation, observers, group[0].horizon_s,
                group[0].min_elevation_deg)
            for request, index, windows in zip(group, indices,
                                               per_observer):
                results[index] = self._presence_payload(request, windows)
        return results  # type: ignore[return-value]

    def _presence_payload(self, request: PresenceRequest,
                          windows: Sequence[ContactWindow]) -> dict:
        horizon = request.horizon_s
        merged = merge_intervals(
            (max(0.0, w.rise_s), min(horizon, w.set_s))
            for w in windows if w.set_s > 0.0 and w.rise_s < horizon)
        covered = total_length(merged)
        gaps: List[float] = []
        cursor = 0.0
        for start, end in merged:
            if start > cursor:
                gaps.append(start - cursor)
            cursor = max(cursor, end)
        if cursor < horizon:
            gaps.append(horizon - cursor)
        return {
            "site": request.site_dict(),
            "constellation": request.constellation,
            "horizon_s": horizon,
            "min_elevation_deg": request.min_elevation_deg,
            "coverage_fraction": round(covered / horizon, 6),
            "covered_s": round(covered, 3),
            "windows": len(merged),
            "raw_passes": len(windows),
            "mean_window_s": round(covered / len(merged), 3)
            if merged else 0.0,
            "max_gap_s": round(max(gaps), 3) if gaps else 0.0,
            "mean_gap_s": round(sum(gaps) / len(gaps), 3)
            if gaps else 0.0,
        }

    # ------------------------------------------------------------------
    # /v1/link_budget
    # ------------------------------------------------------------------
    def link_budget_batch(self, requests: Sequence[LinkBudgetRequest],
                          ) -> List[dict]:
        results: List[Optional[dict]] = [None] * len(requests)
        for _, indices in self._group_indices(requests).items():
            group = [requests[i] for i in indices]
            const = self.constellation(group[0].constellation)
            epoch = self.epoch(group[0].constellation)
            t = group[0].t_offset_s
            # Observer-independent work, once per group: propagate every
            # satellite to t and convert the stacked states to ECEF in
            # one vectorized call (shared instant → shared GMST).
            r_teme = np.empty((len(const), 3))
            v_teme = np.empty((len(const), 3))
            for row, sat in enumerate(const):
                r, v = self.ephemeris.propagation_grid(
                    sat.propagator, epoch, [t])
                r_teme[row] = r[0]
                v_teme[row] = v[0]
            r_ecef, v_ecef = ecef_states(r_teme, v_teme,
                                         epoch.offset_jd(t))
            for request, index in zip(group, indices):
                results[index] = self._link_budget_payload(
                    request, const, r_ecef, v_ecef)
        return results  # type: ignore[return-value]

    def _link_budget_payload(self, request: LinkBudgetRequest,
                             const: Constellation,
                             r_ecef: np.ndarray,
                             v_ecef: np.ndarray) -> dict:
        radio = const.radio
        sf = request.spreading_factor or radio.spreading_factor
        payload_bytes = request.payload_bytes or \
            radio.beacon_payload_bytes
        budget = LinkBudget(eirp_dbm=radio.beacon_eirp_dbm,
                            frequency_hz=radio.frequency_hz)
        modulation = LoRaModulation(
            spreading_factor=sf, bandwidth_hz=radio.bandwidth_hz,
            coding_rate=radio.coding_rate,
            preamble_symbols=radio.preamble_symbols,
            explicit_header=radio.explicit_header,
            low_data_rate_optimize=radio.low_data_rate_optimize)
        sensitivity = sensitivity_dbm(sf, radio.bandwidth_hz)
        airtime = modulation.airtime_s(payload_bytes)

        angles = look_angles_from_ecef(request.observer(),
                                       r_ecef, v_ecef)
        elevation = np.atleast_1d(np.asarray(angles.elevation_deg))
        visible = np.flatnonzero(
            elevation >= request.min_elevation_deg)
        sats = const.satellites
        entries: List[dict] = []
        if visible.size:
            azimuth = np.atleast_1d(np.asarray(angles.azimuth_deg))
            rng = np.atleast_1d(np.asarray(angles.range_km))
            rate = np.atleast_1d(np.asarray(angles.range_rate_km_s))
            parts = budget.components(rng[visible], elevation[visible],
                                      raining=request.raining)
            rssi = np.atleast_1d(np.asarray(parts["rssi_dbm"], float))
            # Components may be scalar (e.g. rain when not raining):
            # broadcast them to one value per visible satellite.
            fspl = np.broadcast_to(
                np.asarray(parts["fspl_db"], float), rssi.shape)
            excess = np.broadcast_to(
                np.asarray(parts["excess_db"], float), rssi.shape)
            rain = np.broadcast_to(
                np.asarray(parts["rain_db"], float), rssi.shape)
            doppler = np.atleast_1d(np.asarray(doppler_shift_hz(
                rate[visible], radio.frequency_hz)))
            for pos, sat_index in enumerate(visible):
                sat = sats[int(sat_index)]
                entries.append({
                    "satellite": sat.name,
                    "norad_id": sat.tle.norad_id,
                    "elevation_deg": round(float(
                        elevation[sat_index]), 3),
                    "azimuth_deg": round(float(azimuth[sat_index]), 3),
                    "range_km": round(float(rng[sat_index]), 3),
                    "range_rate_km_s": round(float(
                        rate[sat_index]), 6),
                    "rssi_dbm": round(float(rssi[pos]), 3),
                    "fspl_db": round(float(fspl[pos]), 3),
                    "excess_loss_db": round(float(excess[pos]), 3),
                    "rain_loss_db": round(float(rain[pos]), 3),
                    "link_margin_db": round(float(rssi[pos])
                                            - sensitivity, 3),
                    "doppler_hz": round(float(doppler[pos]), 1),
                })
            entries.sort(key=lambda e: e["rssi_dbm"], reverse=True)
        return {
            "site": request.site_dict(),
            "constellation": const.name,
            "t_offset_s": request.t_offset_s,
            "min_elevation_deg": request.min_elevation_deg,
            "spreading_factor": sf,
            "payload_bytes": payload_bytes,
            "sensitivity_dbm": round(sensitivity, 3),
            "airtime_s": round(airtime, 6),
            "raining": request.raining,
            "visible_count": len(entries),
            "best": entries[0] if entries else None,
            "satellites": entries,
        }
