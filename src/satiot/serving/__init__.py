"""Micro-batched pass-prediction and link-budget query service.

Turns the simulator into an always-on constellation service: an
asyncio HTTP/JSON server (stdlib only) answering the questions a
satellite-IoT fleet operator asks continuously — next contact windows,
instantaneous link budgets, availability statistics — at high request
rates, by coalescing concurrent queries into shared vectorized orbital
work.  See ``docs/serving.md`` for the endpoint reference.
"""

from .batcher import MicroBatcher, QueueFullError
from .cache import ResultCache, quantize_coord
from .http import HTTPError, HTTPRequest, json_response, read_request
from .metrics import EndpointMetrics, ServingMetrics
from .server import ServingConfig, ServingServer
from .service import (CompareRequest, ConstellationService,
                      LinkBudgetRequest, PassesRequest, PresenceRequest)
from .supervisor import (FleetConfig, ServingFleet, default_workers,
                         fork_available, reuseport_available)

__all__ = [
    "CompareRequest",
    "ConstellationService",
    "EndpointMetrics",
    "FleetConfig",
    "HTTPError",
    "HTTPRequest",
    "LinkBudgetRequest",
    "MicroBatcher",
    "PassesRequest",
    "PresenceRequest",
    "QueueFullError",
    "ResultCache",
    "ServingConfig",
    "ServingFleet",
    "ServingMetrics",
    "ServingServer",
    "default_workers",
    "fork_available",
    "json_response",
    "quantize_coord",
    "read_request",
    "reuseport_available",
]
