"""Per-endpoint serving metrics: counters, histograms, latency quantiles.

Each endpoint owns an :class:`EndpointMetrics`; the server aggregates
them into a :class:`ServingMetrics` that renders both as JSON (for the
``/metrics`` endpoint and the benchmark harness) and as the fixed-width
table format shared with the runtime telemetry report
(:func:`satiot.runtime.telemetry.render_fixed_table`).

Latency quantiles come from a bounded reservoir (most recent
``reservoir_size`` samples) — adequate for operational p50/p99 without
unbounded memory.  Batch sizes are tracked as an exact histogram over
power-of-two buckets, the batching engine's primary health signal.

Multi-worker fleets aggregate across processes: each worker exports a
:meth:`ServingMetrics.snapshot` (counters + raw histogram buckets +
the latency reservoir) over its control channel, and the supervisor
folds them with :func:`merge_snapshots` — counters summed, batch-size
histograms merged bucket-wise, and fleet latency quantiles computed
over the *pooled* reservoirs (quantiles of quantiles would lie).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..runtime.telemetry import render_fixed_table

__all__ = ["EndpointMetrics", "ServingMetrics", "merge_snapshots",
           "percentile"]

#: Upper edges of the batch-size histogram buckets (last is open-ended).
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (q in 0..100)."""
    if not sorted_values:
        return 0.0
    if q <= 0:
        return float(sorted_values[0])
    if q >= 100:
        return float(sorted_values[-1])
    rank = max(0, min(len(sorted_values) - 1,
                      round(q / 100.0 * (len(sorted_values) - 1))))
    return float(sorted_values[rank])


@dataclass
class EndpointMetrics:
    """Counters and distributions of one HTTP endpoint."""

    name: str
    reservoir_size: int = 4096
    requests: int = 0
    ok: int = 0
    client_errors: int = 0
    server_errors: int = 0
    rejected: int = 0               # 429 backpressure rejections
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    batched_requests: int = 0
    #: Whole-batch re-dispatches after a transient handler failure
    #: (see :class:`satiot.serving.batcher.MicroBatcher`).
    handler_retries: int = 0
    batch_histogram: Dict[int, int] = field(default_factory=dict)
    _latencies_ms: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    def observe_request(self, status: int, latency_s: float) -> None:
        self.requests += 1
        if status == 429:
            self.rejected += 1
        elif status >= 500:
            self.server_errors += 1
        elif status >= 400:
            self.client_errors += 1
        else:
            self.ok += 1
        self._latencies_ms.append(latency_s * 1000.0)
        if len(self._latencies_ms) > self.reservoir_size:
            del self._latencies_ms[:len(self._latencies_ms)
                                   - self.reservoir_size]

    def observe_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        for edge in BATCH_BUCKETS:
            if size <= edge:
                bucket = edge
                break
        else:
            bucket = -1  # overflow bucket ("> last edge")
        self.batch_histogram[bucket] = \
            self.batch_histogram.get(bucket, 0) + 1

    def observe_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches \
            else 0.0

    def latency_quantiles_ms(self) -> Dict[str, float]:
        ordered = sorted(self._latencies_ms)
        return {
            "p50": percentile(ordered, 50.0),
            "p90": percentile(ordered, 90.0),
            "p99": percentile(ordered, 99.0),
            "max": ordered[-1] if ordered else 0.0,
        }

    def to_dict(self) -> dict:
        histogram = {
            (f"<={bucket}" if bucket > 0 else f">{BATCH_BUCKETS[-1]}"):
            count
            for bucket, count in sorted(
                self.batch_histogram.items(),
                key=lambda kv: (kv[0] < 0, kv[0]))
        }
        return {
            "requests": self.requests,
            "ok": self.ok,
            "client_errors": self.client_errors,
            "server_errors": self.server_errors,
            "rejected_429": self.rejected,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "batches": self.batches,
            "handler_retries": self.handler_retries,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "batch_size_histogram": histogram,
            "latency_ms": {k: round(v, 3) for k, v
                           in self.latency_quantiles_ms().items()},
        }

    #: Counter fields that merge across workers by summation.
    COUNTERS = ("requests", "ok", "client_errors", "server_errors",
                "rejected", "cache_hits", "cache_misses", "batches",
                "batched_requests", "handler_retries")

    def snapshot(self) -> dict:
        """Mergeable cross-process view: exact counters, raw histogram
        buckets, and the latency reservoir itself."""
        return {
            "counters": {name: getattr(self, name)
                         for name in self.COUNTERS},
            "batch_histogram": {str(bucket): count for bucket, count
                                in self.batch_histogram.items()},
            "latencies_ms": list(self._latencies_ms),
        }


@dataclass
class ServingMetrics:
    """All endpoint metrics of one server instance."""

    endpoints: Dict[str, EndpointMetrics] = field(default_factory=dict)
    #: Connections dropped server-side (``serving.connection`` faults).
    dropped_connections: int = 0
    #: Responses abandoned because the client would not drain the
    #: socket within the configured write timeout.
    write_timeouts: int = 0

    def endpoint(self, name: str) -> EndpointMetrics:
        if name not in self.endpoints:
            self.endpoints[name] = EndpointMetrics(name)
        return self.endpoints[name]

    def to_dict(self) -> dict:
        payload = {name: em.to_dict()
                   for name, em in sorted(self.endpoints.items())}
        payload["_server"] = {
            "dropped_connections": self.dropped_connections,
            "write_timeouts": self.write_timeouts,
        }
        return payload

    def snapshot(self) -> dict:
        """Mergeable cross-process view of every endpoint."""
        return {
            "endpoints": {name: em.snapshot()
                          for name, em in self.endpoints.items()},
            "server": {
                "dropped_connections": self.dropped_connections,
                "write_timeouts": self.write_timeouts,
            },
        }

    def render(self, title: Optional[str] = None) -> str:
        """Fixed-width table view (same format as runtime telemetry)."""
        header = ["endpoint", "req", "ok", "4xx", "429", "5xx",
                  "batches", "avg batch", "cache hit%",
                  "p50 ms", "p99 ms"]
        rows: List[List[str]] = []
        for name, em in sorted(self.endpoints.items()):
            q = em.latency_quantiles_ms()
            rows.append([
                name, str(em.requests), str(em.ok),
                str(em.client_errors), str(em.rejected),
                str(em.server_errors), str(em.batches),
                f"{em.mean_batch_size:.1f}",
                f"{100.0 * em.cache_hit_rate:.0f}",
                f"{q['p50']:.2f}", f"{q['p99']:.2f}"])
        return render_fixed_table(header, rows,
                                  title=title or "Serving metrics")


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Fold worker :meth:`ServingMetrics.snapshot` dicts into one
    fleet view (the supervisor's merged ``/metrics`` payload).

    Counters and batch-size histograms are summed bucket-wise; latency
    quantiles are recomputed over the pooled per-worker reservoirs so
    the fleet p99 reflects actual request latencies, not an average of
    per-worker percentiles.
    """
    endpoints: Dict[str, dict] = {}
    server = {"dropped_connections": 0, "write_timeouts": 0}
    for snap in snapshots:
        for key in server:
            server[key] += int(snap.get("server", {}).get(key, 0))
        for name, em in snap.get("endpoints", {}).items():
            acc = endpoints.setdefault(name, {
                "counters": {k: 0 for k in EndpointMetrics.COUNTERS},
                "batch_histogram": {},
                "latencies_ms": [],
            })
            for key, value in em.get("counters", {}).items():
                acc["counters"][key] = \
                    acc["counters"].get(key, 0) + int(value)
            for bucket, count in em.get("batch_histogram", {}).items():
                acc["batch_histogram"][bucket] = \
                    acc["batch_histogram"].get(bucket, 0) + int(count)
            acc["latencies_ms"].extend(em.get("latencies_ms", ()))

    merged: Dict[str, object] = {}
    for name, acc in sorted(endpoints.items()):
        c = acc["counters"]
        ordered = sorted(acc["latencies_ms"])
        cache_total = c["cache_hits"] + c["cache_misses"]
        histogram = {
            (f"<={bucket}" if bucket > 0 else f">{BATCH_BUCKETS[-1]}"):
            count
            for bucket, count in sorted(
                ((int(b), n)
                 for b, n in acc["batch_histogram"].items()),
                key=lambda kv: (kv[0] < 0, kv[0]))
        }
        merged[name] = {
            "requests": c["requests"],
            "ok": c["ok"],
            "client_errors": c["client_errors"],
            "server_errors": c["server_errors"],
            "rejected_429": c["rejected"],
            "cache_hits": c["cache_hits"],
            "cache_misses": c["cache_misses"],
            "cache_hit_rate": round(
                c["cache_hits"] / cache_total, 4) if cache_total
            else 0.0,
            "batches": c["batches"],
            "handler_retries": c["handler_retries"],
            "mean_batch_size": round(
                c["batched_requests"] / c["batches"], 2)
            if c["batches"] else 0.0,
            "batch_size_histogram": histogram,
            "latency_ms": {
                "p50": round(percentile(ordered, 50.0), 3),
                "p90": round(percentile(ordered, 90.0), 3),
                "p99": round(percentile(ordered, 99.0), 3),
                "max": round(ordered[-1], 3) if ordered else 0.0,
            },
        }
    merged["_server"] = server
    return merged
