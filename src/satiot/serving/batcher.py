"""Micro-batching engine: coalesce concurrent requests into array calls.

The serving layer's throughput comes from one observation: the
expensive half of a pass/link-budget query (SGP4 propagation and the
TEME→ECEF frame conversion) is *observer-independent*.  N concurrent
requests answered together cost one frame conversion instead of N.

:class:`MicroBatcher` implements the standard coalescing loop:

* ``submit`` appends a request to a bounded pending queue and returns
  an awaitable future;
* the batch is flushed when it reaches ``max_batch`` **or** when the
  ``window_s`` timer (armed by the first request of a batch) fires —
  whichever comes first;
* a flush hands the request list to the ``handler`` in a worker thread
  (default: a private single-thread executor), keeping the event loop
  free to accept connections and answer ``/healthz`` while NumPy works;
* if the pending queue is full, ``submit`` raises
  :class:`QueueFullError` immediately — the server maps this to
  ``429 Too Many Requests`` with a ``Retry-After`` hint.  Load is shed
  at the cheapest possible point, before any orbital work happens.

Handler results are matched to requests positionally.  A handler
exception (or a result-count mismatch) is treated as **transient
first**: the whole batch is re-dispatched to the worker executor with
capped exponential backoff, up to ``max_retries`` times.  Requests and
results are pure values, so a re-run is always safe — and under the
:mod:`satiot.faults` plane's ``serving.handler`` site this is what
keeps faulted runs byte-identical to clean ones.  Only a batch that
keeps failing fails its futures (the server maps that to one 500 per
affected request — the loop itself never dies).  The ``batcher.flush``
fault site defers a flush by one window: latency, never output.

``max_batch=1`` degrades the engine to honest serial service (one
handler call per request through the same queue and executor), which is
exactly the "unbatched" baseline mode of ``benchmarks/bench_serving``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable, List, Optional, Sequence, Tuple

from ..faults import FaultInjected, fault_fires
from .metrics import EndpointMetrics

__all__ = ["MicroBatcher", "QueueFullError"]


class QueueFullError(Exception):
    """Raised by ``submit`` when the pending queue is at capacity."""

    def __init__(self, retry_after_s: float = 1.0) -> None:
        super().__init__("request queue full")
        self.retry_after_s = retry_after_s


class MicroBatcher:
    """Coalesces concurrent requests into batched handler calls."""

    def __init__(self,
                 handler: Callable[[List[object]], Sequence[object]],
                 *,
                 max_batch: int = 256,
                 window_s: float = 0.002,
                 max_pending: int = 1024,
                 retry_after_s: float = 1.0,
                 max_retries: int = 2,
                 retry_backoff_s: float = 0.005,
                 metrics: Optional[EndpointMetrics] = None,
                 executor: Optional[ThreadPoolExecutor] = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if window_s < 0:
            raise ValueError("window must be non-negative")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self._handler = handler
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self.max_pending = int(max_pending)
        self.retry_after_s = float(retry_after_s)
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        self.metrics = metrics
        self._executor = executor or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="satiot-serving")
        self._owns_executor = executor is None
        self._pending: List[Tuple[object, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests queued but not yet handed to the handler."""
        return len(self._pending)

    def submit(self, request: object) -> Awaitable[object]:
        """Enqueue ``request``; the returned future resolves to its
        response.  Raises :class:`QueueFullError` when at capacity."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        if len(self._pending) >= self.max_pending:
            raise QueueFullError(self.retry_after_s)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future))
        if len(self._pending) >= self.max_batch:
            self._flush(loop)
        elif self._timer is None:
            self._timer = loop.call_later(self.window_s,
                                          self._flush, loop)
        return future

    async def close(self) -> None:
        """Flush outstanding requests and release the executor."""
        self._closed = True
        if self._pending:
            loop = asyncio.get_running_loop()
            futures = [f for _, f in self._pending]
            self._flush(loop)
            await asyncio.gather(*futures, return_exceptions=True)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Hand the current pending batch to the worker executor."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        if not self._closed and fault_fires("batcher.flush"):
            # Fault plane: defer this flush by one coalescing window.
            # The batch stays queued, so this costs latency, never
            # output.  Closed batchers never defer — close() must
            # drain.
            self._timer = loop.call_later(self.window_s,
                                          self._flush, loop)
            return
        batch = self._pending[:self.max_batch]
        del self._pending[:len(batch)]
        if self._pending:
            # More than max_batch queued: keep draining on the next tick
            # so backlogged requests don't wait for a fresh arrival.
            self._timer = loop.call_later(0.0, self._flush, loop)
        if self.metrics is not None:
            self.metrics.observe_batch(len(batch))
        requests = [request for request, _ in batch]
        futures = [future for _, future in batch]
        self._dispatch(loop, requests, futures, attempt=0)

    def _dispatch(self, loop: asyncio.AbstractEventLoop,
                  requests: List[object],
                  futures: List[asyncio.Future], attempt: int) -> None:
        """Hand ``requests`` to the handler in the worker executor."""
        worker = loop.run_in_executor(self._executor,
                                      self._run_handler, requests)
        worker.add_done_callback(
            lambda done: self._resolve(loop, requests, futures,
                                       attempt, done))

    def _run_handler(self, requests: List[object]) -> Sequence[object]:
        """Executes in the worker thread; the fault consult lives here
        so an injected handler fault follows the exact code path of a
        real one (exception crosses the executor boundary)."""
        if fault_fires("serving.handler"):
            raise FaultInjected("serving.handler")
        return self._handler(requests)

    def _resolve(self, loop: asyncio.AbstractEventLoop,
                 requests: List[object],
                 futures: List[asyncio.Future], attempt: int,
                 done: "asyncio.Future") -> None:
        error = done.exception()
        if error is None:
            results = list(done.result())
            if len(results) != len(futures):
                error = RuntimeError(
                    f"handler returned {len(results)} results for "
                    f"{len(futures)} requests")
        if error is not None:
            if attempt < self.max_retries:
                # Transient-first: requests are pure values, so
                # re-running the whole batch is always safe.
                if self.metrics is not None:
                    self.metrics.handler_retries += 1
                delay = self.retry_backoff_s * (2.0 ** attempt)
                loop.call_later(delay, self._dispatch, loop,
                                requests, futures, attempt + 1)
                return
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(futures, results):
            if not future.done():
                future.set_result(result)
