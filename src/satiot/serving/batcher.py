"""Micro-batching engine: coalesce concurrent requests into array calls.

The serving layer's throughput comes from one observation: the
expensive half of a pass/link-budget query (SGP4 propagation and the
TEME→ECEF frame conversion) is *observer-independent*.  N concurrent
requests answered together cost one frame conversion instead of N.

:class:`MicroBatcher` implements the standard coalescing loop:

* ``submit`` appends a request to a bounded pending queue and returns
  an awaitable future;
* the batch is flushed when it reaches ``max_batch`` **or** when the
  ``window_s`` timer (armed by the first request of a batch) fires —
  whichever comes first;
* a flush hands the request list to the ``handler`` in a worker thread
  (default: a private single-thread executor), keeping the event loop
  free to accept connections and answer ``/healthz`` while NumPy works;
* if the pending queue is full, ``submit`` raises
  :class:`QueueFullError` immediately — the server maps this to
  ``429 Too Many Requests`` with a ``Retry-After`` hint.  Load is shed
  at the cheapest possible point, before any orbital work happens.

Handler results are matched to requests positionally; a handler
exception fails every request of that batch (the server maps it to one
500 per affected request — the loop itself never dies).

``max_batch=1`` degrades the engine to honest serial service (one
handler call per request through the same queue and executor), which is
exactly the "unbatched" baseline mode of ``benchmarks/bench_serving``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable, List, Optional, Sequence, Tuple

from .metrics import EndpointMetrics

__all__ = ["MicroBatcher", "QueueFullError"]


class QueueFullError(Exception):
    """Raised by ``submit`` when the pending queue is at capacity."""

    def __init__(self, retry_after_s: float = 1.0) -> None:
        super().__init__("request queue full")
        self.retry_after_s = retry_after_s


class MicroBatcher:
    """Coalesces concurrent requests into batched handler calls."""

    def __init__(self,
                 handler: Callable[[List[object]], Sequence[object]],
                 *,
                 max_batch: int = 256,
                 window_s: float = 0.002,
                 max_pending: int = 1024,
                 retry_after_s: float = 1.0,
                 metrics: Optional[EndpointMetrics] = None,
                 executor: Optional[ThreadPoolExecutor] = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if window_s < 0:
            raise ValueError("window must be non-negative")
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self._handler = handler
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self.max_pending = int(max_pending)
        self.retry_after_s = float(retry_after_s)
        self.metrics = metrics
        self._executor = executor or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="satiot-serving")
        self._owns_executor = executor is None
        self._pending: List[Tuple[object, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests queued but not yet handed to the handler."""
        return len(self._pending)

    def submit(self, request: object) -> Awaitable[object]:
        """Enqueue ``request``; the returned future resolves to its
        response.  Raises :class:`QueueFullError` when at capacity."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        if len(self._pending) >= self.max_pending:
            raise QueueFullError(self.retry_after_s)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future))
        if len(self._pending) >= self.max_batch:
            self._flush(loop)
        elif self._timer is None:
            self._timer = loop.call_later(self.window_s,
                                          self._flush, loop)
        return future

    async def close(self) -> None:
        """Flush outstanding requests and release the executor."""
        self._closed = True
        if self._pending:
            loop = asyncio.get_running_loop()
            futures = [f for _, f in self._pending]
            self._flush(loop)
            await asyncio.gather(*futures, return_exceptions=True)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Hand the current pending batch to the worker executor."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch = self._pending[:self.max_batch]
        del self._pending[:len(batch)]
        if self._pending:
            # More than max_batch queued: keep draining on the next tick
            # so backlogged requests don't wait for a fresh arrival.
            self._timer = loop.call_later(0.0, self._flush, loop)
        if self.metrics is not None:
            self.metrics.observe_batch(len(batch))
        requests = [request for request, _ in batch]
        futures = [future for _, future in batch]
        worker = loop.run_in_executor(self._executor,
                                      self._handler, requests)
        worker.add_done_callback(
            lambda done: self._resolve(futures, done))

    @staticmethod
    def _resolve(futures: List[asyncio.Future],
                 done: "asyncio.Future") -> None:
        error = done.exception()
        if error is None:
            results = list(done.result())
            if len(results) != len(futures):
                error = RuntimeError(
                    f"handler returned {len(results)} results for "
                    f"{len(futures)} requests")
        if error is not None:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(futures, results):
            if not future.done():
                future.set_result(result)
