"""Hand-rolled HTTP/1.1 over asyncio streams (stdlib only).

The serving layer deliberately avoids web-framework dependencies: the
protocol surface it needs is tiny (GET/POST, JSON bodies, a handful of
headers), and the constraint of the study's artifact is that everything
runs from a bare Python + NumPy toolchain.

Supported subset: request line + headers + ``Content-Length`` bodies,
keep-alive (``Connection: close`` honoured), query strings, JSON
responses.  Not supported (rejected cleanly): chunked request bodies,
pipelining beyond sequential keep-alive, TLS.  Limits are enforced while
*reading* (header count/size, body size), so oversized or malformed
input costs at most a bounded read before the 4xx goes out.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from urllib.parse import parse_qsl, urlsplit

__all__ = ["HTTPError", "HTTPRequest", "read_request",
           "json_response", "text_response", "STATUS_PHRASES"]

MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 16384
MAX_HEADERS = 64
MAX_BODY_BYTES = 1_048_576

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """A protocol-level failure that maps directly to a 4xx/5xx reply."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class HTTPRequest:
    """One parsed request (body already read)."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """Decoded JSON object body (empty body → ``{}``)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise HTTPError(400, "JSON body must be an object")
        return payload

    def params(self) -> Dict[str, str]:
        """Query parameters merged with a JSON body (body wins).

        Lets simple queries be issued straight from ``curl`` query
        strings while programmatic clients POST JSON.
        """
        merged: Dict[str, str] = dict(self.query)
        for key, value in self.json().items():
            merged[str(key)] = value
        return merged


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise HTTPError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HTTPError(413, "request line too long") from exc
    if len(line) > limit:
        raise HTTPError(413, "request line too long")
    return line


async def read_request(reader: asyncio.StreamReader,
                       ) -> Optional[HTTPRequest]:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF (client closed between requests);
    raises :class:`HTTPError` on malformed/oversized input and lets
    connection-level ``OSError``/``IncompleteReadError`` propagate for
    the server to swallow.
    """
    line = await _read_line(reader, MAX_REQUEST_LINE)
    if not line:
        return None
    try:
        method, target, version = line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError) as exc:
        raise HTTPError(400, "malformed request line") from exc
    if not version.startswith("HTTP/1."):
        raise HTTPError(400, f"unsupported protocol {version}")

    headers: Dict[str, str] = {}
    total_header_bytes = 0
    while True:
        raw = await _read_line(reader, MAX_HEADER_BYTES)
        if raw in (b"\r\n", b""):
            break
        total_header_bytes += len(raw)
        if len(headers) >= MAX_HEADERS or \
                total_header_bytes > MAX_HEADER_BYTES:
            raise HTTPError(413, "too many headers")
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError as exc:  # pragma: no cover
            raise HTTPError(400, "malformed header") from exc
        if not _:
            raise HTTPError(400, "malformed header")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(400, "chunked request bodies not supported")
    body = b""
    length_header = headers.get("content-length", "0")
    try:
        content_length = int(length_header)
    except ValueError as exc:
        raise HTTPError(400, "invalid Content-Length") from exc
    if content_length < 0:
        raise HTTPError(400, "invalid Content-Length")
    if content_length > MAX_BODY_BYTES:
        raise HTTPError(413, "request body too large")
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError as exc:
            raise HTTPError(400, "truncated request body") from exc

    split = urlsplit(target)
    query = {key: value
             for key, value in parse_qsl(split.query,
                                         keep_blank_values=True)}
    return HTTPRequest(method=method.upper(), path=split.path or "/",
                       query=query, headers=headers, body=body)


def _response(status: int, body: bytes, content_type: str,
              extra_headers: Optional[Dict[str, str]] = None,
              keep_alive: bool = True) -> bytes:
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


def json_response(status: int, payload: object,
                  extra_headers: Optional[Dict[str, str]] = None,
                  keep_alive: bool = True) -> bytes:
    body = json.dumps(payload, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")
    return _response(status, body, "application/json",
                     extra_headers, keep_alive)


def text_response(status: int, text: str,
                  extra_headers: Optional[Dict[str, str]] = None,
                  keep_alive: bool = True) -> bytes:
    return _response(status, text.encode("utf-8"),
                     "text/plain; charset=utf-8",
                     extra_headers, keep_alive)
