"""Asyncio HTTP server wiring batcher + cache + metrics + service.

Request lifecycle::

    read → route → validate (event loop, cheap)
         → result-cache probe (quantized key)
         → micro-batcher submit  ── full? → 429 + Retry-After
         → [batch flushed → worker thread → NumPy/SGP4]
         → respond, populate cache, record metrics

``/healthz`` and ``/metrics`` never enter the batcher, so the service
stays observable under overload — the event loop only ever blocks on
I/O, all orbital work runs in the batcher's worker thread.

Failure containment: connection-level errors (client reset, truncated
request, mid-request disconnect) are swallowed per connection; handler
exceptions are retried batch-wide by the batcher and only become one
500 per affected request once the retry budget is exhausted; a client
that will not drain its socket within ``write_timeout_s`` has its
transport aborted (counted in ``_server.write_timeouts``).  Nothing a
client does can take the accept loop down.  The
``serving.connection`` fault site drops a connection *after* the
response is computed (and result-cached) but before it is written —
a retrying client gets the byte-identical payload from the cache.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .batcher import MicroBatcher, QueueFullError
from .cache import ResultCache
from ..faults import fault_fires, get_default_plane
from .http import (HTTPError, HTTPRequest, json_response, read_request,
                   text_response)
from ..runtime.telemetry import render_fixed_table
from ..twin.clock import SimClock
from .metrics import ServingMetrics
from .service import (CompareRequest, ConstellationService,
                      LinkBudgetRequest, PassesRequest, PresenceRequest,
                      DEFAULT_CONSTELLATION)

__all__ = ["ServingConfig", "ServingServer"]


@dataclass
class ServingConfig:
    """Operational knobs of one server instance."""

    host: str = "127.0.0.1"
    port: int = 8340
    constellations: Tuple[str, ...] = (DEFAULT_CONSTELLATION,)
    #: coalescing window armed by the first request of a batch
    window_s: float = 0.002
    #: flush immediately once this many requests are pending
    max_batch: int = 256
    #: queue bound; submissions beyond it are rejected with 429
    max_pending: int = 1024
    #: Retry-After hint (seconds) sent with 429 responses
    retry_after_s: float = 0.5
    #: master switch — False degrades to per-request serial handling
    batching: bool = True
    cache_ttl_s: float = 60.0
    cache_entries: int = 4096
    #: coordinate quantization (decimal places) for result-cache keys
    cache_decimals: int = 2
    #: pass-finder sampling step (s)
    coarse_step_s: float = 30.0
    #: abort the connection when a client will not drain its socket
    #: within this many seconds (slow-client protection)
    write_timeout_s: float = 30.0
    #: digital-twin mode: arm a SimClock so queries may say start=now
    realtime: bool = False
    #: simulation seconds per real second (realtime mode)
    rate: float = 1.0
    #: unix timestamp mapped to sim offset 0; None anchors at server
    #: construction.  The fleet supervisor pins one anchor for every
    #: worker so now-queries resolve identically fleet-wide.
    clock_anchor: Optional[float] = None
    #: now-query quantization (s): queries inside one quantum resolve
    #: to the same offset → byte-identical answers, cache-friendly
    clock_quantum_s: float = 60.0
    #: providers /v1/compare may select (None = all registered)
    providers: Optional[Tuple[str, ...]] = None
    extra: Dict[str, object] = field(default_factory=dict)


_ENDPOINTS = {
    "/v1/passes": ("passes", PassesRequest),
    "/v1/presence": ("presence", PresenceRequest),
    "/v1/link_budget": ("link_budget", LinkBudgetRequest),
    "/v1/compare": ("compare", CompareRequest),
}


class ServingServer:
    """One constellation query service bound to a host/port.

    ``worker_id`` is set when this server is one process of a
    :class:`~satiot.serving.supervisor.ServingFleet`: it tags the
    ``/healthz`` and ``/metrics`` payloads, and arms the
    ``serving.worker_kill`` fault site — a fleet worker may be
    SIGKILL'ed mid-accept (the supervisor restarts it; a standalone
    server never consults the site because there is nothing to restart
    it).
    """

    def __init__(self, config: Optional[ServingConfig] = None,
                 service: Optional[ConstellationService] = None,
                 worker_id: Optional[int] = None) -> None:
        self.config = config or ServingConfig()
        self.worker_id = worker_id
        self.service = service or ConstellationService(
            constellations=self.config.constellations,
            coarse_step_s=self.config.coarse_step_s,
            providers=self.config.providers,
            realtime=self.config.realtime)
        self.clock: Optional[SimClock] = None
        if self.config.realtime:
            self.clock = SimClock(rate=self.config.rate,
                                  anchor=self.config.clock_anchor,
                                  quantum_s=self.config.clock_quantum_s)
        self.metrics = ServingMetrics()
        self.cache = ResultCache(max_entries=self.config.cache_entries,
                                 ttl_s=self.config.cache_ttl_s)
        # One worker thread shared by every endpoint: orbital work is
        # serialized (NumPy already saturates a core per batch) and the
        # event loop never blocks on compute.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="satiot-serving")
        max_batch = self.config.max_batch if self.config.batching else 1
        handlers = {
            "passes": self.service.passes_batch,
            "presence": self.service.presence_batch,
            "link_budget": self.service.link_budget_batch,
            "compare": self.service.compare_batch,
        }
        self._batchers: Dict[str, MicroBatcher] = {
            name: MicroBatcher(
                handler,
                max_batch=max_batch,
                window_s=self.config.window_s,
                max_pending=self.config.max_pending,
                retry_after_s=self.config.retry_after_s,
                metrics=self.metrics.endpoint(name),
                executor=self._executor)
            for name, handler in handlers.items()
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, sock: Optional[socket.socket] = None,
                    ) -> asyncio.AbstractServer:
        """Start accepting; ``sock`` may be a pre-bound listening socket
        (the fleet's ``SO_REUSEPORT`` path binds one per worker)."""
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host,
                self.config.port)
        return self._server

    async def handle_accepted_socket(self, sock: socket.socket) -> None:
        """Serve one connection handed over as a connected socket.

        This is the fallback (no ``SO_REUSEPORT``) fleet path: the
        supervisor accepts, round-robins the accepted socket to a
        worker over a unix socketpair, and the worker drives it through
        the exact same per-connection handler as kernel-routed
        connections — identical payloads by construction.
        """
        try:
            reader, writer = await asyncio.open_connection(sock=sock)
        except OSError:
            sock.close()
            return
        await self._handle_connection(reader, writer)

    @property
    def bound_port(self) -> int:
        """The actual port (useful when configured with port 0)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        server = self._server or await self.start()
        async with server:
            await server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for batcher in self._batchers.values():
            await batcher.close()
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        if self.worker_id is not None and \
                fault_fires("serving.worker_kill"):
            # Fault plane: die exactly as a crashed worker would — no
            # cleanup, no goodbye.  The supervisor restarts the worker;
            # the client's retry lands on a live sibling whose
            # deterministic compute yields byte-identical payloads.
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HTTPError as exc:
                    await self._write(writer, self._error_response(
                        exc, keep_alive=False))
                    break
                if request is None:
                    break
                payload = await self._dispatch(request)
                if fault_fires("serving.connection"):
                    # Fault plane: drop the client before the write.
                    # The response was computed (and result-cached)
                    # above, so a retrying client gets byte-identical
                    # payload — the fault costs a round trip, never
                    # output.
                    self._drop_connection(writer)
                    break
                if not await self._write(writer, payload):
                    break
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                TimeoutError, OSError):
            pass  # client went away mid-request; never fatal
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _write(self, writer: asyncio.StreamWriter,
                     payload: bytes) -> bool:
        """Write + drain with the slow-client timeout.

        Returns False (after aborting the transport) when the client
        would not drain within ``write_timeout_s`` — the caller must
        stop serving the connection.
        """
        writer.write(payload)
        try:
            await asyncio.wait_for(writer.drain(),
                                   self.config.write_timeout_s)
        except asyncio.TimeoutError:
            self.metrics.write_timeouts += 1
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return False
        return True

    def _drop_connection(self, writer: asyncio.StreamWriter) -> None:
        self.metrics.dropped_connections += 1
        transport = writer.transport
        if transport is not None:
            transport.abort()

    @staticmethod
    def _error_response(error: HTTPError,
                        keep_alive: bool = True) -> bytes:
        return json_response(error.status, {"error": error.message},
                             extra_headers=error.headers,
                             keep_alive=keep_alive)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HTTPRequest) -> bytes:
        start = time.perf_counter()
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return self._healthz()
        if path == "/metrics":
            return self._metrics_response(request)
        if path in _ENDPOINTS:
            endpoint, request_type = _ENDPOINTS[path]
            status, payload = await self._query(request, endpoint,
                                                request_type)
            self.metrics.endpoint(endpoint).observe_request(
                status, time.perf_counter() - start)
            headers = {}
            if status == 429:
                headers["Retry-After"] = \
                    f"{self.config.retry_after_s:.3f}"
            return json_response(status, payload,
                                 extra_headers=headers,
                                 keep_alive=request.keep_alive)
        return json_response(404, {"error": f"no such path {path!r}"},
                             keep_alive=request.keep_alive)

    def _healthz(self) -> bytes:
        payload = {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "constellations": self.service.constellation_names,
            "pending": {name: batcher.pending
                        for name, batcher in self._batchers.items()},
        }
        if self.clock is not None:
            payload["realtime"] = {
                "sim_offset_s": round(self.clock.now_offset_s(), 3),
                "rate": self.clock.rate,
            }
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        return json_response(200, payload)

    def _metrics_response(self, request: HTTPRequest) -> bytes:
        ephemeris = self.service.ephemeris
        grid_bytes = ephemeris.grid_resident_bytes()
        wants_text = request.query.get("format") == "text" or \
            "text/plain" in request.headers.get("accept", "")
        if wants_text:
            stats = ephemeris.stats
            ephemeris_table = render_fixed_table(
                ["grid MiB", "grid h/m", "pass h/m", "disk h/w"],
                [[f"{grid_bytes / 2**20:.2f}",
                  f"{stats.grid_hits}/{stats.grid_misses}",
                  f"{stats.pass_hits}/{stats.pass_misses}",
                  f"{stats.disk_hits}/{stats.disk_writes}"]],
                title="Ephemeris cache")
            return text_response(
                200, self.metrics.render() + "\n" + ephemeris_table
                + "\n")
        payload = self.metrics.to_dict()
        payload["_cache"] = {
            "entries": len(self.cache),
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "hit_rate": round(self.cache.hit_rate, 4),
            "ttl_s": self.cache.ttl_s,
        }
        payload["_ephemeris"] = {
            "grid_bytes": grid_bytes,
            # Split by residency: private bytes are paid per worker,
            # mmap bytes are one machine-wide copy shared by every
            # worker that maps the same segment.
            "grid_private_bytes": ephemeris.stats.grid_private_bytes,
            "grid_mmap_bytes": ephemeris.stats.grid_mmap_bytes,
            "grid_hits": ephemeris.stats.grid_hits,
            "grid_misses": ephemeris.stats.grid_misses,
            "grid_extensions": ephemeris.stats.grid_extensions,
            "pass_hits": ephemeris.stats.pass_hits,
            "pass_misses": ephemeris.stats.pass_misses,
        }
        if self.worker_id is not None:
            payload["_server"]["worker_id"] = self.worker_id
        plane = get_default_plane()
        if plane is not None and plane.rules:
            payload["_faults"] = plane.summary()
        return json_response(200, payload)

    # ------------------------------------------------------------------
    # Query endpoints
    # ------------------------------------------------------------------
    async def _query(self, request: HTTPRequest, endpoint: str,
                     request_type) -> Tuple[int, dict]:
        if request.method not in ("GET", "POST"):
            return 405, {"error": f"method {request.method} not allowed"}
        try:
            # Validate against the *loaded* constellation set (which may
            # include catalog-built ones) — or, for compare, the loaded
            # provider set — so an unknown name is a clean 400 instead
            # of a handler fault deep in the batcher.
            known = self.service.provider_names \
                if endpoint == "compare" \
                else self.service.constellation_names
            query = request_type.from_params(
                request.params(), known=known, clock=self.clock,
                epochs=self.service.epochs)
        except HTTPError as exc:
            return exc.status, {"error": exc.message}
        except ValueError as exc:
            return 400, {"error": str(exc)}

        em = self.metrics.endpoint(endpoint)
        key = query.cache_key(self.config.cache_decimals)
        cached = self.cache.get(key)
        em.observe_cache(cached is not None)
        if cached is not None:
            return 200, cached

        try:
            future = self._batchers[endpoint].submit(query)
        except QueueFullError as exc:
            return 429, {"error": "request queue full",
                         "retry_after_s": exc.retry_after_s}
        try:
            payload = await future
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # handler fault → contained 500
            return 500, {"error": f"internal error: {exc}"}
        self.cache.put(key, payload)
        return 200, payload
