"""TTL + LRU result cache for serving responses.

Fleet queries exhibit strong geographic locality: thousands of deployed
nodes share a handful of deployment regions, and a pass prediction for
(47.37°N, 8.54°E) is equally valid a few hundred metres away.  The
serving layer therefore quantizes request coordinates (default 0.01°,
~1.1 km) and caches the *response payload* under the quantized key.

Entries expire after ``ttl_s`` (ephemerides age; default 60 s) and the
cache is LRU-bounded at ``max_entries``.  Expired entries are evicted
lazily on access and during inserts, so the cache needs no background
task.  A monotonic ``clock`` can be injected for deterministic tests.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional


__all__ = ["ResultCache", "quantize_coord"]


def quantize_coord(value: float, decimals: int = 2) -> float:
    """Round a coordinate for cache-key purposes (default ~1.1 km)."""
    return round(float(value), decimals)


class ResultCache:
    """Bounded TTL+LRU mapping from request keys to response payloads."""

    def __init__(self, max_entries: int = 4096, ttl_s: float = 60.0,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if max_entries < 1:
            raise ValueError("cache capacity must be positive")
        if ttl_s <= 0:
            raise ValueError("ttl must be positive")
        self.max_entries = int(max_entries)
        self.ttl_s = float(ttl_s)
        self._clock = clock or time.monotonic
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[Any]:
        """Cached payload for ``key``, or ``None`` on miss/expiry."""
        entry = self._entries.get(key)
        now = self._clock()
        if entry is not None and now - entry[0] <= self.ttl_s:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]
        if entry is not None:
            del self._entries[key]
            self.expirations += 1
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        now = self._clock()
        self._entries[key] = (now, value)
        self._entries.move_to_end(key)
        # Lazily drop expired heads, then enforce the LRU bound.
        while self._entries:
            oldest_key = next(iter(self._entries))
            stamp, _ = self._entries[oldest_key]
            if now - stamp > self.ttl_s:
                del self._entries[oldest_key]
                self.expirations += 1
                continue
            break
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
