"""Multi-worker serving fleet: SO_REUSEPORT processes, supervised.

One asyncio process tops out near a couple hundred pass queries per
second — a single core's worth of NumPy.  This module scales
``satiot serve`` horizontally the way LEO-edge services are actually
deployed: N independent worker *processes*, each running the existing
event loop + micro-batcher + its own shared-nothing TTL/LRU result
cache, all answering on **one** TCP port.

Topology
--------
::

                     ┌─ worker 0 ─ asyncio loop ─ MicroBatcher ─ cache
    clients ──► :port├─ worker 1 ─ asyncio loop ─ MicroBatcher ─ cache
                     └─ worker N ─ asyncio loop ─ MicroBatcher ─ cache
                        ▲    ▲                        │
            supervisor ─┘    └── mmap'd ephemeris ────┘
            (restart, metrics)   segments (one resident copy)

* **Routing.** With ``SO_REUSEPORT`` (Linux/BSD) every worker binds its
  own listening socket to the same port and the kernel distributes
  incoming connections by 4-tuple hash — no user-space hop at all.
  Where the option is unavailable (or forced off with
  ``SATIOT_SERVE_REUSEPORT=0``), the supervisor binds a single
  listening socket, accepts, and round-robins each pre-accepted
  connection to a worker over a unix socketpair (``SCM_RIGHTS`` fd
  passing).  Both paths feed the exact same per-connection handler, so
  payloads are byte-identical — proven by the fallback test suite.

* **Caches are shared-nothing by design.**  Each worker owns a private
  result cache keyed on deterministic quantized request tuples; because
  every worker's compute is bit-deterministic, the *value* under a key
  is identical no matter which worker computes it.  Routing therefore
  affects hit rates, never bytes.  The expensive state — the
  ``(N, T, 3)`` constellation ephemeris — is **not** duplicated: all
  workers share one disk tier and open grid segments via
  ``np.load(mmap_mode="r")``, so the fleet holds one resident copy of
  the fleet ephemeris machine-wide (see
  :mod:`satiot.runtime.ephemeris_cache`).

* **Supervision.**  A monitor thread reaps crashed workers and
  restarts them (capped by ``max_restarts``); the seeded
  ``serving.worker_kill`` fault site SIGKILLs a worker mid-accept to
  exercise exactly this path.  The chaos contract holds: a retrying
  client lands on a live sibling and receives byte-identical payloads,
  under any worker count.

* **Observability.**  Each worker answers ``metrics`` requests over
  its control socketpair with a :meth:`ServingMetrics.snapshot`;
  :meth:`ServingFleet.fleet_metrics` folds them with
  :func:`~satiot.serving.metrics.merge_snapshots` into one fleet view:
  merged per-endpoint counters/histograms/pooled-quantiles plus a
  ``_workers`` section (per-worker RSS, grid residency split,
  restarts).

Requires ``fork`` (POSIX).  On platforms without it the fleet refuses
to start and ``satiot serve`` stays single-process.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import shutil
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import merge_snapshots
from .server import ServingConfig, ServingServer

__all__ = ["FleetConfig", "ServingFleet", "REUSEPORT_ENV",
           "WORKERS_ENV", "default_workers", "fork_available",
           "reuseport_available"]

#: Default worker count for ``satiot serve`` (CLI ``--workers`` wins).
WORKERS_ENV = "SATIOT_SERVE_WORKERS"
#: Set to 0/false/off to force the pre-accepted round-robin fallback
#: even where ``SO_REUSEPORT`` is available.
REUSEPORT_ENV = "SATIOT_SERVE_REUSEPORT"

_ACCEPT_POLL_S = 0.2
_MONITOR_POLL_S = 0.02


def default_workers() -> int:
    """Worker count from ``SATIOT_SERVE_WORKERS`` (default 1)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV} must be a positive integer, got {raw!r}")
    if value < 1:
        raise ValueError(
            f"{WORKERS_ENV} must be a positive integer, got {raw!r}")
    return value


def fork_available() -> bool:
    """Fleet workers are forked; spawn can't inherit live sockets."""
    return "fork" in multiprocessing.get_all_start_methods()


def reuseport_available() -> bool:
    """True when the kernel accepts ``SO_REUSEPORT`` (env can veto)."""
    if os.environ.get(REUSEPORT_ENV, "1").strip().lower() in (
            "0", "false", "off", "no"):
        return False
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:
        return False
    return True


@dataclass
class FleetConfig:
    """Operational knobs of the supervisor (not of one server)."""

    workers: int = 2
    #: None = auto-detect; True/False forces the routing mode.
    reuseport: Optional[bool] = None
    #: Pause before restarting a crashed worker.
    restart_backoff_s: float = 0.05
    #: Total restart budget across the fleet's lifetime; beyond it a
    #: crashing worker slot is abandoned (the rest keep serving).
    max_restarts: int = 64
    #: Shared ephemeris disk tier.  None → a private temp directory,
    #: removed on :meth:`ServingFleet.stop`.
    ephemeris_dir: Optional[str] = None
    #: Catalog service recipe (mirrors ``satiot serve --catalog``).
    catalog: Optional[str] = None
    select: Optional[Tuple[str, ...]] = None
    catalog_name: str = "catalog"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("fleet needs at least one worker")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")


@dataclass
class _WorkerSlot:
    """Supervisor-side state of one worker index."""

    process: Optional[multiprocessing.process.BaseProcess] = None
    control: Optional[socket.socket] = None
    conn: Optional[socket.socket] = None
    restarts: int = 0
    abandoned: bool = False
    last_metrics: Optional[dict] = None
    #: Unparsed bytes read off the control socket (stale replies from
    #: re-sent, timed-out requests are drained through here).
    recv_buffer: bytes = b""

    def close_channels(self) -> None:
        for sock in (self.control, self.conn):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self.control = None
        self.conn = None
        self.recv_buffer = b""


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _build_worker_service(config: ServingConfig, fleet: FleetConfig,
                          ephemeris_dir: str):
    """Build one worker's service over the *shared* mmap'd disk tier."""
    from ..runtime.ephemeris_cache import EphemerisCache
    from .service import ConstellationService

    ephemeris = EphemerisCache(disk_dir=ephemeris_dir, readonly=True)
    extra = []
    if fleet.catalog:
        from ..catalog import constellation_from_catalog
        extra.append(constellation_from_catalog(
            fleet.catalog, list(fleet.select) if fleet.select else None,
            name=fleet.catalog_name))
    return ConstellationService(
        constellations=config.constellations,
        ephemeris=ephemeris, coarse_step_s=config.coarse_step_s,
        extra=extra, providers=config.providers,
        realtime=config.realtime)


def _worker_main(worker_id: int, config: ServingConfig,
                 fleet: FleetConfig, ephemeris_dir: str,
                 host: str, port: int, reuseport: bool,
                 control: socket.socket,
                 conn: Optional[socket.socket]) -> None:
    """Entry point of one forked worker process."""
    # Forked children inherit the parent's singletons; rebuild both the
    # fault plane (fresh per-site consult counters, per the documented
    # worker contract) and the process-default ephemeris cache from the
    # environment.
    from ..faults import reset_default_plane
    from ..runtime.ephemeris_cache import reset_default_cache
    reset_default_plane()
    reset_default_cache()
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        asyncio.run(_worker_async(worker_id, config, fleet,
                                  ephemeris_dir, host, port, reuseport,
                                  control, conn))
    except KeyboardInterrupt:  # pragma: no cover - signal race
        pass


async def _worker_async(worker_id: int, config: ServingConfig,
                        fleet: FleetConfig, ephemeris_dir: str,
                        host: str, port: int, reuseport: bool,
                        control: socket.socket,
                        conn: Optional[socket.socket]) -> None:
    loop = asyncio.get_running_loop()
    service = _build_worker_service(config, fleet, ephemeris_dir)
    server = ServingServer(config, service=service, worker_id=worker_id)
    started = time.monotonic()

    if reuseport:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        await server.start(sock=sock)
    else:
        # Pre-accepted mode: no listening socket; connections arrive as
        # SCM_RIGHTS fds on the conn socketpair, one datagram each.
        conn.setblocking(False)

        def on_connection() -> None:
            while True:
                try:
                    _, fds, _, _ = socket.recv_fds(conn, 16, 8)
                except (BlockingIOError, InterruptedError):
                    return
                except OSError:
                    loop.remove_reader(conn.fileno())
                    return
                if not fds:
                    return
                for fd in fds:
                    client = socket.socket(fileno=fd)
                    loop.create_task(
                        server.handle_accepted_socket(client))

        loop.add_reader(conn.fileno(), on_connection)

    stop = asyncio.Event()
    control.setblocking(False)
    buffer = bytearray()

    def snapshot() -> dict:
        import resource
        ephemeris = server.service.ephemeris
        grid_bytes = ephemeris.grid_resident_bytes()
        return {
            "worker": worker_id,
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - started, 3),
            "rss_max_kib": resource.getrusage(
                resource.RUSAGE_SELF).ru_maxrss,
            "metrics": server.metrics.snapshot(),
            "ephemeris": {
                "grid_bytes": grid_bytes,
                "grid_private_bytes":
                    ephemeris.stats.grid_private_bytes,
                "grid_mmap_bytes": ephemeris.stats.grid_mmap_bytes,
                "grid_hits": ephemeris.stats.grid_hits,
                "grid_misses": ephemeris.stats.grid_misses,
                "grid_extensions": ephemeris.stats.grid_extensions,
                "disk_hits": ephemeris.stats.disk_hits,
                "disk_writes": ephemeris.stats.disk_writes,
            },
        }

    async def reply(payload: dict) -> None:
        data = json.dumps(payload).encode("utf-8") + b"\n"
        try:
            await loop.sock_sendall(control, data)
        except OSError:
            stop.set()

    def on_control() -> None:
        try:
            chunk = control.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            stop.set()
            return
        if not chunk:  # supervisor went away: shut down
            loop.remove_reader(control.fileno())
            stop.set()
            return
        buffer.extend(chunk)
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                break
            line = bytes(buffer[:newline])
            del buffer[:newline + 1]
            try:
                command = json.loads(line)
            except ValueError:
                continue
            cmd = command.get("cmd")
            if cmd in ("metrics", "ping"):
                payload = snapshot() if cmd == "metrics" else \
                    {"worker": worker_id, "pid": os.getpid()}
                payload["cmd"] = cmd
                # Echo the request id: the supervisor may have re-sent
                # a timed-out request, and matches replies by id.
                payload["id"] = command.get("id")
                loop.create_task(reply(payload))
            elif cmd == "stop":
                stop.set()

    # Registered only after the server is accepting: a "ping" reply is
    # the supervisor's readiness signal.
    loop.add_reader(control.fileno(), on_control)

    await stop.wait()
    try:
        loop.remove_reader(control.fileno())
    except (OSError, ValueError):  # pragma: no cover - teardown race
        pass
    await server.close()
    # Let in-flight connection handlers finish before asyncio.run tears
    # the loop down — cancelling them mid-close is noisy, not unsafe.
    pending = [task for task in asyncio.all_tasks()
               if task is not asyncio.current_task()]
    if pending:
        await asyncio.wait(pending, timeout=1.0)


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class ServingFleet:
    """Spawns, routes to, observes and restarts N serving workers."""

    def __init__(self, config: Optional[ServingConfig] = None,
                 fleet: Optional[FleetConfig] = None) -> None:
        self.config = config or ServingConfig()
        self.fleet = fleet or FleetConfig()
        if not fork_available():
            raise RuntimeError(
                "serving fleet requires the 'fork' start method "
                "(POSIX); run single-process on this platform")
        self.reuseport = self.fleet.reuseport \
            if self.fleet.reuseport is not None else reuseport_available()
        if self.fleet.reuseport and not reuseport_available():
            raise RuntimeError("SO_REUSEPORT forced on but unavailable")
        if self.config.realtime and self.config.clock_anchor is None:
            # Pin one anchor before forking: every worker (including
            # ones respawned minutes later) maps wall time to the same
            # sim offset, so now-queries are fleet-globally identical.
            self.config.clock_anchor = time.time()
        self._ctx = multiprocessing.get_context("fork")
        self._slots: List[_WorkerSlot] = [
            _WorkerSlot() for _ in range(self.fleet.workers)]
        self._port: Optional[int] = None
        self._reserve: Optional[socket.socket] = None
        self._listen: Optional[socket.socket] = None
        self._closing = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._acceptor: Optional[threading.Thread] = None
        self._control_lock = threading.Lock()
        self._rr = 0
        self._seq = 0
        self._owns_ephemeris_dir = self.fleet.ephemeris_dir is None
        self.ephemeris_dir = self.fleet.ephemeris_dir or \
            tempfile.mkdtemp(prefix="satiot-fleet-ephemeris-")
        self._started = False

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        return "reuseport" if self.reuseport else "fallback"

    @property
    def workers(self) -> int:
        return self.fleet.workers

    @property
    def bound_port(self) -> int:
        if self._port is None:
            raise RuntimeError("fleet is not started")
        return self._port

    @property
    def total_restarts(self) -> int:
        return sum(slot.restarts for slot in self._slots)

    def worker_pids(self) -> List[Optional[int]]:
        return [slot.process.pid
                if slot.process is not None and slot.process.is_alive()
                else None
                for slot in self._slots]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Bind the port, fork the workers, start supervision.

        Returns the bound port (useful with ``port=0``).
        """
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        host, port = self.config.host, self.config.port
        if self.reuseport:
            # Reserve the port with a bound (never listening) socket so
            # an ephemeral port=0 resolves once and every worker can
            # bind the same number; only listening members of the
            # reuseport group receive connections.
            self._reserve = socket.socket(socket.AF_INET,
                                          socket.SOCK_STREAM)
            self._reserve.setsockopt(socket.SOL_SOCKET,
                                     socket.SO_REUSEADDR, 1)
            self._reserve.setsockopt(socket.SOL_SOCKET,
                                     socket.SO_REUSEPORT, 1)
            self._reserve.bind((host, port))
            self._port = self._reserve.getsockname()[1]
        else:
            self._listen = socket.socket(socket.AF_INET,
                                         socket.SOCK_STREAM)
            self._listen.setsockopt(socket.SOL_SOCKET,
                                    socket.SO_REUSEADDR, 1)
            self._listen.bind((host, port))
            self._listen.listen(512)
            self._listen.settimeout(_ACCEPT_POLL_S)
            self._port = self._listen.getsockname()[1]
        for index in range(self.workers):
            self._spawn(index)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="satiot-fleet-monitor",
            daemon=True)
        self._monitor.start()
        if not self.reuseport:
            self._acceptor = threading.Thread(
                target=self._accept_loop, name="satiot-fleet-accept",
                daemon=True)
            self._acceptor.start()
        return self._port

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every (non-abandoned) worker answers a ping."""
        deadline = time.monotonic() + timeout
        for index in range(self.workers):
            remaining = deadline - time.monotonic()
            while remaining > 0:
                if self._request(index, "ping",
                                 timeout=min(remaining, 1.0)) \
                        is not None:
                    break
                remaining = deadline - time.monotonic()
            else:
                raise TimeoutError(
                    f"worker {index} not ready within {timeout:.1f}s")

    def stop(self) -> None:
        """Graceful shutdown: stop workers, reap, release sockets."""
        if self._closing.is_set():
            return
        self._closing.set()
        for sock in (self._listen, self._reserve):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        for slot in self._slots:
            if slot.control is not None:
                try:
                    slot.control.sendall(b'{"cmd": "stop"}\n')
                except OSError:
                    pass
        for slot in self._slots:
            proc = slot.process
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=1.0)
            slot.process = None
            slot.close_channels()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        if self._acceptor is not None:
            self._acceptor.join(timeout=2.0)
        if self._owns_ephemeris_dir:
            shutil.rmtree(self.ephemeris_dir, ignore_errors=True)

    def __enter__(self) -> "ServingFleet":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Worker management
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> None:
        slot = self._slots[index]
        slot.close_channels()
        control_parent, control_child = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_STREAM)
        conn_parent = conn_child = None
        if not self.reuseport:
            conn_parent, conn_child = socket.socketpair(
                socket.AF_UNIX, socket.SOCK_DGRAM)
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, self.config, self.fleet, self.ephemeris_dir,
                  self.config.host, self._port, self.reuseport,
                  control_child, conn_child),
            name=f"satiot-serve-{index}", daemon=True)
        process.start()
        # The parent keeps only its ends; the child inherited its own.
        control_child.close()
        if conn_child is not None:
            conn_child.close()
        slot.process = process
        slot.control = control_parent
        slot.conn = conn_parent

    def _monitor_loop(self) -> None:
        while not self._closing.is_set():
            for index, slot in enumerate(self._slots):
                proc = slot.process
                if proc is None or proc.is_alive() or slot.abandoned:
                    continue
                proc.join()
                if self._closing.is_set():
                    break
                slot.restarts += 1
                if self.total_restarts > self.fleet.max_restarts:
                    slot.abandoned = True
                    slot.process = None
                    slot.close_channels()
                    continue
                if self.fleet.restart_backoff_s > 0:
                    self._closing.wait(self.fleet.restart_backoff_s)
                if not self._closing.is_set():
                    self._spawn(index)
            self._closing.wait(_MONITOR_POLL_S)

    def _accept_loop(self) -> None:
        """Fallback router: accept, then hand the fd to the next live
        worker (deterministic round-robin over worker slots)."""
        while not self._closing.is_set():
            try:
                client, _ = self._listen.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            routed = False
            for _ in range(self.workers):
                index = self._rr % self.workers
                self._rr += 1
                slot = self._slots[index]
                if slot.conn is None or slot.process is None or \
                        not slot.process.is_alive():
                    continue
                try:
                    socket.send_fds(slot.conn, [b"c"],
                                    [client.fileno()])
                    routed = True
                    break
                except OSError:
                    continue
            # Routed or not, the supervisor's copy of the fd closes;
            # an unrouted client sees a reset and retries.
            client.close()
            if not routed:
                time.sleep(_MONITOR_POLL_S)

    # ------------------------------------------------------------------
    # Control channel
    # ------------------------------------------------------------------
    def _request(self, index: int, cmd: str,
                 timeout: float = 5.0) -> Optional[dict]:
        slot = self._slots[index]
        with self._control_lock:
            sock = slot.control
            proc = slot.process
            if sock is None or proc is None or not proc.is_alive():
                return None
            self._seq += 1
            request_id = self._seq
            deadline = time.monotonic() + timeout
            try:
                sock.sendall(json.dumps(
                    {"cmd": cmd, "id": request_id}).encode("utf-8")
                    + b"\n")
                while True:
                    # Drain complete lines; stale replies to earlier
                    # timed-out requests are matched out by id.
                    while b"\n" in slot.recv_buffer:
                        line, _, slot.recv_buffer = \
                            slot.recv_buffer.partition(b"\n")
                        try:
                            reply = json.loads(line)
                        except ValueError:
                            continue
                        if reply.get("id") == request_id:
                            return reply
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    sock.settimeout(remaining)
                    chunk = sock.recv(65536)
                    if not chunk:
                        return None
                    slot.recv_buffer += chunk
            except (OSError, ValueError):
                return None

    def fleet_metrics(self, timeout: float = 5.0) -> dict:
        """One merged metrics payload for the whole fleet.

        Per-endpoint counters, batch-size histograms and pooled
        latency quantiles are merged across workers
        (:func:`~satiot.serving.metrics.merge_snapshots`); the
        ``_workers`` section keeps each worker's RSS, restart count and
        ephemeris residency split, and ``_fleet`` summarizes the
        grid-sharing story: ``grid_mmap_bytes_max`` is the one shared
        resident copy, where per-worker *private* grids would instead
        multiply by N.
        """
        snapshots: List[dict] = []
        workers: Dict[str, dict] = {}
        mmap_bytes: List[int] = []
        private_bytes: List[int] = []
        for index, slot in enumerate(self._slots):
            reply = self._request(index, "metrics", timeout=timeout)
            if reply is None:
                workers[str(index)] = {
                    "alive": False,
                    "restarts": slot.restarts,
                    "abandoned": slot.abandoned,
                }
                continue
            slot.last_metrics = reply
            snapshots.append(reply.get("metrics", {}))
            ephemeris = reply.get("ephemeris", {})
            mmap_bytes.append(int(ephemeris.get("grid_mmap_bytes", 0)))
            private_bytes.append(
                int(ephemeris.get("grid_private_bytes", 0)))
            workers[str(index)] = {
                "alive": True,
                "pid": reply.get("pid"),
                "uptime_s": reply.get("uptime_s"),
                "rss_max_kib": reply.get("rss_max_kib"),
                "restarts": slot.restarts,
                "ephemeris": ephemeris,
            }
        payload = merge_snapshots(snapshots)
        payload["_workers"] = workers
        payload["_fleet"] = {
            "workers": self.workers,
            "mode": self.mode,
            "port": self._port,
            "restarts": self.total_restarts,
            "grid_mmap_bytes_max": max(mmap_bytes, default=0),
            "grid_private_bytes_total": sum(private_bytes),
        }
        return payload
