"""Expenditure comparison between the two paradigms (paper Table 2).

Produces the same rows the paper reports — device cost, infrastructure
cost, operational cost — plus a total-cost-of-ownership curve over time,
which makes the crossover between "cheap hardware + gateway" and
"expensive node + per-packet billing" explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from typing import Union

from .pricing import (TERRESTRIAL_COSTS, SatelliteCostModel,
                      TerrestrialCostModel)
from .providers import resolve_costs

__all__ = ["ExpenditureRow", "expenditure_table", "tco_usd",
           "tco_crossover_months"]

#: ``satellite=`` arguments: a concrete model, a registered provider
#: name, or None (the measured Tianqi service via the registry).
SatelliteCosts = Union[SatelliteCostModel, str, None]


@dataclass(frozen=True)
class ExpenditureRow:
    """One row of the Table 2 comparison."""

    network: str
    device_cost_usd: float
    infrastructure_cost_usd: float
    operational_usd_per_month: float


def expenditure_table(packets_per_day: float = 48.0,
                      payload_bytes: int = 20,
                      satellite: SatelliteCosts = None,
                      terrestrial: TerrestrialCostModel = TERRESTRIAL_COSTS,
                      ) -> List[ExpenditureRow]:
    """The paper's Table 2 for a given per-sensor traffic profile.

    ``satellite`` routes through the provider registry (see
    :func:`satiot.econ.providers.resolve_costs`): ``None`` is the
    measured Tianqi service, a string selects a registered provider.
    """
    satellite = resolve_costs(satellite)
    return [
        ExpenditureRow(
            network="Terrestrial IoT",
            device_cost_usd=terrestrial.end_node_cost_usd,
            infrastructure_cost_usd=terrestrial.gateway_cost_usd,
            operational_usd_per_month=terrestrial.monthly_data_cost_usd(1),
        ),
        ExpenditureRow(
            network="Satellite IoT",
            device_cost_usd=satellite.device_cost_usd,
            infrastructure_cost_usd=0.0,
            operational_usd_per_month=satellite.monthly_data_cost_usd(
                packets_per_day, payload_bytes),
        ),
    ]


def tco_usd(months: float, node_count: int = 1,
            packets_per_day: float = 48.0, payload_bytes: int = 20,
            satellite: SatelliteCosts = None,
            terrestrial: TerrestrialCostModel = TERRESTRIAL_COSTS,
            ) -> Dict[str, float]:
    """Total cost of ownership of both systems after ``months``.

    ``satellite`` accepts a registered provider name (or ``None`` for
    the measured Tianqi service) besides a concrete cost model.
    """
    if months < 0:
        raise ValueError("months cannot be negative")
    satellite = resolve_costs(satellite)
    sat = (satellite.construction_cost_usd(node_count)
           + months * node_count
           * satellite.monthly_data_cost_usd(packets_per_day, payload_bytes))
    terr = (terrestrial.construction_cost_usd(node_count)
            + months * terrestrial.monthly_data_cost_usd(1))
    return {"satellite_usd": sat, "terrestrial_usd": terr}


def tco_crossover_months(node_count: int = 1, packets_per_day: float = 48.0,
                         payload_bytes: int = 20,
                         satellite: SatelliteCosts = None,
                         terrestrial: TerrestrialCostModel
                         = TERRESTRIAL_COSTS,
                         horizon_months: int = 600) -> Tuple[bool, float]:
    """When (if ever) the cheaper system flips within the horizon.

    Returns ``(flips, months)``; ``months`` is ``inf`` when the initially
    cheaper system stays cheaper for the whole horizon.  ``satellite``
    resolves through the provider registry like :func:`tco_usd`.
    """
    satellite = resolve_costs(satellite)
    first = tco_usd(0, node_count, packets_per_day, payload_bytes,
                    satellite, terrestrial)
    sat_cheaper_at_start = first["satellite_usd"] < first["terrestrial_usd"]
    for month in range(1, horizon_months + 1):
        now = tco_usd(month, node_count, packets_per_day, payload_bytes,
                      satellite, terrestrial)
        if (now["satellite_usd"] < now["terrestrial_usd"]) \
                != sat_cheaper_at_start:
            return True, float(month)
    return False, float("inf")
