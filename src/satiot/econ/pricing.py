"""Cost models for both IoT paradigms (paper Table 2).

Tianqi bills per packet (16.5 USD per thousand packets, each carrying up
to 120 bytes); the terrestrial system pays for hardware (end nodes and
gateways) plus a flat LTE data plan for backhaul.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SatelliteCostModel", "TerrestrialCostModel",
            "TIANQI_COSTS", "TERRESTRIAL_COSTS"]


@dataclass(frozen=True)
class SatelliteCostModel:
    """Per-packet billed satellite IoT service."""

    device_cost_usd: float = 220.0
    usd_per_thousand_packets: float = 16.5
    max_payload_bytes: int = 120

    def packets_for_payload(self, payload_bytes: int) -> int:
        """Billable packets needed to carry one reading."""
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        return math.ceil(payload_bytes / self.max_payload_bytes)

    def monthly_data_cost_usd(self, packets_per_day: float,
                              payload_bytes: int = 20,
                              days_per_month: float = 30.0) -> float:
        """Monthly service charge for one sensor."""
        if packets_per_day < 0:
            raise ValueError("packet rate cannot be negative")
        billable = packets_per_day * self.packets_for_payload(payload_bytes)
        return (billable * days_per_month / 1000.0
                * self.usd_per_thousand_packets)

    def construction_cost_usd(self, node_count: int) -> float:
        if node_count <= 0:
            raise ValueError("need at least one node")
        return node_count * self.device_cost_usd


@dataclass(frozen=True)
class TerrestrialCostModel:
    """Gateway-based terrestrial IoT with an LTE backhaul plan."""

    end_node_cost_usd: float = 35.0
    gateway_cost_usd: float = 219.0
    lte_plan_usd_per_month: float = 4.9
    lte_bandwidth_mbps: float = 42.0
    nodes_per_gateway: int = 500

    def construction_cost_usd(self, node_count: int,
                              gateway_count: int = None) -> float:
        if node_count <= 0:
            raise ValueError("need at least one node")
        if gateway_count is None:
            gateway_count = max(
                1, math.ceil(node_count / self.nodes_per_gateway))
        if gateway_count <= 0:
            raise ValueError("need at least one gateway")
        return (node_count * self.end_node_cost_usd
                + gateway_count * self.gateway_cost_usd)

    def monthly_data_cost_usd(self, gateway_count: int = 1) -> float:
        if gateway_count <= 0:
            raise ValueError("need at least one gateway")
        return gateway_count * self.lte_plan_usd_per_month


#: The paper's concrete deployments.
TIANQI_COSTS = SatelliteCostModel()
TERRESTRIAL_COSTS = TerrestrialCostModel()
