"""Economics: device/infrastructure/operational cost models."""

from .comparison import (ExpenditureRow, expenditure_table,
                         tco_crossover_months, tco_usd)
from .pricing import (TERRESTRIAL_COSTS, TIANQI_COSTS, SatelliteCostModel,
                      TerrestrialCostModel)
from .providers import (PROVIDERS, ProviderSpec, get_provider,
                        provider_names, register_provider, resolve_costs)

__all__ = [
    "ExpenditureRow", "expenditure_table", "tco_usd",
    "tco_crossover_months",
    "SatelliteCostModel", "TerrestrialCostModel",
    "TIANQI_COSTS", "TERRESTRIAL_COSTS",
    "ProviderSpec", "PROVIDERS", "register_provider", "get_provider",
    "provider_names", "resolve_costs",
]
