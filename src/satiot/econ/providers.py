"""Provider registry: satellite IoT services as data.

The paper measures one operational service (Tianqi); the digital twin
compares *alternatives* — so a provider is a value, not a hardcoded
constant: a constellation geometry, a MAC discipline and a pricing
model bundled under one name.  The serving layer's ``/v1/compare``
endpoint and the scenario specs' ``traffic.provider`` key both select
from this registry, and :mod:`satiot.econ.comparison` resolves its
``satellite=`` arguments through it so a comparison can never silently
mix one provider's geometry with another's tariff.

The Swarm- and Iridium-style entries are *representative archetypes*
built from public datasheets and price lists (cf. the Swarm-vs-Iridium
comparison referenced in PAPERS.md), not calibrated reproductions:

* **swarm** — a dense VHF picosatellite fleet; cheap modem, cheap
  per-packet tariff (750 packets × 192 B for 5 USD/month ≈ 6.67 USD
  per thousand packets), deep store-and-forward queues.
* **iridium** — a crosslinked L-band constellation (66 active birds in
  6 planes); near-continuous coverage and small latencies, but an
  expensive modem and a tariff two orders of magnitude above Swarm's.

Registered constellations are **not** added to
:data:`~satiot.constellations.catalog.CONSTELLATION_SPECS`: the
catalog describes the paper's measured systems, the registry describes
what-if alternatives.  ``build_constellation(spec=...)`` synthesizes
their TLEs on demand without touching the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

from ..constellations.catalog import (CONSTELLATION_SPECS,
                                      ConstellationSpec, DtSRadioProfile)
from ..constellations.shells import ShellSpec
from ..network.mac import MacConfig
from .pricing import TIANQI_COSTS, SatelliteCostModel

__all__ = ["ProviderSpec", "PROVIDERS", "register_provider",
           "get_provider", "provider_names", "resolve_costs"]


@dataclass(frozen=True)
class ProviderSpec:
    """One satellite IoT service: geometry + MAC + tariff."""

    name: str
    display_name: str
    constellation: ConstellationSpec
    mac: MacConfig = field(default_factory=MacConfig)
    costs: SatelliteCostModel = field(default_factory=SatelliteCostModel)
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower():
            raise ValueError(
                f"provider name must be non-empty lowercase, "
                f"got {self.name!r}")


#: Registry of selectable providers, keyed by lowercase name.
PROVIDERS: Dict[str, ProviderSpec] = {}


def register_provider(spec: ProviderSpec) -> ProviderSpec:
    """Add a provider to the registry (name collisions are errors)."""
    if spec.name in PROVIDERS:
        raise ValueError(f"provider {spec.name!r} is already registered")
    PROVIDERS[spec.name] = spec
    return spec


def provider_names() -> Tuple[str, ...]:
    """Registered provider names, sorted."""
    return tuple(sorted(PROVIDERS))


def get_provider(name: str) -> ProviderSpec:
    """Look up one provider; unknown names raise with the valid set."""
    try:
        return PROVIDERS[str(name).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown provider {name!r}; registered providers: "
            f"{', '.join(provider_names())}") from None


def resolve_costs(satellite: Union[SatelliteCostModel, str, None],
                  ) -> SatelliteCostModel:
    """Resolve a ``satellite=`` argument to a concrete cost model.

    ``None`` means the paper's measured service (Tianqi), a string is
    a registry lookup, and a :class:`SatelliteCostModel` passes
    through — so cost functions accept any of the three without the
    caller caring which.
    """
    if satellite is None:
        return get_provider("tianqi").costs
    if isinstance(satellite, SatelliteCostModel):
        return satellite
    if isinstance(satellite, str):
        return get_provider(satellite).costs
    raise TypeError(
        f"satellite must be a SatelliteCostModel, a registered "
        f"provider name, or None; got {type(satellite).__name__}")


# ----------------------------------------------------------------------
# Built-in providers
# ----------------------------------------------------------------------
register_provider(ProviderSpec(
    name="tianqi",
    display_name="Tianqi (measured)",
    constellation=CONSTELLATION_SPECS["tianqi"],
    mac=MacConfig(),
    # The identical TIANQI_COSTS object: provider-routed cost math is
    # bit-for-bit the pre-registry behaviour for the default provider.
    costs=TIANQI_COSTS,
    notes="The paper's measured service; baseline for every comparison.",
))

register_provider(ProviderSpec(
    name="swarm",
    display_name="Swarm-style VHF picosatellites",
    constellation=ConstellationSpec(
        name="swarm",
        operator_region="US",
        shells=(ShellSpec(name="SWARM", count=120,
                          altitude_min_km=450.0, altitude_max_km=550.0,
                          inclination_deg=97.6),),
        radio=DtSRadioProfile(frequency_hz=137.1e6,
                              spreading_factor=8,
                              beacon_period_s=15.0,
                              beacon_eirp_dbm=13.0,
                              uplink_max_eirp_dbm=26.0),
        norad_base=85000),
    mac=MacConfig(max_retransmissions=3, retry_backoff_s=600.0),
    costs=SatelliteCostModel(device_cost_usd=119.0,
                             usd_per_thousand_packets=6.67,
                             max_payload_bytes=192),
    notes="Dense sun-synchronous fleet, cheap modem, cheap packets.",
))

register_provider(ProviderSpec(
    name="iridium",
    display_name="Iridium-style L-band constellation",
    constellation=ConstellationSpec(
        name="iridium",
        operator_region="US",
        shells=(ShellSpec(name="IRIDIUM", count=66,
                          altitude_min_km=778.0, altitude_max_km=782.0,
                          inclination_deg=86.4, planes=6),),
        radio=DtSRadioProfile(frequency_hz=1621.25e6,
                              spreading_factor=7,
                              bandwidth_hz=250_000.0,
                              beacon_period_s=10.0,
                              beacon_eirp_dbm=15.5,
                              uplink_max_eirp_dbm=30.0),
        norad_base=86000),
    mac=MacConfig(max_retransmissions=1, turnaround_s=5.0,
                  retry_backoff_s=60.0),
    costs=SatelliteCostModel(device_cost_usd=249.0,
                             usd_per_thousand_packets=95.0,
                             max_payload_bytes=340),
    notes="Near-continuous coverage at a premium per-packet tariff.",
))
