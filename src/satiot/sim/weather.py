"""Two-state (sunny/rainy) weather process per measurement site.

The paper only distinguishes sunny vs rainy conditions (Figures 3d, 5b),
so weather is a two-state semi-Markov process with exponentially
distributed dwell times.  Episodes are pre-sampled for the campaign span
so lookups are O(log n) and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

__all__ = ["WeatherParams", "WeatherProcess"]


@dataclass(frozen=True)
class WeatherParams:
    """Climate of a site: mean dwell times of dry and rainy episodes."""

    mean_dry_hours: float = 40.0
    mean_rain_hours: float = 6.0
    start_raining: bool = False

    def __post_init__(self) -> None:
        if self.mean_dry_hours <= 0 or self.mean_rain_hours <= 0:
            raise ValueError("mean dwell times must be positive")

    @property
    def rain_fraction(self) -> float:
        """Long-run fraction of time spent raining."""
        return self.mean_rain_hours / (self.mean_rain_hours
                                       + self.mean_dry_hours)


class WeatherProcess:
    """Pre-sampled weather timeline over ``[0, duration_s]``."""

    def __init__(self, params: WeatherParams, duration_s: float,
                 rng: np.random.Generator) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.params = params
        self.duration_s = duration_s

        # transition_times[i] is the instant the state flips for the i-th
        # time; state before transition_times[0] is params.start_raining.
        times: List[float] = []
        t = 0.0
        raining = params.start_raining
        while t < duration_s:
            mean_h = (params.mean_rain_hours if raining
                      else params.mean_dry_hours)
            dwell = float(rng.exponential(mean_h * 3600.0))
            t += max(dwell, 60.0)  # episodes last at least a minute
            times.append(t)
            raining = not raining
        self._transitions = times

    def is_raining(self, t_s: Union[float, np.ndarray]):
        """Weather state at time(s) ``t_s`` (seconds from campaign start)."""
        t = np.asarray(t_s, dtype=float)
        if np.any(t < 0) or np.any(t > self.duration_s):
            raise ValueError("query outside the sampled weather span")
        idx = np.searchsorted(self._transitions, t, side="right")
        raining = (idx % 2 == 1) != self.params.start_raining
        # XOR above: even index -> start state, odd -> flipped.
        if np.ndim(t_s) == 0:
            return bool(raining)
        return raining

    def rainy_fraction_sampled(self, step_s: float = 600.0) -> float:
        """Empirical rainy fraction of this realisation (for tests)."""
        ts = np.arange(0.0, self.duration_s, step_s)
        return float(np.mean(self.is_raining(ts)))

    def episodes(self) -> List[Tuple[float, float, bool]]:
        """(start, end, raining) tuples covering the span."""
        out = []
        start = 0.0
        raining = self.params.start_raining
        for t in self._transitions:
            end = min(t, self.duration_s)
            out.append((start, end, raining))
            if t >= self.duration_s:
                break
            start = t
            raining = not raining
        return out
