"""Simulation kernel: event engine, RNG streams, weather process."""

from .engine import EventHandle, SimulationError, Simulator
from .rng import RngStreams
from .weather import WeatherParams, WeatherProcess

__all__ = ["Simulator", "EventHandle", "SimulationError",
           "RngStreams", "WeatherParams", "WeatherProcess"]
