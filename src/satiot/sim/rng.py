"""Named, reproducible random-number streams.

Every stochastic component draws from its own stream, derived from the
campaign seed and a path-like name (``"beacon/Tianqi/HK/44101"``).  This
keeps results identical regardless of the order components execute in,
which is essential for comparing parameter sweeps.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """Factory for deterministic named substreams of one master seed."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def derive_seed(self, name: str) -> int:
        """Stable 64-bit seed for a named stream."""
        digest = hashlib.sha256(
            f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def get(self, name: str) -> np.random.Generator:
        """The stream for ``name`` — the same object on repeated calls."""
        if name not in self._cache:
            self._cache[name] = np.random.default_rng(self.derive_seed(name))
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """A brand-new generator for ``name`` (position reset to start)."""
        return np.random.default_rng(self.derive_seed(name))
