"""Deterministic discrete-event simulation engine.

A minimal heap-based scheduler: events fire in (time, sequence) order, so
simultaneous events run in scheduling order and runs are bit-reproducible.
The active-measurement campaign (nodes, MAC, store-and-forward) runs on
this engine; the passive campaign is vectorized and does not need it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


__all__ = ["Simulator", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        if self._entry.cancelled or self._entry.fired:
            return
        self._entry.cancelled = True
        # The live-pending counter is maintained here (not by scanning
        # the heap) so `Simulator.pending` stays O(1); the cancelled
        # entry itself is lazily discarded when it surfaces on the heap.
        self._sim._pending -= 1


class Simulator:
    """Event loop with a float time axis (seconds from campaign start)."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[_Entry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._pending = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Live (uncancelled, unfired) events — an O(1) counter."""
        return self._pending

    # ------------------------------------------------------------------
    def at(self, time: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}")
        entry = _Entry(time=time, seq=next(self._seq), fn=fn)
        heapq.heappush(self._queue, entry)
        self._pending += 1
        return EventHandle(entry, self)

    def after(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, fn)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            entry.fired = True
            self._pending -= 1
            self._now = entry.time
            entry.fn()
            self._events_processed += 1
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with time <= end_time, then advance to it."""
        if end_time < self._now:
            raise SimulationError("end time is in the past")
        while self._queue:
            entry = self._queue[0]
            if entry.time > end_time:
                break
            heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            entry.fired = True
            self._pending -= 1
            self._now = entry.time
            entry.fn()
            self._events_processed += 1
        self._now = end_time

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the event queue (optionally bounded by ``max_events``)."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "possible runaway event loop")
