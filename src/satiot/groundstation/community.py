"""The crowd-sourced TinyGS community network (paper Section 2.2).

TinyGS has ~1,800 volunteer stations worldwide; the paper's cited
works (L2D2, community ground stations) use exactly such networks as a
low-cost distributed downlink.  This module synthesizes a plausible
global station population — clustered on land and toward population
centres, as the real map is — and answers coverage questions: how long
until a satellite is heard by *someone*, and how much of its orbit is
within range of the community.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


import numpy as np

from ..constellations.footprint import earth_central_angle_rad
from ..orbits.frames import GeodeticPoint
from ..orbits.groundtrack import ground_track
from ..orbits.sgp4 import SGP4
from ..orbits.timebase import Epoch
from .station import GroundStation

__all__ = ["CommunityNetwork", "COMMUNITY_HUBS"]

#: Rough population hubs the volunteer map clusters around:
#: (latitude, longitude, weight).
COMMUNITY_HUBS: Tuple[Tuple[float, float, float], ...] = (
    (48.0, 10.0, 0.30),    # central Europe — the densest region
    (40.0, -95.0, 0.20),   # north America
    (35.0, 115.0, 0.15),   # east Asia
    (22.0, 78.0, 0.08),    # south Asia
    (-25.0, 135.0, 0.07),  # Australia
    (-15.0, -55.0, 0.07),  # south America
    (52.0, 37.0, 0.07),    # eastern Europe / Russia
    (0.0, 20.0, 0.06),     # Africa
)


@dataclass
class CommunityNetwork:
    """A synthesized population of volunteer ground stations."""

    stations: List[GroundStation]

    # ------------------------------------------------------------------
    @classmethod
    def synthesize(cls, count: int = 1800, seed: int = 0,
                   hubs: Sequence[Tuple[float, float, float]]
                   = COMMUNITY_HUBS,
                   spread_deg: float = 12.0) -> "CommunityNetwork":
        """Draw stations clustered around population hubs."""
        if count <= 0:
            raise ValueError("need at least one station")
        if not hubs:
            raise ValueError("need at least one hub")
        rng = np.random.default_rng(seed)
        weights = np.asarray([w for _la, _lo, w in hubs], dtype=float)
        weights = weights / weights.sum()
        chosen = rng.choice(len(hubs), size=count, p=weights)

        stations: List[GroundStation] = []
        for i, hub_index in enumerate(chosen):
            hub_lat, hub_lon, _w = hubs[hub_index]
            lat = float(np.clip(rng.normal(hub_lat, spread_deg),
                                -84.0, 84.0))
            lon = float((rng.normal(hub_lon, 1.6 * spread_deg) + 180.0)
                        % 360.0 - 180.0)
            stations.append(GroundStation(
                station_id=f"tinygs-{i + 1:04d}", site="community",
                location=GeodeticPoint(lat, lon)))
        return cls(stations=stations)

    def __len__(self) -> int:
        return len(self.stations)

    # ------------------------------------------------------------------
    def visibility_fraction(self, propagator: SGP4, epoch: Epoch,
                            span_s: float = 86400.0,
                            step_s: float = 60.0,
                            min_elevation_deg: float = 0.0) -> float:
        """Fraction of the span during which *someone* hears the satellite.

        Vectorized: the satellite's sub-track is tested against every
        station with the spherical footprint condition.
        """
        offsets = np.arange(0.0, span_s, step_s)
        lat, lon, alt = ground_track(propagator, epoch, offsets)
        lam = np.asarray([earth_central_angle_rad(float(a),
                                                  min_elevation_deg)
                          for a in np.atleast_1d(alt)])
        cos_lam = np.cos(lam)

        sat_lat = np.radians(np.asarray(lat))
        sat_lon = np.radians(np.asarray(lon))
        st_lat = np.radians(np.asarray(
            [s.location.latitude_deg for s in self.stations]))
        st_lon = np.radians(np.asarray(
            [s.location.longitude_deg for s in self.stations]))

        covered = np.zeros(len(offsets), dtype=bool)
        chunk = 256
        for start in range(0, len(self.stations), chunk):
            sl = slice(start, start + chunk)
            cos_d = (np.sin(st_lat[sl])[:, None] * np.sin(sat_lat)
                     + np.cos(st_lat[sl])[:, None] * np.cos(sat_lat)
                     * np.cos(st_lon[sl][:, None] - sat_lon))
            covered |= np.any(cos_d >= cos_lam, axis=0)
        return float(np.mean(covered))

    def mean_gap_to_contact_s(self, propagator: SGP4, epoch: Epoch,
                              span_s: float = 86400.0,
                              step_s: float = 60.0) -> float:
        """Mean stretch with nobody in range (the community-downlink
        latency bound of L2D2-style systems)."""
        offsets = np.arange(0.0, span_s, step_s)
        lat, lon, alt = ground_track(propagator, epoch, offsets)
        lam = earth_central_angle_rad(float(np.mean(alt)))
        cos_lam = np.cos(lam)
        sat_lat = np.radians(np.asarray(lat))
        sat_lon = np.radians(np.asarray(lon))
        st_lat = np.radians(np.asarray(
            [s.location.latitude_deg for s in self.stations]))
        st_lon = np.radians(np.asarray(
            [s.location.longitude_deg for s in self.stations]))
        cos_d = (np.sin(st_lat)[:, None] * np.sin(sat_lat)
                 + np.cos(st_lat)[:, None] * np.cos(sat_lat)
                 * np.cos(st_lon[:, None] - sat_lon))
        covered = np.any(cos_d >= cos_lam, axis=0)

        gaps: List[float] = []
        run = 0
        for c in covered:
            if c:
                if run:
                    gaps.append(run * step_s)
                run = 0
            else:
                run += 1
        if run:
            gaps.append(run * step_s)
        return float(np.mean(gaps)) if gaps else 0.0
