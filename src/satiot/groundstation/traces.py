"""Columnar packet-trace storage and dataset I/O.

A :class:`BeaconTrace` mirrors one row of the paper's passive dataset:
timestamp, RSSI, SNR and sender-satellite metadata extracted from a
received beacon (Section 2.2).  Since PR 2 the data plane is *columnar*:
traces live in :class:`TraceColumns` blocks — one flat NumPy array per
field plus small string-interning tables for the categorical columns —
and :class:`TraceDataset` is a container of such blocks with vectorized
filtering, zero-copy slicing and array-concatenation merge.

:class:`BeaconTrace` remains the row-level value type; datasets
materialise it lazily on ``__iter__``/``__getitem__`` so every historic
call site keeps working, but producers and the analysis layers never
touch per-row Python objects on the hot path.

Datasets serialise to CSV and JSON-lines (text, interoperable) and to a
binary NPZ column archive (compact, value-exact) so campaigns can be
archived and re-analysed without re-simulation.

Determinism contract
--------------------
Column blocks merge by pure array concatenation, and string tables are
always interned in *first-appearance order of the concatenated row
stream*.  Interning is therefore a pure function of the row sequence:
serial, parallel and site-subset campaign runs produce bit-identical
columns — codes and tables included — for the rows they share.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Mapping,
                    Optional, Sequence, Tuple, Union)

import numpy as np

__all__ = ["BeaconTrace", "StringColumn", "TraceColumns", "TraceDataset",
           "TRACE_FIELD_KINDS", "TRACE_FORMATS", "iter_sorted_chunks"]

#: Formats a dataset can round-trip through.
TRACE_FORMATS = ("csv", "jsonl", "npz")

#: Magic recorded inside NPZ archives (layout version).
_NPZ_FORMAT = "satiot-traces-v1"


# ======================================================================
# Row value type
# ======================================================================
@dataclass(frozen=True)
class BeaconTrace:
    """One received beacon, as logged by a ground station.

    This is a *value type*: datasets store columns, not objects, and
    materialise ``BeaconTrace`` rows lazily when iterated or indexed.
    """

    time_s: float              # seconds since campaign start
    station_id: str
    site: str
    constellation: str
    satellite: str
    norad_id: int
    frequency_hz: float
    rssi_dbm: float
    snr_db: float
    elevation_deg: float
    azimuth_deg: float
    range_km: float
    doppler_hz: float
    raining: bool
    #: Shard-invariant pass identifier ``"{site}-{norad}-{k}"`` where
    #: ``k`` is the per-(site, satellite) pass index.  Running any
    #: subset of sites yields identical ids for the shared sites.
    pass_id: str

    def to_row(self) -> dict:
        return asdict(self)

    @classmethod
    def from_row(cls, row: Mapping) -> "BeaconTrace":
        """Build a trace from a mapping of column name to raw value.

        Conversion uses the explicit per-field converter map (see
        :data:`TRACE_FIELD_KINDS`); a missing column raises
        :class:`KeyError`, an unconvertible value raises
        :class:`ValueError` naming the offending field, and columns not
        in the schema are ignored (forward compatibility with files
        that carry extra columns).
        """
        kwargs = {}
        for name, kind in TRACE_FIELD_KINDS.items():
            if name not in row:
                raise KeyError(f"trace row is missing column {name!r}")
            try:
                kwargs[name] = _CONVERTERS[kind](row[name])
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"trace column {name!r}: cannot convert "
                    f"{row[name]!r} to {kind}") from exc
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Explicit schema: field name -> column kind.  This is the single source
# of truth for converters, column dtypes and archive layouts; a
# dataclass field without a kind (or vice versa) fails loudly at import.
# ----------------------------------------------------------------------
TRACE_FIELD_KINDS: Dict[str, str] = {
    "time_s": "f8",
    "station_id": "str",
    "site": "str",
    "constellation": "str",
    "satellite": "str",
    "norad_id": "i8",
    "frequency_hz": "f8",
    "rssi_dbm": "f8",
    "snr_db": "f8",
    "elevation_deg": "f8",
    "azimuth_deg": "f8",
    "range_km": "f8",
    "doppler_hz": "f8",
    "raining": "bool",
    "pass_id": "str",
}

_TRUE_LITERALS = frozenset(("true", "1"))
_FALSE_LITERALS = frozenset(("false", "0"))


def _to_bool(value) -> bool:
    """Strict bool conversion: no silent default for unknown literals."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE_LITERALS:
            return True
        if lowered in _FALSE_LITERALS:
            return False
    raise ValueError(f"not a boolean literal: {value!r}")


_CONVERTERS: Dict[str, Callable] = {
    "f8": float,
    "i8": int,
    "bool": _to_bool,
    "str": str,
}

_FIELD_ORDER: Tuple[str, ...] = tuple(TRACE_FIELD_KINDS)
_NUMERIC_DTYPES = {"f8": np.float64, "i8": np.int64, "bool": np.bool_}
NUMERIC_FIELDS: Tuple[str, ...] = tuple(
    n for n, k in TRACE_FIELD_KINDS.items() if k != "str")
STRING_FIELDS: Tuple[str, ...] = tuple(
    n for n, k in TRACE_FIELD_KINDS.items() if k == "str")

_declared = tuple(f.name for f in fields(BeaconTrace))
if _declared != _FIELD_ORDER:  # pragma: no cover - import-time guard
    raise RuntimeError(
        "BeaconTrace fields and TRACE_FIELD_KINDS diverged: "
        f"{_declared} vs {_FIELD_ORDER}")


# ======================================================================
# String interning
# ======================================================================
class StringColumn:
    """A categorical column: ``int32`` codes into a small string table.

    The table is interned in first-appearance order of the values, which
    makes the encoding a pure function of the value sequence (the
    determinism contract relies on this).

    ``canonical`` records whether the encoding is already known to be in
    that first-appearance form with no unused table entries.  Columns
    built by :meth:`from_values`, :meth:`full` and :meth:`concat` are
    canonical by construction; :meth:`take`/:meth:`slice` subsets may
    not be (they share the parent table).  The flag is a pure
    optimisation — :meth:`concat` and :meth:`canonicalized` use it to
    skip the ``np.unique`` re-interning scan on the hot merge path.
    """

    __slots__ = ("codes", "table", "canonical")

    def __init__(self, codes: np.ndarray, table: Sequence[str],
                 canonical: bool = False) -> None:
        self.codes = np.asarray(codes, dtype=np.int32)
        self.table: Tuple[str, ...] = tuple(table)
        self.canonical = bool(canonical)

    # -- construction --------------------------------------------------
    @classmethod
    def from_values(cls, values: Iterable[str]) -> "StringColumn":
        index: Dict[str, int] = {}
        codes: List[int] = []
        for value in values:
            code = index.get(value)
            if code is None:
                code = len(index)
                index[value] = code
            codes.append(code)
        return cls(np.asarray(codes, dtype=np.int32), tuple(index),
                   canonical=True)

    @classmethod
    def full(cls, n: int, value: str) -> "StringColumn":
        """A column of ``n`` identical values (one interned entry)."""
        if n == 0:
            return cls(np.empty(0, dtype=np.int32), (), canonical=True)
        return cls(np.zeros(n, dtype=np.int32), (str(value),),
                   canonical=True)

    # -- basics --------------------------------------------------------
    def __len__(self) -> int:
        return int(self.codes.size)

    def decode(self, i: int) -> str:
        return self.table[self.codes[i]]

    def values(self) -> np.ndarray:
        """Decoded values as an object array (exact Python strings)."""
        if not self.table:
            return np.empty(len(self), dtype=object)
        lut = np.empty(len(self.table), dtype=object)
        lut[:] = self.table
        return lut[self.codes]

    def present(self) -> List[str]:
        """Distinct values actually referenced by the codes."""
        return [self.table[k] for k in np.unique(self.codes)]

    # -- vectorized ops ------------------------------------------------
    def mask_eq(self, value: str, casefold: bool = False) -> np.ndarray:
        """Boolean mask of rows equal to ``value`` (O(table) + O(n))."""
        if casefold:
            value = value.lower()
            hits = [k for k, s in enumerate(self.table)
                    if s.lower() == value]
        else:
            hits = [k for k, s in enumerate(self.table) if s == value]
        if not hits:
            return np.zeros(len(self), dtype=bool)
        if len(hits) == 1:
            return self.codes == hits[0]
        return np.isin(self.codes, np.asarray(hits, dtype=np.int32))

    def map_table(self, fn: Callable[[str], str]) -> "StringColumn":
        """Same codes, every table entry transformed by ``fn``.

        Canonicality survives only for injective transforms (first-
        appearance order is preserved, and no two entries collapse);
        the longitudinal spill path uses this to prefix per-week pass
        ids — an injective transform by construction.
        """
        return StringColumn(self.codes,
                            tuple(fn(value) for value in self.table),
                            canonical=self.canonical)

    def take(self, indices) -> "StringColumn":
        """Row subset; the table is shared, codes are gathered."""
        return StringColumn(self.codes[indices], self.table)

    def slice(self, sl: slice) -> "StringColumn":
        """Zero-copy row range (codes are a NumPy view)."""
        return StringColumn(self.codes[sl], self.table)

    # -- merge ---------------------------------------------------------
    @staticmethod
    def concat(columns: Sequence["StringColumn"]) -> "StringColumn":
        """Concatenate, re-interning canonically.

        The output table is ordered by first appearance in the
        concatenated row stream (absent table entries are dropped), so
        the result depends only on the merged value sequence — never on
        how rows were blocked before the merge.

        Already-canonical inputs (the common case: receiver blocks and
        prior merges) skip the first-appearance scan entirely — their
        table order *is* the first-appearance order — so merging per-pass
        blocks costs one table remap plus one array concatenation.
        """
        columns = [col for col in columns if len(col)]
        if not columns:
            return StringColumn(np.empty(0, dtype=np.int32), (),
                                canonical=True)
        if len(columns) == 1 and columns[0].canonical:
            return columns[0]
        table: List[str] = []
        index: Dict[str, int] = {}
        out: List[np.ndarray] = []
        for col in columns:
            lut = np.empty(len(col.table), dtype=np.int32)
            if col.canonical:
                # Canonical ⇒ every table entry appears, in
                # first-appearance order already.
                order: Iterable[int] = range(len(col.table))
            else:
                uniq, first = np.unique(col.codes, return_index=True)
                order = uniq[np.argsort(first, kind="stable")]
            for k in order:
                value = col.table[k]
                code = index.get(value)
                if code is None:
                    code = len(index)
                    index[value] = code
                    table.append(value)
                lut[k] = code
            out.append(lut[col.codes])
        merged = np.concatenate(out) if len(out) > 1 else out[0]
        return StringColumn(merged, tuple(table), canonical=True)

    def canonicalized(self) -> "StringColumn":
        """Re-intern in first-appearance order, dropping unused entries."""
        return StringColumn.concat([self])

    def equals(self, other: "StringColumn") -> bool:
        """Exact value equality (codes/tables may differ in encoding)."""
        if len(self) != len(other):
            return False
        if self.table == other.table:
            return bool(np.array_equal(self.codes, other.codes))
        return bool(np.array_equal(self.values(), other.values()))

    @property
    def nbytes(self) -> int:
        return int(self.codes.nbytes
                   + sum(len(s.encode("utf-8")) for s in self.table))


# ======================================================================
# Column block
# ======================================================================
class TraceColumns:
    """One immutable columnar block of beacon traces.

    Numeric fields are flat NumPy arrays (``f8``/``i8``/``bool``);
    categorical fields are :class:`StringColumn`.  Blocks support
    vectorized masking, gather (:meth:`take`), zero-copy range slicing
    and canonical concatenation — everything :class:`TraceDataset`
    builds on.
    """

    __slots__ = ("_numeric", "_strings", "_n")

    def __init__(self, numeric: Dict[str, np.ndarray],
                 strings: Dict[str, StringColumn], n: int) -> None:
        self._numeric = numeric
        self._strings = strings
        self._n = int(n)

    # -- construction --------------------------------------------------
    @classmethod
    def empty(cls) -> "TraceColumns":
        numeric = {name: np.empty(0, dtype=_NUMERIC_DTYPES[kind])
                   for name, kind in TRACE_FIELD_KINDS.items()
                   if kind != "str"}
        strings = {name: StringColumn(np.empty(0, dtype=np.int32), ())
                   for name in STRING_FIELDS}
        return cls(numeric, strings, 0)

    @classmethod
    def from_rows(cls, traces: Iterable[BeaconTrace]) -> "TraceColumns":
        rows = list(traces)
        if not rows:
            return cls.empty()
        numeric = {
            name: np.asarray([getattr(t, name) for t in rows],
                             dtype=_NUMERIC_DTYPES[TRACE_FIELD_KINDS[name]])
            for name in NUMERIC_FIELDS}
        strings = {
            name: StringColumn.from_values(getattr(t, name) for t in rows)
            for name in STRING_FIELDS}
        return cls(numeric, strings, len(rows))

    @classmethod
    def from_arrays(cls, n: Optional[int] = None,
                    **columns) -> "TraceColumns":
        """Build a block from per-column data.

        Numeric fields accept an array or a scalar (broadcast); string
        fields accept a :class:`StringColumn`, a single string
        (broadcast) or a sequence of strings.  Every schema field must
        be provided.
        """
        missing = [f for f in _FIELD_ORDER if f not in columns]
        if missing:
            raise ValueError(f"missing trace columns: {missing}")
        extra = [f for f in columns if f not in TRACE_FIELD_KINDS]
        if extra:
            raise ValueError(f"unknown trace columns: {extra}")

        if n is None:
            for name in _FIELD_ORDER:
                value = columns[name]
                if isinstance(value, StringColumn):
                    n = len(value)
                    break
                if isinstance(value, np.ndarray):
                    n = int(value.shape[0])
                    break
                if isinstance(value, (list, tuple)):
                    n = len(value)
                    break
            if n is None:
                raise ValueError("cannot infer row count from scalars; "
                                 "pass n explicitly")

        numeric: Dict[str, np.ndarray] = {}
        for name in NUMERIC_FIELDS:
            dtype = _NUMERIC_DTYPES[TRACE_FIELD_KINDS[name]]
            value = columns[name]
            if np.ndim(value) == 0:
                array = np.full(n, value, dtype=dtype)
            else:
                array = np.ascontiguousarray(value, dtype=dtype)
            if array.shape != (n,):
                raise ValueError(f"column {name!r}: expected shape "
                                 f"({n},), got {array.shape}")
            numeric[name] = array

        strings: Dict[str, StringColumn] = {}
        for name in STRING_FIELDS:
            value = columns[name]
            if isinstance(value, StringColumn):
                col = value
            elif isinstance(value, str) or np.ndim(value) == 0:
                col = StringColumn.full(n, str(value))
            else:
                col = StringColumn.from_values(str(v) for v in value)
            if len(col) != n:
                raise ValueError(f"column {name!r}: expected {n} rows, "
                                 f"got {len(col)}")
            strings[name] = col
        return cls(numeric, strings, n)

    # -- basics --------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def n(self) -> int:
        return self._n

    def row(self, i: int) -> BeaconTrace:
        """Materialise one row as a :class:`BeaconTrace` value."""
        kwargs = {}
        for name, kind in TRACE_FIELD_KINDS.items():
            if kind == "str":
                kwargs[name] = self._strings[name].decode(i)
            elif kind == "bool":
                kwargs[name] = bool(self._numeric[name][i])
            elif kind == "i8":
                kwargs[name] = int(self._numeric[name][i])
            else:
                kwargs[name] = float(self._numeric[name][i])
        return BeaconTrace(**kwargs)

    def column(self, name: str) -> np.ndarray:
        """Decoded column values (numeric array, or object array of str)."""
        if name in self._numeric:
            return self._numeric[name]
        if name in self._strings:
            return self._strings[name].values()
        raise KeyError(f"unknown trace column {name!r}")

    def string_column(self, name: str) -> StringColumn:
        return self._strings[name]

    # -- vectorized ops ------------------------------------------------
    def take(self, indices) -> "TraceColumns":
        """Gather rows by boolean mask or integer indices."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if indices.shape != (self._n,):
                raise ValueError("boolean mask has wrong length")
            indices = np.nonzero(indices)[0]
        numeric = {k: v[indices] for k, v in self._numeric.items()}
        strings = {k: v.take(indices) for k, v in self._strings.items()}
        return TraceColumns(numeric, strings, int(indices.size))

    def slice(self, sl: slice) -> "TraceColumns":
        """Zero-copy contiguous row range (NumPy views throughout)."""
        start, stop, step = sl.indices(self._n)
        if step != 1:
            return self.take(np.arange(start, stop, step))
        numeric = {k: v[start:stop] for k, v in self._numeric.items()}
        strings = {k: v.slice(slice(start, stop))
                   for k, v in self._strings.items()}
        return TraceColumns(numeric, strings, max(stop - start, 0))

    def replace(self, **columns) -> "TraceColumns":
        """New block with the named columns substituted (rest shared).

        Numeric fields take an array of the block's length; string
        fields take a :class:`StringColumn`.  Used by streaming
        producers to rebase ``time_s`` / re-key ``pass_id`` without
        copying the untouched columns.
        """
        numeric = dict(self._numeric)
        strings = dict(self._strings)
        for name, value in columns.items():
            if name in numeric:
                array = np.ascontiguousarray(
                    value,
                    dtype=_NUMERIC_DTYPES[TRACE_FIELD_KINDS[name]])
                if array.shape != (self._n,):
                    raise ValueError(
                        f"column {name!r}: expected shape "
                        f"({self._n},), got {array.shape}")
                numeric[name] = array
            elif name in strings:
                if not isinstance(value, StringColumn):
                    raise TypeError(
                        f"column {name!r} needs a StringColumn")
                if len(value) != self._n:
                    raise ValueError(
                        f"column {name!r}: expected {self._n} rows, "
                        f"got {len(value)}")
                strings[name] = value
            else:
                raise KeyError(f"unknown trace column {name!r}")
        return TraceColumns(numeric, strings, self._n)

    def argsort_time(self) -> np.ndarray:
        return np.argsort(self._numeric["time_s"], kind="stable")

    @staticmethod
    def concat(blocks: Sequence["TraceColumns"]) -> "TraceColumns":
        """Merge blocks by array concatenation (canonical interning)."""
        blocks = [b for b in blocks if b.n]
        if not blocks:
            return TraceColumns.empty()
        if len(blocks) == 1:
            # Adopt the block as-is: a filtered view keeps its shared
            # (possibly non-canonical) tables until explicitly
            # normalised via canonicalized().  Multi-block merges below
            # always re-intern canonically.
            return blocks[0]
        numeric = {name: np.concatenate([b._numeric[name] for b in blocks])
                   for name in NUMERIC_FIELDS}
        strings = {name: StringColumn.concat([b._strings[name]
                                              for b in blocks])
                   for name in STRING_FIELDS}
        return TraceColumns(numeric, strings, sum(b.n for b in blocks))

    def canonicalized(self) -> "TraceColumns":
        """Same rows, string tables re-interned canonically."""
        strings = {k: v.canonicalized() for k, v in self._strings.items()}
        return TraceColumns(dict(self._numeric), strings, self._n)

    def equals(self, other: "TraceColumns") -> bool:
        """Exact value equality, column by column."""
        if self._n != other._n:
            return False
        return (all(np.array_equal(self._numeric[k], other._numeric[k])
                    for k in NUMERIC_FIELDS)
                and all(self._strings[k].equals(other._strings[k])
                        for k in STRING_FIELDS))

    @property
    def nbytes(self) -> int:
        """Approximate in-memory footprint of the column data."""
        return int(sum(a.nbytes for a in self._numeric.values())
                   + sum(c.nbytes for c in self._strings.values()))


# ======================================================================
# Dataset
# ======================================================================
class TraceDataset:
    """An append-only columnar collection of beacon traces.

    Internally a list of :class:`TraceColumns` blocks (plus a small
    pending-row buffer for :meth:`append`) that consolidates lazily into
    one block on first columnar access.  Merging datasets or blocks is
    O(1) until consolidation; filters and sorts are vectorized; slicing
    is zero-copy.
    """

    def __init__(self, traces: Union[None, Iterable[BeaconTrace],
                                     "TraceDataset", TraceColumns] = None,
                 ) -> None:
        self._blocks: List[TraceColumns] = []
        self._pending: List[BeaconTrace] = []
        self._cache: Optional[TraceColumns] = None
        if traces is not None:
            self.extend(traces)

    # -- construction --------------------------------------------------
    @classmethod
    def from_columns(cls, block: TraceColumns) -> "TraceDataset":
        return cls(block)

    # -- mutation ------------------------------------------------------
    def append(self, trace: BeaconTrace) -> None:
        self._pending.append(trace)
        self._cache = None

    def extend(self, traces: Union[Iterable[BeaconTrace], "TraceDataset",
                                   TraceColumns]) -> None:
        """Add rows; block-backed inputs are adopted without row work."""
        if isinstance(traces, TraceColumns):
            if traces.n:
                self._blocks.append(traces)
        elif isinstance(traces, TraceDataset):
            self._blocks.extend(b for b in traces._blocks if b.n)
            self._pending.extend(traces._pending)
        else:
            self._pending.extend(traces)
        self._cache = None

    # -- consolidation -------------------------------------------------
    @property
    def columns(self) -> TraceColumns:
        """The consolidated column block (computed once, then cached)."""
        if self._cache is None:
            blocks = list(self._blocks)
            if self._pending:
                blocks.append(TraceColumns.from_rows(self._pending))
            self._cache = TraceColumns.concat(blocks)
            self._blocks = [self._cache] if self._cache.n else []
            self._pending = []
        return self._cache

    def blocks(self) -> Iterator[TraceColumns]:
        """Yield the underlying column blocks *without* consolidating.

        Row order matches :attr:`columns` (blocks in arrival order,
        pending rows last), so streaming consumers — text export, the
        sharded spill writer — see exactly the rows a consolidated walk
        would, while peak memory stays one block instead of the whole
        dataset.
        """
        if self._cache is not None:
            if self._cache.n:
                yield self._cache
            return
        for block in self._blocks:
            if block.n:
                yield block
        if self._pending:
            yield TraceColumns.from_rows(self._pending)

    def column(self, name: str) -> np.ndarray:
        return self.columns.column(name)

    # -- sequence protocol --------------------------------------------
    def __len__(self) -> int:
        return (sum(b.n for b in self._blocks) + len(self._pending)
                if self._cache is None else self._cache.n)

    def __iter__(self) -> Iterator[BeaconTrace]:
        block = self.columns
        for i in range(block.n):
            yield block.row(i)

    def __getitem__(self, idx: Union[int, slice]
                    ) -> Union[BeaconTrace, "TraceDataset"]:
        block = self.columns
        if isinstance(idx, slice):
            return TraceDataset(block.slice(idx))
        return block.row(int(idx))

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceDataset):
            return self.columns.equals(other.columns)
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and list(self) == list(other)
        return NotImplemented

    __hash__ = None  # mutable container

    def __repr__(self) -> str:
        return f"TraceDataset({len(self)} traces)"

    # -- vectorized queries -------------------------------------------
    def select(self, mask_or_indices) -> "TraceDataset":
        """Row subset by boolean mask or integer index array."""
        return TraceDataset(self.columns.take(mask_or_indices))

    def filter(self, predicate: Callable[[BeaconTrace], bool],
               ) -> "TraceDataset":
        """Row-predicate filter (compatibility path).

        Prefer :meth:`select` with a vectorized mask on hot paths; this
        materialises each row to evaluate the predicate.
        """
        block = self.columns
        mask = np.fromiter((bool(predicate(block.row(i)))
                            for i in range(block.n)),
                           dtype=bool, count=block.n)
        return self.select(mask)

    def by_constellation(self, name: str) -> "TraceDataset":
        mask = self.columns.string_column("constellation") \
            .mask_eq(name, casefold=True)
        return self.select(mask)

    def by_site(self, site: str) -> "TraceDataset":
        return self.select(
            self.columns.string_column("site").mask_eq(site))

    def by_satellite(self, norad_id: int) -> "TraceDataset":
        return self.select(self.column("norad_id") == int(norad_id))

    def by_pass(self, pass_id: str) -> "TraceDataset":
        return self.select(
            self.columns.string_column("pass_id").mask_eq(pass_id))

    def sites(self) -> List[str]:
        return sorted(self.columns.string_column("site").present())

    def constellations(self) -> List[str]:
        return sorted(
            self.columns.string_column("constellation").present())

    def pass_ids(self) -> List[str]:
        return sorted(self.columns.string_column("pass_id").present())

    def sorted_by_time(self) -> "TraceDataset":
        block = self.columns
        return TraceDataset(block.take(block.argsort_time()))

    @property
    def nbytes(self) -> int:
        return self.columns.nbytes

    # ------------------------------------------------------------------
    # Text formats (interoperable; value-exact via repr round-tripping)
    # ------------------------------------------------------------------
    def _text_rows(self) -> Iterator[dict]:
        # Stream block-by-block: peak memory is one block's decoded
        # columns, not the whole dataset's.  Block order matches the
        # consolidated row order, so output bytes are unchanged.
        for block in self.blocks():
            yield from _block_text_rows(block)

    def to_csv(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(_FIELD_ORDER))
            writer.writeheader()
            for row in self._text_rows():
                writer.writerow(row)

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "TraceDataset":
        path = Path(path)
        lists: Dict[str, List] = {name: [] for name in _FIELD_ORDER}
        with path.open(newline="") as fh:
            reader = csv.DictReader(fh)
            for row in reader:
                for name in _FIELD_ORDER:
                    lists[name].append(row[name])
        return cls(_block_from_text_columns(lists, parse_bool=True))

    def to_jsonl(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with path.open("w") as fh:
            for row in self._text_rows():
                fh.write(json.dumps(row) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "TraceDataset":
        path = Path(path)
        lists: Dict[str, List] = {name: [] for name in _FIELD_ORDER}
        with path.open() as fh:
            for line in fh:
                if not line.strip():
                    continue
                row = json.loads(line)
                for name in _FIELD_ORDER:
                    lists[name].append(row[name])
        return cls(_block_from_text_columns(lists, parse_bool=False))

    # ------------------------------------------------------------------
    # Binary column archive (compact; bit-exact floats)
    # ------------------------------------------------------------------
    def to_npz(self, path: Union[str, Path]) -> None:
        """Write the dataset as a compressed NPZ column archive.

        Floats/ints round-trip bit-exactly; strings are stored as
        interning tables plus ``int32`` codes (note NumPy's fixed-width
        unicode storage drops *trailing* NUL characters — site names
        with trailing ``\\x00`` are not representable, which CSV shares).
        """
        block = self.columns
        payload: Dict[str, np.ndarray] = {
            "__format__": np.asarray([_NPZ_FORMAT]),
            "__n__": np.asarray([block.n], dtype=np.int64),
        }
        for name in NUMERIC_FIELDS:
            payload[name] = block.column(name)
        for name in STRING_FIELDS:
            col = block.string_column(name)
            payload[f"{name}__codes"] = col.codes
            payload[f"{name}__table"] = (
                np.asarray(col.table) if col.table
                else np.empty(0, dtype="<U1"))
        with Path(path).open("wb") as fh:
            np.savez_compressed(fh, **payload)

    @classmethod
    def from_npz(cls, path: Union[str, Path]) -> "TraceDataset":
        import zipfile
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as archive:
                magic = str(archive["__format__"][0])
                if magic.startswith("satiot-traces-v2"):
                    raise ValueError(
                        f"{path} is a {magic!r} shard; open its "
                        f"archive directory with "
                        f"satiot.streams.ShardedTraceReader")
                if magic != _NPZ_FORMAT:
                    raise ValueError(
                        f"unsupported trace archive format {magic!r}")
                n = int(archive["__n__"][0])
                numeric = {
                    name: np.ascontiguousarray(
                        archive[name],
                        dtype=_NUMERIC_DTYPES[TRACE_FIELD_KINDS[name]])
                    for name in NUMERIC_FIELDS}
                strings = {
                    name: StringColumn(
                        archive[f"{name}__codes"],
                        [str(s) for s in archive[f"{name}__table"]])
                    for name in STRING_FIELDS}
        except (zipfile.BadZipFile, EOFError) as exc:
            raise ValueError(
                f"{path}: trace archive is truncated or corrupt "
                f"({exc})") from exc
        except KeyError as exc:
            raise ValueError(
                f"{path}: trace archive is missing column {exc}; "
                f"file is truncated or not a satiot archive") from exc
        return cls(TraceColumns(numeric, strings, n))

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path],
             trace_format: Optional[str] = None) -> str:
        """Write in the named format (inferred from suffix by default)."""
        fmt = trace_format or _format_from_suffix(path)
        if fmt == "csv":
            self.to_csv(path)
        elif fmt == "jsonl":
            self.to_jsonl(path)
        elif fmt == "npz":
            self.to_npz(path)
        else:
            raise ValueError(f"unknown trace format {fmt!r}; "
                             f"choose from {TRACE_FORMATS}")
        return fmt

    @classmethod
    def load(cls, path: Union[str, Path],
             trace_format: Optional[str] = None) -> "TraceDataset":
        """Read a file written by :meth:`save` (suffix auto-detect)."""
        fmt = trace_format or _format_from_suffix(path)
        if fmt == "csv":
            return cls.from_csv(path)
        if fmt == "jsonl":
            return cls.from_jsonl(path)
        if fmt == "npz":
            return cls.from_npz(path)
        raise ValueError(f"unknown trace format {fmt!r}; "
                         f"choose from {TRACE_FORMATS}")


def iter_sorted_chunks(blocks: Sequence[TraceColumns],
                       chunk_rows: int = 65536,
                       ) -> Iterator[TraceColumns]:
    """Yield the blocks' rows in global stable time order, chunked.

    Equivalent to ``TraceColumns.concat(blocks).take(argsort_time())``
    sliced into ``chunk_rows`` pieces — the row sequence is identical
    (stable argsort over the concatenated time column) — but only one
    ``float64`` time column plus one chunk is ever materialised, so
    streaming exporters stay at O(rows × 8 bytes) instead of the full
    ~15-column dataset.
    """
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    blocks = [b for b in blocks if b.n]
    if not blocks:
        return
    times = np.concatenate([b._numeric["time_s"] for b in blocks])
    order = np.argsort(times, kind="stable")
    del times
    offsets = np.cumsum([0] + [b.n for b in blocks])
    luts: Dict[Tuple[int, str], np.ndarray] = {}

    def _lut(b_i: int, name: str) -> np.ndarray:
        key = (b_i, name)
        if key not in luts:
            table = blocks[b_i]._strings[name].table
            lut = np.empty(len(table), dtype=object)
            lut[:] = table
            luts[key] = lut
        return luts[key]

    for start in range(0, order.size, chunk_rows):
        idx = order[start:start + chunk_rows]
        owner = np.searchsorted(offsets, idx, side="right") - 1
        local = idx - offsets[owner]
        numeric: Dict[str, np.ndarray] = {}
        for name in NUMERIC_FIELDS:
            out = np.empty(
                idx.size,
                dtype=_NUMERIC_DTYPES[TRACE_FIELD_KINDS[name]])
            for b_i in np.unique(owner):
                mask = owner == b_i
                out[mask] = blocks[b_i]._numeric[name][local[mask]]
            numeric[name] = out
        strings: Dict[str, StringColumn] = {}
        for name in STRING_FIELDS:
            out = np.empty(idx.size, dtype=object)
            for b_i in np.unique(owner):
                mask = owner == b_i
                codes = blocks[b_i]._strings[name].codes[local[mask]]
                out[mask] = _lut(b_i, name)[codes]
            strings[name] = StringColumn.from_values(out)
        yield TraceColumns(numeric, strings, idx.size)


def _format_from_suffix(path: Union[str, Path]) -> str:
    suffix = Path(path).suffix.lower().lstrip(".")
    if suffix in ("json", "ndjson"):
        return "jsonl"
    return suffix if suffix in TRACE_FORMATS else "csv"


def _block_text_rows(block: TraceColumns) -> Iterator[dict]:
    """Decode one column block into text-format row dicts."""
    decoded = {name: block.column(name) for name in _FIELD_ORDER}
    raining = decoded["raining"]
    for i in range(block.n):
        row = {}
        for name, kind in TRACE_FIELD_KINDS.items():
            if kind == "f8":
                row[name] = float(decoded[name][i])
            elif kind == "i8":
                row[name] = int(decoded[name][i])
            elif kind == "bool":
                row[name] = bool(raining[i])
            else:
                row[name] = decoded[name][i]
        yield row


def _block_from_text_columns(lists: Dict[str, List],
                             parse_bool: bool) -> TraceColumns:
    """Columns from per-field value lists read out of CSV/JSONL."""
    n = len(lists["time_s"])
    columns: Dict[str, object] = {}
    for name, kind in TRACE_FIELD_KINDS.items():
        values = lists[name]
        if kind == "bool" and parse_bool:
            columns[name] = np.asarray(
                [_to_bool(v) for v in values], dtype=np.bool_)
        elif kind == "str":
            columns[name] = StringColumn.from_values(
                str(v) for v in values)
        else:
            # NumPy parses numeric strings directly (value-exact for
            # repr-formatted floats).
            columns[name] = np.asarray(
                values, dtype=_NUMERIC_DTYPES[kind])
    return TraceColumns.from_arrays(n=n, **columns)
