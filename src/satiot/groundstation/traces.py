"""Packet-trace records and dataset I/O.

A :class:`BeaconTrace` mirrors one row of the paper's passive dataset:
timestamp, RSSI, SNR and sender-satellite metadata extracted from a
received beacon (Section 2.2).  Datasets serialise to CSV and JSON-lines
so campaigns can be archived and re-analysed without re-simulation.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Union

__all__ = ["BeaconTrace", "TraceDataset"]


@dataclass(frozen=True)
class BeaconTrace:
    """One received beacon, as logged by a ground station."""

    time_s: float              # seconds since campaign start
    station_id: str
    site: str
    constellation: str
    satellite: str
    norad_id: int
    frequency_hz: float
    rssi_dbm: float
    snr_db: float
    elevation_deg: float
    azimuth_deg: float
    range_km: float
    doppler_hz: float
    raining: bool
    #: Shard-invariant pass identifier ``"{site}-{norad}-{k}"`` where
    #: ``k`` is the per-(site, satellite) pass index.  Running any
    #: subset of sites yields identical ids for the shared sites.
    pass_id: str

    def to_row(self) -> dict:
        return asdict(self)

    @classmethod
    def from_row(cls, row: dict) -> "BeaconTrace":
        kwargs = {}
        for f in fields(cls):
            value = row[f.name]
            if f.type in ("float", float):
                value = float(value)
            elif f.type in ("int", int):
                value = int(value)
            elif f.type in ("bool", bool):
                value = value in (True, "True", "true", "1", 1)
            elif f.type in ("str", str):
                value = str(value)
            kwargs[f.name] = value
        return cls(**kwargs)


class TraceDataset:
    """An append-only collection of beacon traces with query helpers."""

    def __init__(self, traces: Optional[Iterable[BeaconTrace]] = None) -> None:
        self._traces: List[BeaconTrace] = list(traces or [])

    # ------------------------------------------------------------------
    def append(self, trace: BeaconTrace) -> None:
        self._traces.append(trace)

    def extend(self, traces: Iterable[BeaconTrace]) -> None:
        self._traces.extend(traces)

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[BeaconTrace]:
        return iter(self._traces)

    def __getitem__(self, idx: int) -> BeaconTrace:
        return self._traces[idx]

    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[BeaconTrace], bool],
               ) -> "TraceDataset":
        return TraceDataset(t for t in self._traces if predicate(t))

    def by_constellation(self, name: str) -> "TraceDataset":
        name = name.lower()
        return self.filter(lambda t: t.constellation.lower() == name)

    def by_site(self, site: str) -> "TraceDataset":
        return self.filter(lambda t: t.site == site)

    def by_satellite(self, norad_id: int) -> "TraceDataset":
        return self.filter(lambda t: t.norad_id == norad_id)

    def sites(self) -> List[str]:
        return sorted({t.site for t in self._traces})

    def constellations(self) -> List[str]:
        return sorted({t.constellation for t in self._traces})

    def sorted_by_time(self) -> "TraceDataset":
        return TraceDataset(sorted(self._traces, key=lambda t: t.time_s))

    # ------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> None:
        path = Path(path)
        names = [f.name for f in fields(BeaconTrace)]
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=names)
            writer.writeheader()
            for trace in self._traces:
                writer.writerow(trace.to_row())

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "TraceDataset":
        path = Path(path)
        with path.open() as fh:
            reader = csv.DictReader(fh)
            return cls(BeaconTrace.from_row(row) for row in reader)

    def to_jsonl(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with path.open("w") as fh:
            for trace in self._traces:
                fh.write(json.dumps(trace.to_row()) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "TraceDataset":
        path = Path(path)
        with path.open() as fh:
            return cls(BeaconTrace.from_row(json.loads(line))
                       for line in fh if line.strip())
