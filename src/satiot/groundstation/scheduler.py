"""The paper's customized pass scheduler (Section 2.2).

Vanilla TinyGS decides internally which station listens to which
satellite; the authors replaced it with a scheduler that tracks satellite
positions from TLEs and assigns stations to target satellites *in
advance*, retuning each station to the target's DtS frequency before the
pass.  This module reproduces that component: given a site's stations and
the satellites of interest, it predicts every contact window and computes
a non-overlapping station↔pass assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..constellations.catalog import Satellite
from ..orbits.passes import (ContactWindow, PassPredictor,
                             find_passes_fleet)
from ..orbits.sgp4_batch import batching_enabled
from ..orbits.timebase import Epoch
from .station import GroundStation

__all__ = ["ScheduledPass", "PassSchedule", "Scheduler"]


@dataclass(frozen=True)
class ScheduledPass:
    """One station↔satellite assignment over a contact window."""

    station: GroundStation
    satellite: Satellite
    window: ContactWindow

    @property
    def frequency_hz(self) -> float:
        return self.satellite.radio.frequency_hz


@dataclass
class PassSchedule:
    """The full schedule for one site over a campaign span."""

    assigned: List[ScheduledPass]
    dropped: List[Tuple[Satellite, ContactWindow]]

    @property
    def coverage(self) -> float:
        """Fraction of predicted windows that got a station."""
        total = len(self.assigned) + len(self.dropped)
        if total == 0:
            return 1.0
        return len(self.assigned) / total

    def for_station(self, station_id: str) -> List[ScheduledPass]:
        return [p for p in self.assigned
                if p.station.station_id == station_id]


class Scheduler:
    """Greedy interval scheduler assigning stations to predicted passes.

    Passes are sorted by rise time; each is given to any station that is
    idle for the pass's entire span and whose hardware covers the
    satellite's frequency.  With a handful of stations per site and a few
    dozen passes per day this greedy policy assigns essentially all
    windows, mirroring the paper's "schedule ground stations in advance"
    design.
    """

    def __init__(self, stations: Sequence[GroundStation],
                 min_elevation_deg: float = 0.0,
                 guard_time_s: float = 30.0) -> None:
        if not stations:
            raise ValueError("scheduler needs at least one station")
        if guard_time_s < 0:
            raise ValueError("guard time cannot be negative")
        self.stations = list(stations)
        self.min_elevation_deg = min_elevation_deg
        self.guard_time_s = guard_time_s

    # ------------------------------------------------------------------
    def predict_windows(self, satellites: Sequence[Satellite],
                        epoch: Epoch, duration_s: float,
                        coarse_step_s: float = 30.0,
                        ephemeris_cache=None,
                        ) -> List[Tuple[Satellite, ContactWindow]]:
        """All contact windows of the target satellites over the site.

        ``ephemeris_cache`` is an optional
        :class:`satiot.runtime.EphemerisCache`-like object; when given,
        pass prediction goes through its memoized ``find_passes`` (which
        yields windows bit-identical to the direct computation).
        """
        site_location = self.stations[0].location
        satellites = list(satellites)
        out: List[Tuple[Satellite, ContactWindow]] = []
        if batching_enabled() and len(satellites) > 1:
            # Fleet path: one constellation-batched propagation over
            # the shared grid, GMST/ECEF once — bit-identical windows
            # to the per-satellite loop below (and to cached lookups:
            # the cache keys its fleet fills per satellite).
            props = [sat.propagator for sat in satellites]
            if ephemeris_cache is not None:
                per_sat = ephemeris_cache.find_passes_fleet(
                    props, [site_location], epoch, duration_s,
                    coarse_step_s=coarse_step_s,
                    min_elevation_deg=self.min_elevation_deg)
            else:
                per_sat = find_passes_fleet(
                    props, [site_location], epoch, duration_s,
                    coarse_step_s=coarse_step_s,
                    min_elevation_deg=self.min_elevation_deg)
            for sat, rows in zip(satellites, per_sat):
                for window in rows[0]:
                    out.append((sat, window))
            out.sort(key=lambda pair: pair[1].rise_s)
            return out
        for sat in satellites:
            if ephemeris_cache is not None:
                windows = ephemeris_cache.find_passes(
                    sat.propagator, site_location, epoch, duration_s,
                    coarse_step_s=coarse_step_s,
                    min_elevation_deg=self.min_elevation_deg)
            else:
                predictor = PassPredictor(sat.propagator, site_location,
                                          self.min_elevation_deg)
                windows = predictor.find_passes(
                    epoch, duration_s, coarse_step_s=coarse_step_s)
            for window in windows:
                out.append((sat, window))
        out.sort(key=lambda pair: pair[1].rise_s)
        return out

    def build_schedule(self, satellites: Sequence[Satellite],
                       epoch: Epoch, duration_s: float,
                       coarse_step_s: float = 30.0,
                       ephemeris_cache=None) -> PassSchedule:
        """Predict windows and greedily assign them to stations."""
        windows = self.predict_windows(satellites, epoch, duration_s,
                                       coarse_step_s=coarse_step_s,
                                       ephemeris_cache=ephemeris_cache)
        busy_until: Dict[str, float] = {
            st.station_id: float("-inf") for st in self.stations}
        assigned: List[ScheduledPass] = []
        dropped: List[Tuple[Satellite, ContactWindow]] = []

        for sat, window in windows:
            chosen: Optional[GroundStation] = None
            for station in self.stations:
                if not station.hardware.supports_frequency(
                        sat.radio.frequency_hz):
                    continue
                if busy_until[station.station_id] + self.guard_time_s \
                        <= window.rise_s:
                    chosen = station
                    break
            if chosen is None:
                dropped.append((sat, window))
                continue
            busy_until[chosen.station_id] = window.set_s
            assigned.append(ScheduledPass(station=chosen, satellite=sat,
                                          window=window))
        return PassSchedule(assigned=assigned, dropped=dropped)
