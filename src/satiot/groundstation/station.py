"""Ground-station model — the paper's $30 TinyGS-style node.

A station is a LILYGO board with an SX1262 radio and a small antenna at a
known location.  It can be tuned to one satellite's DtS frequency at a
time, which is why the campaign needs a scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..orbits.frames import GeodeticPoint
from ..phy.antennas import DIPOLE, Antenna

__all__ = ["StationHardware", "GroundStation"]


@dataclass(frozen=True)
class StationHardware:
    """Receiver hardware characteristics (defaults: LILYGO + SX1262)."""

    model: str = "LILYGO T3 / SX1262"
    noise_figure_db: float = 6.0
    cable_loss_db: float = 0.5
    frequency_min_hz: float = 400.0e6
    frequency_max_hz: float = 450.0e6
    cost_usd: float = 30.0

    def supports_frequency(self, frequency_hz: float) -> bool:
        return self.frequency_min_hz <= frequency_hz <= self.frequency_max_hz


@dataclass(frozen=True)
class GroundStation:
    """One deployed passive measurement station."""

    station_id: str
    site: str
    location: GeodeticPoint
    antenna: Antenna = DIPOLE
    hardware: StationHardware = field(default_factory=StationHardware)

    def __post_init__(self) -> None:
        if not self.station_id:
            raise ValueError("station_id must be non-empty")

    def rx_gain_dbi(self, elevation_deg) -> float:
        """Net receive gain toward the given elevation (antenna - cable)."""
        return self.antenna.gain_dbi(elevation_deg) \
            - self.hardware.cable_loss_db
