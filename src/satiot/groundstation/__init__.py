"""Ground segment: stations, scheduler, beacon receiver, trace datasets."""

from .community import COMMUNITY_HUBS, CommunityNetwork
from .receiver import BeaconReceiver, PassReception
from .scheduler import PassSchedule, ScheduledPass, Scheduler
from .station import GroundStation, StationHardware
from .traces import (BeaconTrace, StringColumn, TraceColumns,
                     TraceDataset)

__all__ = [
    "CommunityNetwork", "COMMUNITY_HUBS",
    "BeaconReceiver", "PassReception",
    "PassSchedule", "ScheduledPass", "Scheduler",
    "GroundStation", "StationHardware",
    "BeaconTrace", "StringColumn", "TraceColumns", "TraceDataset",
]
