"""Beacon reception simulation for one scheduled pass.

For every beacon the satellite broadcasts inside a contact window, the
receiver evaluates the stochastic DtS downlink and logs the decode into
a columnar :class:`~satiot.groundstation.traces.TraceColumns` block —
no per-beacon Python objects are allocated on this hot path.  The
per-pass summary (first/last reception) is what defines the paper's
*effective duration* of a contact window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..network.beacon import build_beacon_train
from ..orbits.timebase import Epoch
from ..phy.channel import ChannelParams, DtSChannel
from ..phy.link_budget import LinkBudget
from ..phy.lora import LoRaModulation
from ..sim.weather import WeatherProcess
from .scheduler import ScheduledPass
from .traces import TraceColumns, TraceDataset

__all__ = ["PassReception", "BeaconReceiver"]


@dataclass
class PassReception:
    """Outcome of listening to one scheduled pass."""

    scheduled: ScheduledPass
    #: Shard-invariant identifier ``"{site}-{norad}-{k}"``.
    pass_id: str
    beacons_sent: int
    beacons_received: int
    first_rx_s: Optional[float]
    last_rx_s: Optional[float]
    raining: bool
    #: Column-backed traces of this pass (iterable of
    #: :class:`~satiot.groundstation.traces.BeaconTrace` row views).
    traces: TraceDataset = field(default_factory=TraceDataset)

    @property
    def effective_duration_s(self) -> float:
        """Span between first and last received beacon (paper Sec. 3.1)."""
        if self.first_rx_s is None or self.last_rx_s is None:
            return 0.0
        return self.last_rx_s - self.first_rx_s

    @property
    def reception_rate(self) -> float:
        if self.beacons_sent == 0:
            return 0.0
        return self.beacons_received / self.beacons_sent

    @property
    def heard_anything(self) -> bool:
        return self.beacons_received > 0


class BeaconReceiver:
    """Simulates a ground station listening through scheduled passes."""

    def __init__(self, channel_params: Optional[ChannelParams] = None,
                 link_overrides: Optional[dict] = None) -> None:
        self.channel_params = channel_params or ChannelParams()
        self.link_overrides = dict(link_overrides or {})

    # ------------------------------------------------------------------
    def _build_channel(self, scheduled: ScheduledPass) -> DtSChannel:
        radio = scheduled.satellite.radio
        budget = LinkBudget(
            eirp_dbm=radio.beacon_eirp_dbm,
            frequency_hz=radio.frequency_hz,
            **self.link_overrides)
        modulation = LoRaModulation(
            spreading_factor=radio.spreading_factor,
            bandwidth_hz=radio.bandwidth_hz,
            coding_rate=radio.coding_rate,
            preamble_symbols=radio.preamble_symbols,
            explicit_header=radio.explicit_header,
            low_data_rate_optimize=radio.low_data_rate_optimize)
        return DtSChannel(budget, modulation, self.channel_params)

    # ------------------------------------------------------------------
    def receive_pass(self, scheduled: ScheduledPass, epoch: Epoch,
                     pass_id: str, rng: np.random.Generator,
                     weather: Optional[WeatherProcess] = None,
                     ) -> PassReception:
        """Simulate all beacon receptions within one scheduled pass."""
        radio = scheduled.satellite.radio
        window = scheduled.window
        station = scheduled.station

        train = build_beacon_train(scheduled.satellite, window,
                                   station.location, epoch, rng)
        times = train.times_s
        raining = bool(weather.is_raining(window.midpoint_s)) \
            if weather is not None else False
        if len(times) == 0:
            return PassReception(scheduled, pass_id, 0, 0, None, None,
                                 raining)

        elevation = train.elevation_deg
        rng_km = train.range_km
        shift = train.doppler_shift_hz

        channel = self._build_channel(scheduled)
        samples = channel.simulate_packets(
            times_s=times,
            elevation_deg=elevation,
            range_km=rng_km,
            doppler_shift_hz=shift,
            doppler_rate_hz_s=train.doppler_rate_hz_s,
            payload_bytes=radio.beacon_payload_bytes,
            rng=rng,
            rx_gain_dbi=station.rx_gain_dbi(elevation),
            raining=raining)

        received_idx = np.nonzero(samples.received)[0]
        # Emit a column block directly from the packet samples: pure
        # array gathers plus broadcast scalars — no per-beacon objects.
        block = TraceColumns.from_arrays(
            n=int(received_idx.size),
            time_s=times[received_idx],
            station_id=station.station_id,
            site=station.site,
            constellation=scheduled.satellite.constellation_name,
            satellite=scheduled.satellite.name,
            norad_id=scheduled.satellite.norad_id,
            frequency_hz=radio.frequency_hz,
            rssi_dbm=samples.rssi_dbm[received_idx],
            snr_db=samples.snr_db[received_idx],
            elevation_deg=elevation[received_idx],
            azimuth_deg=train.azimuth_deg[received_idx],
            range_km=rng_km[received_idx],
            doppler_hz=shift[received_idx],
            raining=raining,
            pass_id=pass_id,
        )
        first_rx = float(times[received_idx[0]]) if len(received_idx) else None
        last_rx = float(times[received_idx[-1]]) if len(received_idx) else None
        return PassReception(
            scheduled=scheduled, pass_id=pass_id,
            beacons_sent=len(times),
            beacons_received=int(len(received_idx)),
            first_rx_s=first_rx, last_rx_s=last_rx,
            raining=raining, traces=TraceDataset(block))
