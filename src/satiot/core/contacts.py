"""Contact-window analysis: theoretical vs effective (paper Section 3.1).

Implements the paper's definitions:

* **theoretical duration** — satellite above the horizon, from TLEs;
* **effective duration** — span between the first and last beacon
  actually received within a contact window;
* **constellation contacts** — per-satellite windows merged (union), so a
  "contact with the constellation" is any period with at least one
  satellite usable; intervals are the gaps in between.

These drive Figures 4a/4b, 8 and 9 and the headline shrinkage numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


import numpy as np

from ..groundstation.receiver import PassReception
from .availability import _traces_column
from .stats import (Summary, interval_gaps, merge_intervals, summarize,
                    total_length)

__all__ = ["ContactWindowStats", "analyze_contacts", "aggregate_stats",
           "window_position_fractions", "mid_window_fraction",
           "reception_rates_by_weather", "trace_distances_km"]


@dataclass
class ContactWindowStats:
    """Paired theoretical/effective contact statistics for one
    (site, constellation) pair over a campaign span."""

    span_s: float
    theoretical_durations_s: List[float]
    effective_durations_s: List[float]
    theoretical_intervals_s: List[float]
    effective_intervals_s: List[float]
    theoretical_daily_hours: float
    effective_daily_hours: float

    # ------------------------------------------------------------------
    @property
    def duration_shrinkage(self) -> float:
        """1 - sum(effective)/sum(theoretical); the paper reports
        85.74-92.20 % for aggregated daily contact duration."""
        total_theo = sum(self.theoretical_durations_s)
        if total_theo <= 0:
            return 0.0
        return 1.0 - sum(self.effective_durations_s) / total_theo

    @property
    def mean_duration_shrinkage(self) -> float:
        """1 - mean(effective)/mean(theoretical) over contacts
        (paper Fig. 4a: 73.70-89.23 %)."""
        theo = summarize(self.theoretical_durations_s).mean
        eff = summarize(self.effective_durations_s).mean
        if not theo or np.isnan(theo) or theo <= 0:
            return 0.0
        eff = 0.0 if np.isnan(eff) else eff
        return 1.0 - eff / theo

    @property
    def interval_inflation(self) -> float:
        """mean(effective intervals) / mean(theoretical intervals)
        (paper Fig. 4b: 6.1-44.9x)."""
        theo = summarize(self.theoretical_intervals_s).mean
        eff = summarize(self.effective_intervals_s).mean
        if not theo or np.isnan(theo) or theo <= 0 or np.isnan(eff):
            return float("nan")
        return eff / theo

    def theoretical_summary(self) -> Summary:
        return summarize(self.theoretical_durations_s)

    def effective_summary(self) -> Summary:
        return summarize(self.effective_durations_s)


def analyze_contacts(receptions: Sequence[PassReception],
                     span_s: float) -> ContactWindowStats:
    """Build contact statistics from a set of pass receptions.

    Windows clipped by the campaign span are excluded from duration
    statistics (their true length is unknown) but still contribute to
    the union used for daily-presence and interval computation.
    """
    theo_intervals: List[Tuple[float, float]] = []
    eff_intervals: List[Tuple[float, float]] = []
    theo_durations: List[float] = []
    eff_durations: List[float] = []

    for reception in receptions:
        window = reception.scheduled.window
        theo_intervals.append((window.rise_s, window.set_s))
        if not (window.clipped_start or window.clipped_end):
            theo_durations.append(window.duration_s)
            eff_durations.append(reception.effective_duration_s)
        if reception.heard_anything:
            eff_intervals.append((reception.first_rx_s, reception.last_rx_s))

    theo_merged = merge_intervals(theo_intervals)
    eff_merged = merge_intervals(eff_intervals)

    return ContactWindowStats(
        span_s=span_s,
        theoretical_durations_s=theo_durations,
        effective_durations_s=eff_durations,
        theoretical_intervals_s=interval_gaps(theo_merged, 0.0, span_s),
        effective_intervals_s=interval_gaps(eff_merged, 0.0, span_s),
        theoretical_daily_hours=(total_length(theo_merged)
                                 / span_s * 24.0),
        effective_daily_hours=(total_length(eff_merged)
                               / span_s * 24.0),
    )


def aggregate_stats(per_site: Sequence[ContactWindowStats],
                    ) -> ContactWindowStats:
    """Combine per-site statistics for one constellation.

    Contact windows exist per location, so daily presence is *averaged*
    across sites (never unioned — two sites seeing the same satellite do
    not double a spot's availability), while window durations and
    intervals are pooled into one sample.
    """
    if not per_site:
        raise ValueError("need at least one site's statistics")
    span = per_site[0].span_s
    if any(abs(s.span_s - span) > 1e-6 for s in per_site):
        raise ValueError("sites were analysed over different spans")
    return ContactWindowStats(
        span_s=span,
        theoretical_durations_s=[d for s in per_site
                                 for d in s.theoretical_durations_s],
        effective_durations_s=[d for s in per_site
                               for d in s.effective_durations_s],
        theoretical_intervals_s=[g for s in per_site
                                 for g in s.theoretical_intervals_s],
        effective_intervals_s=[g for s in per_site
                               for g in s.effective_intervals_s],
        theoretical_daily_hours=float(np.mean(
            [s.theoretical_daily_hours for s in per_site])),
        effective_daily_hours=float(np.mean(
            [s.effective_daily_hours for s in per_site])),
    )


# ----------------------------------------------------------------------
# Beacon placement within windows (Figure 9) and loss factors.
# ----------------------------------------------------------------------
def window_position_fractions(receptions: Sequence[PassReception],
                              ) -> np.ndarray:
    """Normalized positions (0=rise, 1=set) of every received beacon.

    Vectorized per pass: each reception contributes one array
    expression over its trace-time column.
    """
    chunks: List[np.ndarray] = []
    for reception in receptions:
        window = reception.scheduled.window
        if window.duration_s <= 0 or not len(reception.traces):
            continue
        times = reception.traces.column("time_s")
        chunks.append((times - window.rise_s) / window.duration_s)
    if not chunks:
        return np.empty(0, dtype=float)
    return np.concatenate(chunks)


def mid_window_fraction(receptions: Sequence[PassReception],
                        lo: float = 0.3, hi: float = 0.7) -> float:
    """Fraction of receptions within the middle portion of their window
    (paper Appendix C: 70.4 % within 30-70 %)."""
    positions = window_position_fractions(receptions)
    if positions.size == 0:
        return float("nan")
    return float(np.mean((positions >= lo) & (positions <= hi)))


def reception_rates_by_weather(receptions: Sequence[PassReception],
                               min_beacons: int = 5,
                               ) -> Tuple[List[float], List[float]]:
    """Per-contact beacon reception rates split sunny/rainy (Fig. 3d)."""
    sunny: List[float] = []
    rainy: List[float] = []
    for reception in receptions:
        if reception.beacons_sent < min_beacons:
            continue
        bucket = rainy if reception.raining else sunny
        bucket.append(reception.reception_rate)
    return sunny, rainy


def trace_distances_km(receptions: Sequence[PassReception]) -> np.ndarray:
    """Slant ranges of all received beacons (Figure 8's CDF input)."""
    return _traces_column(receptions, "range_km")
