"""Paper reference values quoted by the reproduction benchmarks.

The measurement study's headline numbers were previously re-typed at
the top of each ``benchmarks/bench_*.py`` that compares against them;
this module is the single home for those constants so the scenario
harness and the remaining scripts quote the same figures.

Values are verbatim from the paper; ``None`` marks a quantity the paper
does not report (CSTP's presence is shown only as a range plot).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["PRESENCE_HOURS_PER_DAY", "LATENCY_DECOMPOSITION_MIN",
           "TERRESTRIAL_POWER_MW", "CONCURRENCY_RELIABILITY"]

#: Figure 3a — theoretical daily presence per constellation (hours/day).
#: FOSSA is quoted mid-range (the paper reports 1.1–3.0 h across sites).
PRESENCE_HOURS_PER_DAY: Dict[str, Optional[float]] = {
    "Tianqi": 19.1, "PICO": 5.7, "FOSSA": 2.0, "CSTP": None,
}

#: Figure 5d — decomposition of Tianqi's mean end-to-end latency (min).
LATENCY_DECOMPOSITION_MIN: Dict[str, float] = {
    "wait_min": 55.2, "dts_min": 10.4, "delivery_min": 56.9,
    "total_min": 135.2,
}

#: Figure 10 — terrestrial (LoRaWAN) node per-mode power draw (mW).
TERRESTRIAL_POWER_MW: Dict[str, float] = {
    "tx": 1630.0, "rx": 265.0, "standby": 146.0, "sleep": 19.1,
}

#: Figure 12b / Appendix E — reliability vs concurrent transmitters.
CONCURRENCY_RELIABILITY: Dict[int, float] = {1: 0.94, 2: 0.92, 3: 0.89}
