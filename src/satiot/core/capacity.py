"""Constellation capacity estimation.

Answers the paper's framing question — "Can a space-based infrastructure
deliver network performance that fulfills the requirements for IoT
connectivity?" — with arithmetic the simulator can back: how many
readings per day can a constellation actually carry for a region, given
the effective contact time the campaigns measure, the airtime of a
reading, and the contention behaviour of the MAC.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..phy.lora import LoRaModulation

__all__ = ["CapacityEstimate", "estimate_regional_capacity"]


@dataclass(frozen=True)
class CapacityEstimate:
    """Daily uplink capacity of a constellation over one region."""

    effective_contact_s_per_day: float
    airtime_per_packet_s: float
    slots_per_day: float
    aloha_efficiency: float
    packets_per_day: float
    supported_devices: float

    def utilisation(self, devices: int,
                    packets_per_device_day: float) -> float:
        """Offered load as a fraction of capacity."""
        if self.packets_per_day <= 0:
            return float("inf")
        return devices * packets_per_device_day / self.packets_per_day


def estimate_regional_capacity(
        effective_contact_s_per_day: float,
        payload_bytes: int = 20,
        modulation: LoRaModulation = LoRaModulation(spreading_factor=10),
        packets_per_device_day: float = 48.0,
        aloha_efficiency: float = 0.18,
        guard_factor: float = 1.2) -> CapacityEstimate:
    """Capacity from the campaign's *effective* contact time.

    Parameters
    ----------
    effective_contact_s_per_day:
        The measured usable contact time per day for the region — the
        paper's headline quantity (Tianqi: ~1.8 h/day, not the 18.5 h
        theoretical).
    aloha_efficiency:
        Fraction of slots that carry a *successful* packet under
        uncoordinated access (pure ALOHA peaks at 18.4 %; a slotted
        coordinated MAC can approach 1.0).
    guard_factor:
        Per-packet overhead multiplier (ACK turnaround, processing).
    """
    if effective_contact_s_per_day < 0:
        raise ValueError("contact time cannot be negative")
    if not 0.0 < aloha_efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    if guard_factor < 1.0:
        raise ValueError("guard factor cannot be below 1")
    if packets_per_device_day <= 0:
        raise ValueError("per-device rate must be positive")

    airtime = modulation.airtime_s(payload_bytes) * guard_factor
    slots = effective_contact_s_per_day / airtime if airtime > 0 else 0.0
    packets = slots * aloha_efficiency
    devices = packets / packets_per_device_day
    return CapacityEstimate(
        effective_contact_s_per_day=effective_contact_s_per_day,
        airtime_per_packet_s=airtime,
        slots_per_day=slots,
        aloha_efficiency=aloha_efficiency,
        packets_per_day=packets,
        supported_devices=devices)
