"""Fleet-scale congestion study.

Paper Section 3.1: "since a satellite's footprint covers thousands of
km² with many IoT devices deployed, bursty concurrent communications
from numerous devices can be expected when a satellite flies over.
This imposes pressure on the processing capacity and capabilities of
the satellite."

This module scales the active campaign's three measured nodes to a
whole regional fleet.  The fleet is not simulated node-by-node; instead
it appears to the measured nodes as (a) elevated contention on every
beacon (collision probability grows with the expected number of
simultaneous transmitters in the footprint) and (b) load on the
satellite buffers that must be drained through capacity-limited
downlink sessions, delaying the measured nodes' deliveries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, Optional


import numpy as np

from ..constellations.catalog import Constellation
from ..constellations.footprint import footprint_area_km2
from ..network.downlink import DownlinkConfig

from ..network.mac import MacConfig
from ..network.store_forward import GroundSegment
from ..runtime.executor import Shard, ShardExecutor
from .campaign import (PassiveCampaign, PassiveCampaignConfig,
                       PassiveCampaignResult)

__all__ = ["FleetModel", "congested_mac_config",
           "delivery_delay_under_load_s", "passive_fleet_sweep",
           "fleet_pressure_by_constellation"]


@dataclass(frozen=True)
class FleetModel:
    """A regional background fleet sharing the constellation."""

    #: Devices per million km² of satellite footprint.
    device_density_per_mkm2: float = 50.0
    #: Each background device's packet rate (packets/hour).
    packets_per_hour: float = 2.0
    #: Fraction of footprint devices awake and contending at any beacon.
    duty_factor: float = 0.02
    payload_bytes: int = 20

    def __post_init__(self) -> None:
        if self.device_density_per_mkm2 < 0 or self.packets_per_hour < 0:
            raise ValueError("fleet parameters must be non-negative")
        if not 0.0 <= self.duty_factor <= 1.0:
            raise ValueError("duty factor must be a fraction")

    # ------------------------------------------------------------------
    def devices_in_footprint(self, altitude_km: float) -> float:
        area_mkm2 = footprint_area_km2(altitude_km) / 1e6
        return self.device_density_per_mkm2 * area_mkm2

    def expected_contenders(self, altitude_km: float) -> float:
        """Mean number of fleet devices transmitting on one beacon."""
        return self.devices_in_footprint(altitude_km) * self.duty_factor

    def uplink_packets_per_hour(self, altitude_km: float) -> float:
        """Fleet packets a satellite absorbs per hour over the region."""
        return (self.devices_in_footprint(altitude_km)
                * self.packets_per_hour)


def congested_mac_config(fleet: FleetModel, altitude_km: float,
                         base: Optional[MacConfig] = None) -> MacConfig:
    """A MAC configuration with fleet contention folded in.

    The measured nodes' transmissions survive fleet contention with a
    capture probability ``1 / (1 + k_bg)`` where ``k_bg`` is the
    expected number of simultaneous background transmitters — the
    standard unslotted-contention capture approximation.  Co-located
    measured-node collisions stay on top of that.
    """
    base = base or MacConfig()
    k_bg = fleet.expected_contenders(altitude_km)
    survive_bg = 1.0 / (1.0 + k_bg)
    capture = {k: p * survive_bg
               for k, p in base.capture_probability.items()}
    # Satellite-side processing pressure grows with fleet load.
    load = fleet.uplink_packets_per_hour(altitude_km)
    satellite_loss = min(0.5, base.satellite_loss_probability
                         + load / 2.0e6)
    return MacConfig(
        max_retransmissions=base.max_retransmissions,
        capture_probability=capture,
        satellite_loss_probability=satellite_loss,
        turnaround_s=base.turnaround_s,
        retry_backoff_s=base.retry_backoff_s,
        transmit_policy=base.transmit_policy,
    )


def delivery_delay_under_load_s(
        ground_segment: GroundSegment,
        fleet: FleetModel,
        constellation: Constellation,
        stored_s: float,
        norad_id: int,
        downlink: Optional[DownlinkConfig] = None) -> Optional[float]:
    """Delivery time of a measured packet queued behind fleet traffic.

    The satellite reaches a ground station as usual, but the measured
    packet shares the downlink with the backlog the fleet accumulated
    since the previous offload; its completion slips by the queueing
    time of the packets ahead of it.
    """
    downlink = downlink or DownlinkConfig()
    offload = ground_segment.next_offload_s(norad_id, stored_s)
    if offload is None:
        return None

    satellite = constellation.satellite_by_norad(norad_id)
    gap_h = ground_segment.mean_gap_hours(norad_id)
    if math.isinf(gap_h):
        gap_h = 12.0
    backlog = fleet.uplink_packets_per_hour(
        satellite.mean_altitude_km) * gap_h
    # FIFO: on average half the backlog sits ahead of the packet.
    queue_ahead = 0.5 * backlog
    queueing_s = queue_ahead * downlink.packet_airtime_s(
        fleet.payload_bytes)

    base_arrival = (offload + ground_segment.downlink_setup_s
                    + queueing_s + ground_segment.backhaul_delay_s)
    batch = ground_segment.processing_batch_s
    if batch > 0:
        base_arrival = math.ceil(base_arrival / batch) * batch
    return base_arrival


# ----------------------------------------------------------------------
# Fleet-sweep execution (per-constellation shards on the runtime)
# ----------------------------------------------------------------------
def _fleet_campaign_worker(shard: Shard) -> PassiveCampaignResult:
    """Run one single-constellation passive campaign in a worker."""
    config = shard.payload
    # workers=1: the constellation is the unit of parallelism here.
    return PassiveCampaign(config, workers=1).run()


def passive_fleet_sweep(base_config: Optional[PassiveCampaignConfig]
                        = None,
                        workers: Optional[int] = None,
                        ) -> Dict[str, PassiveCampaignResult]:
    """One passive campaign per constellation, sharded per constellation.

    Fleet studies compare constellations in isolation (each operator's
    fleet pressures only its own satellites), so the sweep decomposes
    into one independent single-constellation campaign per operator.
    With ``workers > 1`` the campaigns run on the runtime's process pool
    and, per the runtime determinism contract, each campaign's traces
    are bit-identical to a serial single-constellation run with the
    same seed.

    Each shard's pass prediction runs on the constellation-batched
    SGP4 path (one :class:`~satiot.orbits.sgp4_batch.SGP4Batch`
    propagation per fleet per site grid, GMST/ECEF once per grid);
    set ``SATIOT_BATCH_SGP4=0`` to force the per-satellite loop.
    Traces are bit-identical either way.

    Returns results keyed by constellation, in configured order.
    """
    base_config = base_config or PassiveCampaignConfig()
    shards = []
    for i, name in enumerate(base_config.constellations):
        cfg = dc_replace(base_config, constellations=(name,))
        shards.append(Shard(index=i, kind="constellation", key=name,
                            payload=cfg))
    executor = ShardExecutor(workers)
    outcomes = executor.map(_fleet_campaign_worker, shards)
    return {name: outcome.result
            for name, outcome in zip(base_config.constellations,
                                     outcomes)}


def fleet_pressure_by_constellation(
        results: Dict[str, PassiveCampaignResult],
        fleet: Optional[FleetModel] = None,
        ) -> Dict[str, Dict[str, float]]:
    """Fleet-load summary per swept constellation.

    For each constellation of a :func:`passive_fleet_sweep`, reports the
    expected number of contending background devices per beacon and the
    uplink packet load a satellite absorbs per hour, evaluated at the
    constellation's mean altitude, alongside the sweep's observed trace
    count.
    """
    fleet = fleet or FleetModel()
    out: Dict[str, Dict[str, float]] = {}
    for name, result in results.items():
        constellation = next(iter(result.constellations.values()))
        altitudes = [sat.mean_altitude_km for sat in constellation]
        altitude_km = float(np.mean(altitudes))
        out[name] = {
            "mean_altitude_km": altitude_km,
            "expected_contenders": fleet.expected_contenders(
                altitude_km),
            "uplink_packets_per_hour": fleet.uplink_packets_per_hour(
                altitude_km),
            "traces": float(result.total_traces),
        }
    return out
