"""End-to-end performance analysis (paper Section 3.2, Figures 5 & 12).

Reliability, latency and retransmission statistics of the satellite
system versus the terrestrial baseline, plus the Appendix E analyses:
reliability as a function of payload size and of how many nodes
transmitted simultaneously.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


import numpy as np

from ..network.packets import PacketRecord
from ..network.server import (latency_decomposition_minutes,
                              reliability_report)
from ..network.terrestrial import TerrestrialRecord

__all__ = ["SystemComparison", "compare_systems",
           "retransmission_histogram", "reliability_by_concurrency",
           "per_node_reliability"]


@dataclass(frozen=True)
class SystemComparison:
    """Headline terrestrial-vs-satellite numbers (Figures 5a/5c/5d)."""

    satellite_reliability: float
    terrestrial_reliability: float
    satellite_latency_min: float
    terrestrial_latency_min: float
    latency_ratio: float
    wait_min: float
    dts_min: float
    delivery_min: float


def compare_systems(satellite_records: Sequence[PacketRecord],
                    terrestrial_records: Sequence[TerrestrialRecord],
                    ) -> SystemComparison:
    sat_report = reliability_report(satellite_records)
    decomposition = latency_decomposition_minutes(satellite_records)

    terr_delivered = [r for r in terrestrial_records if r.delivered]
    terr_rel = (len(terr_delivered) / len(terrestrial_records)
                if terrestrial_records else float("nan"))
    terr_lat = (float(np.mean([r.total_latency_s for r in terr_delivered]))
                / 60.0 if terr_delivered else float("nan"))

    sat_lat = decomposition["total_min"]
    ratio = sat_lat / terr_lat if terr_lat and terr_lat > 0 \
        else float("nan")
    return SystemComparison(
        satellite_reliability=sat_report.reliability,
        terrestrial_reliability=terr_rel,
        satellite_latency_min=sat_lat,
        terrestrial_latency_min=terr_lat,
        latency_ratio=ratio,
        wait_min=decomposition["wait_min"],
        dts_min=decomposition["dts_min"],
        delivery_min=decomposition["delivery_min"],
    )


def retransmission_histogram(records: Sequence[PacketRecord],
                             max_retx: int = 5) -> Dict[int, float]:
    """Fraction of attempted packets needing k DtS retransmissions
    (paper Figure 5b's CDF input)."""
    counts = [r.retransmissions for r in records if r.attempts]
    if not counts:
        return {k: float("nan") for k in range(max_retx + 1)}
    total = len(counts)
    return {k: sum(1 for c in counts if c == k) / total
            for k in range(max_retx + 1)}


def reliability_by_concurrency(records: Sequence[PacketRecord],
                               ) -> Dict[int, Tuple[float, int]]:
    """End-to-end reliability grouped by how many nodes transmitted on
    the packet's first attempt (paper Figure 12b).

    Returns ``{concurrency: (reliability, sample_count)}``.
    """
    groups: Dict[int, List[PacketRecord]] = defaultdict(list)
    for record in records:
        if not record.attempts:
            continue
        groups[record.attempts[0].n_concurrent].append(record)
    return {
        k: (sum(1 for r in recs if r.delivered) / len(recs), len(recs))
        for k, recs in sorted(groups.items())
    }


def per_node_reliability(records_by_node: Dict[str, Sequence[PacketRecord]],
                         ) -> Dict[str, float]:
    """Reliability per deployed node (spread across the three nodes)."""
    return {node: reliability_report(list(recs)).reliability
            for node, recs in records_by_node.items()}
