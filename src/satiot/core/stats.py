"""Small statistics toolkit shared by the analysis modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["merge_intervals", "interval_gaps", "total_length",
           "empirical_cdf", "Summary", "summarize", "bootstrap_mean_ci"]

Interval = Tuple[float, float]


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Union of possibly-overlapping [start, end] intervals."""
    items = sorted((float(s), float(e)) for s, e in intervals)
    merged: List[Interval] = []
    for start, end in items:
        if end < start:
            raise ValueError(f"interval ends before it starts: {(start, end)}")
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


def interval_gaps(merged: Sequence[Interval],
                  span_start: float, span_end: float,
                  include_edges: bool = False) -> List[float]:
    """Durations of the gaps between merged intervals within a span.

    With ``include_edges`` the lead-in before the first interval and the
    tail after the last one count as gaps too.
    """
    if span_end < span_start:
        raise ValueError("span ends before it starts")
    gaps: List[float] = []
    prev_end = span_start
    first = True
    for start, end in merged:
        gap = start - prev_end
        if gap > 0 and (include_edges or not first):
            gaps.append(gap)
        prev_end = max(prev_end, end)
        first = False
    if include_edges and span_end > prev_end:
        gaps.append(span_end - prev_end)
    return gaps


def total_length(merged: Sequence[Interval]) -> float:
    """Summed length of a set of (already merged) intervals."""
    return float(sum(end - start for start, end in merged))


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative probabilities."""
    x = np.sort(np.asarray(values, dtype=float))
    if len(x) == 0:
        return x, x
    p = np.arange(1, len(x) + 1) / len(x)
    return x, p


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    median: float
    p10: float
    p90: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p10=float(np.percentile(arr, 10)),
        p90=float(np.percentile(arr, 90)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def bootstrap_mean_ci(values: Sequence[float], confidence: float = 0.95,
                      n_resamples: int = 1000,
                      seed: int = 0) -> Tuple[float, float]:
    """Bootstrap confidence interval for the mean."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    means = rng.choice(arr, size=(n_resamples, arr.size),
                       replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.percentile(means, 100 * alpha)),
            float(np.percentile(means, 100 * (1 - alpha))))
