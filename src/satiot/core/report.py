"""Plain-text table formatting for campaign reports and benchmarks.

Every benchmark regenerating a paper table/figure prints through these
helpers so outputs are uniform and diffable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "format_kv", "fmt"]

Cell = Union[str, float, int, None]


def fmt(value: Cell, precision: int = 2) -> str:
    """Render one cell: floats to fixed precision, None to '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 precision: int = 2, title: Optional[str] = None) -> str:
    """Monospace table with column alignment."""
    rendered: List[List[str]] = [[fmt(c, precision) for c in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i])
                         for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_kv(pairs: Sequence[tuple], precision: int = 2,
              title: Optional[str] = None) -> str:
    """Aligned key: value listing."""
    width = max((len(str(k)) for k, _v in pairs), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in pairs:
        lines.append(f"{str(key).ljust(width)} : {fmt(value, precision)}")
    return "\n".join(lines)
