"""Active measurement campaign with the Tianqi constellation
(paper Sections 2.3 and 3.2, Appendices B and E).

Three battery-powered Tianqi nodes at a Yunnan coffee plantation send a
20-byte reading every 30 minutes through the Tianqi constellation to an
application server; a terrestrial LoRaWAN with LTE backhaul carries the
same readings for comparison.  The campaign produces everything the
paper's Figures 5, 6, 11 and 12 are drawn from: per-packet delivery
records with full timestamp decomposition, retransmission counts,
per-mode energy timelines, and payload/concurrency sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constellations.catalog import Constellation, Satellite, \
    build_constellation
from ..energy.accounting import EnergyBreakdown
from ..energy.behavior import TerrestrialBehavior, TianqiBehavior
from ..network.beacon import build_beacon_train
from ..network.mac import BeaconOpportunity, DtSMac, MacConfig
from ..network.packets import PacketRecord, SensorReading
from ..network.server import finalize_deliveries
from ..network.store_forward import (TIANQI_GROUND_STATIONS, GroundSegment,
                                     SatelliteBuffer)
from ..network.terrestrial import TerrestrialLoRaWAN, TerrestrialRecord
from ..orbits.frames import GeodeticPoint
from ..orbits.passes import ContactWindow, PassPredictor
from ..orbits.timebase import Epoch
from ..phy.antennas import ANTENNAS_BY_NAME, Antenna
from ..phy.channel import ChannelParams, DtSChannel
from ..phy.error_model import reception_probability
from ..phy.link_budget import LinkBudget
from ..phy.lora import LoRaModulation
from ..sim.rng import RngStreams
from ..sim.weather import WeatherParams, WeatherProcess
from .stats import merge_intervals, total_length

__all__ = ["ActiveCampaignConfig", "ActiveCampaignResult", "ActiveCampaign",
           "YUNNAN_PLANTATION"]

#: Coffee plantation in Yunnan near the Chinese border (paper Appendix B).
YUNNAN_PLANTATION = GeodeticPoint(21.95, 100.85, 1.2)


@dataclass(frozen=True)
class ActiveCampaignConfig:
    """Configuration of the active Tianqi campaign."""

    days: float = 10.0
    node_count: int = 3
    payload_bytes: int = 20
    reading_interval_s: float = 1800.0
    max_retransmissions: int = 5
    antenna_name: str = "five_eighths_wave"
    site: GeodeticPoint = YUNNAN_PLANTATION
    seed: int = 42
    weather: WeatherParams = WeatherParams(mean_dry_hours=30.0,
                                           mean_rain_hours=10.0)
    channel_params: Optional[ChannelParams] = None
    mac_config: Optional[MacConfig] = None
    #: Receiver deficit of the low-cost IoT node versus a TinyGS station
    #: (paper Appendix C factor 3: limited device capability).
    node_rx_penalty_db: float = 6.0
    #: Net SNR advantage of the data uplink over the beacon downlink.
    #: Negative by default: the node's PA gain is outweighed by the
    #: satellite-side noise/interference floor across its huge footprint
    #: (collisions, congestion — paper Section 3.1 takeaways).
    uplink_advantage_db: float = -7.5
    #: ACKs are short unsolicited downlink frames and decode a few dB
    #: worse than the periodic beacons the receiver synchronises to.
    ack_penalty_db: float = 2.0
    #: Airtime vulnerability: longer packets stay on air through more
    #: fading/Doppler drift, so uplink success decays with time-on-air
    #: (p -> p^(airtime/reference)).  Drives paper Fig. 12a.
    airtime_vulnerability_ref_s: float = 0.40
    #: Link-margin gate: the node only treats a beacon as a transmit
    #: opportunity when its SNR clears the demod threshold by this much
    #: (firmware saves the expensive DtS PA for workable links).
    min_beacon_margin_db: float = 1.5

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("campaign must span a positive number of days")
        if self.node_count <= 0:
            raise ValueError("need at least one node")
        if self.antenna_name not in ANTENNAS_BY_NAME:
            raise ValueError(f"unknown antenna {self.antenna_name!r}; "
                             f"choose from {sorted(ANTENNAS_BY_NAME)}")
        if self.reading_interval_s <= 0:
            raise ValueError("reading interval must be positive")

    @property
    def duration_s(self) -> float:
        return self.days * 86400.0

    @property
    def antenna(self) -> Antenna:
        return ANTENNAS_BY_NAME[self.antenna_name]


@dataclass
class ActiveCampaignResult:
    """All raw outputs of one active campaign run."""

    config: ActiveCampaignConfig
    epoch: Epoch
    constellation: Constellation
    readings: Dict[str, List[SensorReading]]
    satellite_records: Dict[str, List[PacketRecord]]
    terrestrial_records: Dict[str, List[TerrestrialRecord]]
    heard_beacons: Dict[str, List[BeaconOpportunity]]
    weather: WeatherProcess
    ground_segment: GroundSegment
    monitoring_rx_s: float
    tianqi_energy: Dict[str, EnergyBreakdown] = field(default_factory=dict)
    terrestrial_energy: Dict[str, EnergyBreakdown] = \
        field(default_factory=dict)

    # ------------------------------------------------------------------
    def all_satellite_records(self) -> List[PacketRecord]:
        return [r for records in self.satellite_records.values()
                for r in records]

    def all_terrestrial_records(self) -> List[TerrestrialRecord]:
        return [r for records in self.terrestrial_records.values()
                for r in records]

    def retransmission_counts(self) -> List[int]:
        """DtS retransmission count of every packet that was attempted."""
        return [r.retransmissions for r in self.all_satellite_records()
                if r.attempts]


class ActiveCampaign:
    """Runs the joint satellite/terrestrial active measurement.

    Parameters
    ----------
    config:
        Campaign configuration.
    ground_segment:
        Optional pre-built operator ground segment; sweeps that vary
        only node-side parameters can share one and skip its (orbital)
        reconstruction.  Must cover at least ``config.duration_s`` for
        the same constellation seed.
    """

    def __init__(self, config: Optional[ActiveCampaignConfig] = None,
                 ground_segment: Optional[GroundSegment] = None) -> None:
        self.config = config or ActiveCampaignConfig()
        self._shared_ground_segment = ground_segment
        if ground_segment is not None \
                and ground_segment.duration_s < self.config.duration_s:
            raise ValueError(
                "shared ground segment does not cover the campaign span")

    # ------------------------------------------------------------------
    def run(self) -> ActiveCampaignResult:
        cfg = self.config
        streams = RngStreams(cfg.seed)
        constellation = build_constellation("tianqi", seed=cfg.seed)
        epoch = constellation.satellites[0].tle.epoch
        weather = WeatherProcess(cfg.weather, cfg.duration_s,
                                 streams.get("weather/active"))

        readings = self._generate_readings(streams)
        windows = self._predict_windows(constellation, epoch)
        heard = self._hear_beacons(constellation, epoch, windows, weather,
                                   streams)

        buffers = {sat.norad_id: SatelliteBuffer(sat.norad_id)
                   for sat in constellation}
        mac = DtSMac(cfg.mac_config
                     or MacConfig(max_retransmissions=cfg.max_retransmissions),
                     buffers)
        records = mac.run(readings, heard, streams.get("mac"),
                          cfg.duration_s)

        ground_segment = self._shared_ground_segment
        if ground_segment is None:
            ground_segment = GroundSegment(constellation, epoch,
                                           cfg.duration_s,
                                           TIANQI_GROUND_STATIONS)
        finalize_deliveries(
            (r for node in records.values() for r in node), ground_segment)

        terrestrial = TerrestrialLoRaWAN().run(
            readings, streams.get("terrestrial"))

        monitoring_rx_s = self._monitoring_time(windows)
        result = ActiveCampaignResult(
            config=cfg, epoch=epoch, constellation=constellation,
            readings=readings, satellite_records=records,
            terrestrial_records=terrestrial, heard_beacons=heard,
            weather=weather, ground_segment=ground_segment,
            monitoring_rx_s=monitoring_rx_s)
        self._account_energy(result)
        return result

    # ------------------------------------------------------------------
    def _generate_readings(self, streams: RngStreams,
                           ) -> Dict[str, List[SensorReading]]:
        cfg = self.config
        out: Dict[str, List[SensorReading]] = {}
        for i in range(cfg.node_count):
            node_id = f"TQ-node-{i + 1}"
            # Sensors sample on the same wall-clock schedule (paper
            # Appendix E observes genuinely simultaneous transmissions).
            times = np.arange(0.0, cfg.duration_s - 3600.0,
                              cfg.reading_interval_s)
            out[node_id] = [
                SensorReading(node_id=node_id, seq=seq,
                              created_s=float(t),
                              payload_bytes=cfg.payload_bytes)
                for seq, t in enumerate(times)
            ]
        return out

    def _predict_windows(self, constellation: Constellation, epoch: Epoch,
                         ) -> List[Tuple[Satellite, ContactWindow]]:
        cfg = self.config
        windows: List[Tuple[Satellite, ContactWindow]] = []
        for sat in constellation:
            predictor = PassPredictor(sat.propagator, cfg.site, 0.0)
            for window in predictor.find_passes(epoch, cfg.duration_s):
                windows.append((sat, window))
        windows.sort(key=lambda pair: pair[1].rise_s)
        return windows

    def _monitoring_time(self, windows: Sequence[Tuple[Satellite,
                                                       ContactWindow]],
                         ) -> float:
        """Receiver-on time: any Tianqi satellite predicted overhead."""
        merged = merge_intervals(
            (w.rise_s, w.set_s) for _s, w in windows)
        return total_length(merged)

    # ------------------------------------------------------------------
    def _hear_beacons(self, constellation: Constellation, epoch: Epoch,
                      windows: Sequence[Tuple[Satellite, ContactWindow]],
                      weather: WeatherProcess, streams: RngStreams,
                      ) -> Dict[str, List[BeaconOpportunity]]:
        """Per-node decoded beacons with uplink/ACK success probabilities.

        Beacon *times* are shared across nodes (one satellite transmits
        one beacon train per pass); each node's reception, and the
        channel state behind its uplink/ACK probabilities, is sampled
        per node.  Channel reciprocity within the coherence time lets us
        derive both probabilities from the sampled beacon SNR:

        * the data uplink enjoys the node's PA advantage over the
          satellite beacon EIRP;
        * the ACK travels the same downlink as the beacon.
        """
        cfg = self.config
        radio = constellation.radio
        modulation = LoRaModulation(
            spreading_factor=radio.spreading_factor,
            bandwidth_hz=radio.bandwidth_hz,
            coding_rate=radio.coding_rate)
        # The sampled beacon SNR embeds the node's receiver deficit; the
        # channel itself (reciprocal within the coherence time) is that
        # much better, and the uplink then gets the configured net
        # advantage on top of it.
        # Transmit-side antenna efficiency: longer whips couple the PA
        # better and keep their gain over ground planes; this benefit is
        # not visible in the receive-side beacon sample, so it enters
        # the uplink margin explicitly (relative to a dipole baseline).
        antenna_tx_bonus_db = cfg.antenna.peak_gain_dbi - 2.15
        uplink_delta_db = (cfg.node_rx_penalty_db + cfg.uplink_advantage_db
                           + antenna_tx_bonus_db)
        uplink_airtime_s = modulation.airtime_s(cfg.payload_bytes)
        vulnerability = max(uplink_airtime_s
                            / cfg.airtime_vulnerability_ref_s, 1e-6)
        heard: Dict[str, List[BeaconOpportunity]] = {
            f"TQ-node-{i + 1}": [] for i in range(cfg.node_count)}

        for pass_index, (sat, window) in enumerate(windows):
            pass_rng = streams.get(f"beacontrain/{pass_index}")
            train = build_beacon_train(sat, window, cfg.site, epoch,
                                       pass_rng, radio=radio)
            times = train.times_s
            if len(times) == 0:
                continue
            elevation = train.elevation_deg
            rng_km = train.range_km
            shift = train.doppler_shift_hz
            rate = train.doppler_rate_hz_s
            raining = bool(weather.is_raining(window.midpoint_s))
            budget = LinkBudget(eirp_dbm=radio.beacon_eirp_dbm,
                                frequency_hz=radio.frequency_hz)
            channel = DtSChannel(budget, modulation, cfg.channel_params)
            rx_gain = (cfg.antenna.gain_dbi(elevation)
                       - cfg.node_rx_penalty_db)
            # Pass-scale shadowing is a property of the pass geometry
            # over the site: the three co-located nodes share one draw,
            # which is what makes truly simultaneous transmissions
            # possible (paper Appendix E).
            shared_pass_offset = float(pass_rng.normal(
                0.0, channel.params.pass_sigma_db))

            for node_id in heard:
                node_rng = streams.get(f"dl/{node_id}/{pass_index}")
                samples = channel.simulate_packets(
                    times_s=times, elevation_deg=elevation,
                    range_km=rng_km, doppler_shift_hz=shift,
                    doppler_rate_hz_s=rate,
                    payload_bytes=radio.beacon_payload_bytes,
                    rng=node_rng, rx_gain_dbi=rx_gain, raining=raining,
                    pass_offset_db=shared_pass_offset)
                usable = samples.received & (
                    samples.snr_db >= modulation.snr_limit_db
                    + cfg.min_beacon_margin_db)
                idx = np.nonzero(usable)[0]
                for i in idx:
                    snr = float(samples.snr_db[i])
                    p_up = float(reception_probability(
                        snr + uplink_delta_db, modulation.snr_limit_db)
                        ** vulnerability)
                    p_ack = float(reception_probability(
                        snr - cfg.ack_penalty_db,
                        modulation.snr_limit_db))
                    heard[node_id].append(BeaconOpportunity(
                        time_s=float(times[i]),
                        satellite_norad=sat.norad_id,
                        p_uplink=p_up, p_ack=p_ack,
                        pass_index=pass_index))
        for node_id in heard:
            heard[node_id].sort(key=lambda b: b.time_s)
        return heard

    # ------------------------------------------------------------------
    def _account_energy(self, result: ActiveCampaignResult) -> None:
        cfg = self.config
        tianqi_behavior = TianqiBehavior()
        terrestrial_behavior = TerrestrialBehavior()
        for node_id, records in result.satellite_records.items():
            attempts = [(a.time_s, r.reading.payload_bytes)
                        for r in records for a in r.attempts]
            timeline = tianqi_behavior.timeline(
                cfg.duration_s, result.monitoring_rx_s, attempts)
            result.tianqi_energy[node_id] = timeline.breakdown()
        for node_id, records in result.terrestrial_records.items():
            payloads = [r.reading.payload_bytes for r in records]
            timeline = terrestrial_behavior.timeline(cfg.duration_s,
                                                     payloads)
            result.terrestrial_energy[node_id] = timeline.breakdown()
