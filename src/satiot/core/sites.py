"""The paper's eight measurement sites (Table 1, Figure 2).

Each site carries its deployment parameters from Table 1 (station count,
deployment start) and a local environment model: extra RF loss for dense
urban sites and a climate for the weather process.  The four continent
representatives used in Section 3.1 are flagged via ``continent_rep``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..orbits.frames import GeodeticPoint
from ..sim.weather import WeatherParams

__all__ = ["MeasurementSite", "SITES", "CONTINENT_SITES",
           "campaign_end_month", "deployment_months"]

#: The campaign closed in March 2025 (paper Section 2.2).
CAMPAIGN_END = (2025, 3)


@dataclass(frozen=True)
class MeasurementSite:
    """One deployment location of the passive campaign."""

    code: str
    city: str
    continent: str
    location: GeodeticPoint
    station_count: int
    start_year: int
    start_month: int
    paper_trace_count: int
    environment_loss_db: float = 0.0   # urban clutter / local interference
    weather: WeatherParams = WeatherParams()
    continent_rep: bool = False

    def __post_init__(self) -> None:
        if self.station_count <= 0:
            raise ValueError("station_count must be positive")
        if not 1 <= self.start_month <= 12:
            raise ValueError("start_month out of range")

    @property
    def deployment_months(self) -> int:
        return deployment_months(self.start_year, self.start_month)


def campaign_end_month() -> Tuple[int, int]:
    return CAMPAIGN_END


def deployment_months(start_year: int, start_month: int) -> int:
    """Whole months a site was deployed until the campaign end."""
    end_year, end_month = CAMPAIGN_END
    months = (end_year - start_year) * 12 + (end_month - start_month)
    if months < 0:
        raise ValueError("site started after the campaign ended")
    return max(months, 1)


# ----------------------------------------------------------------------
# Paper Table 1: City / #GS / start time / #traces.  Environment losses
# and climates are the reproduction's per-site calibration: they explain
# the enormous per-site trace-count spread (e.g. London's 5 stations
# logging only 799 traces — a noisy urban deployment).
# ----------------------------------------------------------------------
SITES: Dict[str, MeasurementSite] = {
    "HK": MeasurementSite(
        code="HK", city="Hong Kong", continent="Asia",
        location=GeodeticPoint(22.30, 114.17, 0.05),
        station_count=6, start_year=2024, start_month=9,
        paper_trace_count=31330, environment_loss_db=1.0,
        weather=WeatherParams(mean_dry_hours=40.0, mean_rain_hours=8.0),
        continent_rep=True),
    "SYD": MeasurementSite(
        code="SYD", city="Sydney", continent="Australia",
        location=GeodeticPoint(-33.87, 151.21, 0.02),
        station_count=4, start_year=2025, start_month=1,
        paper_trace_count=15258, environment_loss_db=0.5,
        weather=WeatherParams(mean_dry_hours=55.0, mean_rain_hours=6.0),
        continent_rep=True),
    "LDN": MeasurementSite(
        code="LDN", city="London", continent="Europe",
        location=GeodeticPoint(51.51, -0.13, 0.01),
        station_count=5, start_year=2025, start_month=2,
        paper_trace_count=799, environment_loss_db=9.0,
        weather=WeatherParams(mean_dry_hours=25.0, mean_rain_hours=8.0),
        continent_rep=True),
    "PGH": MeasurementSite(
        code="PGH", city="Pittsburgh", continent="North America",
        location=GeodeticPoint(40.44, -80.00, 0.3),
        station_count=3, start_year=2025, start_month=2,
        paper_trace_count=15612, environment_loss_db=0.0,
        weather=WeatherParams(mean_dry_hours=45.0, mean_rain_hours=7.0),
        continent_rep=True),
    "SH": MeasurementSite(
        code="SH", city="Shanghai", continent="Asia",
        location=GeodeticPoint(31.23, 121.47, 0.01),
        station_count=2, start_year=2024, start_month=10,
        paper_trace_count=2731, environment_loss_db=6.0,
        weather=WeatherParams(mean_dry_hours=35.0, mean_rain_hours=8.0)),
    "GZ": MeasurementSite(
        code="GZ", city="Guangzhou", continent="Asia",
        location=GeodeticPoint(23.13, 113.26, 0.02),
        station_count=2, start_year=2024, start_month=9,
        paper_trace_count=18488, environment_loss_db=0.5,
        weather=WeatherParams(mean_dry_hours=38.0, mean_rain_hours=9.0)),
    "NC": MeasurementSite(
        code="NC", city="Nanchang", continent="Asia",
        location=GeodeticPoint(28.68, 115.86, 0.03),
        station_count=1, start_year=2024, start_month=11,
        paper_trace_count=328, environment_loss_db=10.0,
        weather=WeatherParams(mean_dry_hours=35.0, mean_rain_hours=10.0)),
    "YC": MeasurementSite(
        code="YC", city="Yinchuan", continent="Asia",
        location=GeodeticPoint(38.49, 106.23, 1.1),
        station_count=4, start_year=2024, start_month=9,
        paper_trace_count=37198, environment_loss_db=0.0,
        weather=WeatherParams(mean_dry_hours=90.0, mean_rain_hours=4.0)),
}

#: The four continent-representative sites analysed in Section 3.1.
CONTINENT_SITES: List[str] = ["HK", "SYD", "LDN", "PGH"]
