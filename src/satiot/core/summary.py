"""One-call reproduction report.

`full_report()` runs both campaigns at a configurable scale and renders
the paper's findings as one text document — the capstone API for a user
who wants "the whole paper" without touching the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


from ..econ.comparison import expenditure_table
from .active import ActiveCampaign, ActiveCampaignConfig
from .campaign import PassiveCampaign, PassiveCampaignConfig
from .contacts import analyze_contacts, mid_window_fraction
from .energy_analysis import compare_energy
from .performance import compare_systems, retransmission_histogram
from .report import format_kv, format_table

__all__ = ["ReportScale", "full_report"]


@dataclass(frozen=True)
class ReportScale:
    """How much simulation to spend on the report."""

    passive_days: float = 1.0
    passive_sites: tuple = ("HK",)
    active_days: float = 2.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.passive_days <= 0 or self.active_days <= 0:
            raise ValueError("campaign spans must be positive")


def _passive_section(scale: ReportScale,
                     workers: Optional[int] = None,
                     timing: bool = False) -> List[str]:
    config = PassiveCampaignConfig(sites=scale.passive_sites,
                                   days=scale.passive_days,
                                   seed=scale.seed)
    result = PassiveCampaign(config, workers=workers).run()
    parts = [f"Passive campaign: {len(scale.passive_sites)} site(s), "
             f"{scale.passive_days:g} day(s), "
             f"{result.total_traces} beacon traces collected."]
    if timing and result.telemetry is not None:
        parts.append("")
        parts.append(result.telemetry.render())

    rows = []
    site = scale.passive_sites[0]
    for name, constellation in sorted(result.constellations.items()):
        receptions = result.receptions(site, name)
        stats = analyze_contacts(receptions, result.duration_s)
        rows.append([
            constellation.name, len(constellation),
            stats.theoretical_daily_hours, stats.effective_daily_hours,
            100.0 * stats.duration_shrinkage,
            mid_window_fraction(receptions),
        ])
    parts.append(format_table(
        ["Constellation", "#SATs", "theo (h/day)", "eff (h/day)",
         "shrink (%)", "mid-window frac"],
        rows, precision=1,
        title=f"Network availability at {site} "
              "(paper Sec. 3.1: shrink 85.7-92.2 %, mid 70.4 %)"))
    return parts


def _active_section(scale: ReportScale) -> List[str]:
    config = ActiveCampaignConfig(days=scale.active_days,
                                  seed=scale.seed)
    result = ActiveCampaign(config).run()
    records = result.all_satellite_records()
    comparison = compare_systems(records,
                                 result.all_terrestrial_records())
    histogram = retransmission_histogram(records)

    parts = [format_kv([
        ("satellite reliability (paper 0.96)",
         comparison.satellite_reliability),
        ("terrestrial reliability (paper ~1.0)",
         comparison.terrestrial_reliability),
        ("satellite latency, min (paper 135.2)",
         comparison.satellite_latency_min),
        ("terrestrial latency, min (paper 0.2)",
         comparison.terrestrial_latency_min),
        ("latency ratio (paper 643.6x)", comparison.latency_ratio),
        ("wait / DtS / delivery, min (paper 55.2/10.4/56.9)",
         f"{comparison.wait_min:.1f} / {comparison.dts_min:.1f} / "
         f"{comparison.delivery_min:.1f}"),
        ("packets needing no retx (paper ~0.5)", histogram.get(0)),
    ], precision=3,
        title=f"Tianqi agriculture deployment, {scale.active_days:g} "
              "day(s) (paper Sec. 3.2)")]

    tianqi_energy = next(iter(result.tianqi_energy.values()))
    terrestrial_energy = next(iter(
        result.terrestrial_energy.values()))
    energy = compare_energy(tianqi_energy, terrestrial_energy)
    parts.append(format_kv([
        ("Tx power ratio (paper 2.2x)", energy.tx_power_ratio),
        ("battery drain ratio (paper 14.9x)", energy.drain_ratio),
        ("Tianqi battery, days (paper 48)", energy.tianqi_battery_days),
        ("terrestrial battery, days (paper 718)",
         energy.terrestrial_battery_days),
    ], precision=1, title="Energy (paper Fig. 6)"))
    return parts


def _cost_section() -> List[str]:
    rows = [[r.network, r.device_cost_usd,
             r.infrastructure_cost_usd or "-",
             r.operational_usd_per_month]
            for r in expenditure_table()]
    return [format_table(
        ["Network", "device ($)", "infrastructure ($)", "$/month"],
        rows, precision=2, title="Costs (paper Table 2)")]


def full_report(scale: Optional[ReportScale] = None,
                workers: Optional[int] = None,
                timing: bool = False) -> str:
    """Run both campaigns and render the paper's findings as text.

    ``workers`` shards the passive campaign per site on the runtime's
    process pool (``None`` defers to ``SATIOT_WORKERS``); ``timing``
    appends the per-shard runtime telemetry table.
    """
    scale = scale or ReportScale()
    sections: List[str] = [
        "satiot reproduction report",
        "==========================",
        "Paper: Satellite IoT in Practice (IMC 2025).  All numbers from",
        "seeded simulation; see EXPERIMENTS.md for the full comparison.",
        "",
    ]
    sections.extend(_passive_section(scale, workers=workers,
                                     timing=timing))
    sections.append("")
    sections.extend(_active_section(scale))
    sections.append("")
    sections.extend(_cost_section())
    return "\n".join(sections)
