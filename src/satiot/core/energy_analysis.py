"""Energy comparison between the node types (paper Figures 6, 10, 11).

Derives the paper's headline energy claims from the campaign's mode
timelines: the DtS transmit-power premium, the extended receive hang-on
time, per-mode battery-drain shares, and battery lifetimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..energy.accounting import EnergyBreakdown
from ..energy.battery import Battery
from ..energy.profiles import (TERRESTRIAL_NODE_PROFILE,
                               TIANQI_NODE_PROFILE, PowerProfile, RadioMode)

__all__ = ["EnergyComparison", "compare_energy", "mode_table"]


@dataclass(frozen=True)
class EnergyComparison:
    """Satellite-vs-terrestrial energy headline numbers."""

    tianqi_avg_power_mw: float
    terrestrial_avg_power_mw: float
    drain_ratio: float                  # paper: 14.9x
    tx_power_ratio: float               # paper: 2.2x
    rx_time_ratio: float
    rx_energy_share_tianqi: float
    rx_energy_share_terrestrial: float
    tianqi_battery_days: float          # paper: 48 days
    terrestrial_battery_days: float     # paper: 718 days


def compare_energy(tianqi: EnergyBreakdown,
                   terrestrial: EnergyBreakdown,
                   battery: Battery = Battery(),
                   tianqi_profile: PowerProfile = TIANQI_NODE_PROFILE,
                   terrestrial_profile: PowerProfile
                   = TERRESTRIAL_NODE_PROFILE) -> EnergyComparison:
    tq_avg = tianqi.average_power_mw
    terr_avg = terrestrial.average_power_mw
    terr_rx_time = terrestrial.time_s[RadioMode.RX] \
        + terrestrial.time_s[RadioMode.STANDBY]
    tq_rx_time = tianqi.time_s[RadioMode.RX]
    return EnergyComparison(
        tianqi_avg_power_mw=tq_avg,
        terrestrial_avg_power_mw=terr_avg,
        drain_ratio=tq_avg / terr_avg,
        tx_power_ratio=(tianqi_profile.tx_mw / terrestrial_profile.tx_mw),
        rx_time_ratio=(tq_rx_time / terr_rx_time
                       if terr_rx_time > 0 else float("inf")),
        rx_energy_share_tianqi=tianqi.energy_fraction(RadioMode.RX),
        rx_energy_share_terrestrial=terrestrial.energy_fraction(
            RadioMode.RX),
        tianqi_battery_days=battery.lifetime_days(tq_avg),
        terrestrial_battery_days=battery.lifetime_days(terr_avg),
    )


def mode_table(breakdown: EnergyBreakdown) -> Dict[str, Dict[str, float]]:
    """Per-mode time (h), time share, energy (mWh) and energy share —
    the rows of paper Figures 6a-6c / 11."""
    out: Dict[str, Dict[str, float]] = {}
    for mode in RadioMode:
        out[mode.value] = {
            "time_h": breakdown.time_s[mode] / 3600.0,
            "time_share": breakdown.time_fraction(mode),
            "energy_mwh": breakdown.energy_mwh[mode],
            "energy_share": breakdown.energy_fraction(mode),
        }
    return out
