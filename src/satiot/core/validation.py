"""Cross-implementation self-checks.

With no reference ephemeris or testbed available offline, confidence in
the simulator comes from *independent implementations agreeing*.  This
module packages those cross-checks — SGP4 vs the analytic J2 propagator,
pass prediction vs the coverage grid, airtime vs bitrate — into a
machine-readable report (also exposed as ``python -m satiot`` users can
run after modifying the physics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..constellations.catalog import build_constellation
from ..orbits.groundtrack import CoverageGrid
from ..orbits.j2 import J2Propagator
from ..orbits.kepler import KeplerianElements, semi_major_axis_km
from ..orbits.sgp4 import SGP4
from ..phy.lora import LoRaModulation
from .availability import daily_presence_hours
from .sites import SITES

__all__ = ["CheckResult", "run_self_checks"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one self-check."""

    name: str
    passed: bool
    detail: str


def _check_sgp4_vs_j2() -> CheckResult:
    constellation = build_constellation("tianqi")
    tle = constellation.satellites[0].tle
    sgp4 = SGP4(tle)
    elements = KeplerianElements(
        semi_major_axis_km=semi_major_axis_km(tle.mean_motion_rev_day),
        eccentricity=tle.eccentricity,
        inclination_rad=tle.inclination_rad,
        raan_rad=tle.raan_rad, argp_rad=tle.argp_rad,
        mean_anomaly_rad=tle.mean_anomaly_rad)
    j2 = J2Propagator(elements)
    t = np.arange(0.0, 6100.0, 60.0)
    r_a, _ = sgp4.propagate(t)
    r_b, _ = j2.propagate(t)
    divergence = float(np.linalg.norm(r_a - r_b, axis=1).max())
    return CheckResult(
        name="SGP4 vs analytic J2 over one orbit",
        passed=divergence < 50.0,
        detail=f"max divergence {divergence:.1f} km (limit 50)")


def _check_passes_vs_coverage() -> CheckResult:
    constellation = build_constellation("tianqi")
    epoch = constellation.satellites[0].tle.epoch
    location = SITES["HK"].location

    hours_passes = daily_presence_hours(constellation, location, epoch)
    grid = CoverageGrid.empty(5.0, 86400.0)
    grid.accumulate_union([s.propagator for s in constellation], epoch,
                          step_s=120.0)
    hours_grid = grid.hours_at(location.latitude_deg,
                               location.longitude_deg)
    delta = abs(hours_passes - hours_grid)
    return CheckResult(
        name="pass prediction vs coverage grid (HK daily presence)",
        passed=delta < 1.5,
        detail=f"passes {hours_passes:.1f} h vs grid {hours_grid:.1f} h "
               f"(|delta| {delta:.2f} h, limit 1.5)")


def _check_airtime_vs_bitrate() -> CheckResult:
    mod = LoRaModulation(spreading_factor=9,
                         low_data_rate_optimize=False)
    payload = 200
    airtime = mod.airtime_s(payload)
    # The payload body must transfer no faster than the raw bitrate.
    implied_bps = 8 * payload / airtime
    ok = implied_bps <= mod.bitrate_bps() * 1.05
    return CheckResult(
        name="LoRa airtime consistent with bitrate",
        passed=ok,
        detail=f"implied {implied_bps:.0f} bps <= "
               f"raw {mod.bitrate_bps():.0f} bps")


def _check_ground_speed() -> CheckResult:
    constellation = build_constellation("fossa")
    sat = constellation.satellites[0].propagator
    _r, v = sat.propagate(np.arange(0.0, 5400.0, 60.0))
    speed = float(np.linalg.norm(v, axis=1).mean())
    # Paper Appendix C: LEO at ~500 km moves at ~7.6 km/s.
    return CheckResult(
        name="orbital speed at 510 km",
        passed=abs(speed - 7.6) < 0.1,
        detail=f"mean speed {speed:.2f} km/s (expect 7.6 +/- 0.1)")


_CHECKS: List[Callable[[], CheckResult]] = [
    _check_sgp4_vs_j2,
    _check_passes_vs_coverage,
    _check_airtime_vs_bitrate,
    _check_ground_speed,
]


def run_self_checks() -> List[CheckResult]:
    """Run every cross-check; failures are reported, not raised."""
    return [check() for check in _CHECKS]
