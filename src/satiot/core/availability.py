"""Global accessibility analysis (paper Section 3.1, Figure 3).

Computes the daily presence duration of each constellation at each site
(union of its satellites' theoretical windows), and the signal-strength
statistics extracted from the received-beacon traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..constellations.catalog import Constellation
from ..groundstation.receiver import PassReception
from ..orbits.passes import PassPredictor
from ..orbits.timebase import Epoch
from ..orbits.frames import GeodeticPoint
from .stats import merge_intervals, total_length


def _traces_column(receptions: Sequence[PassReception],
                   name: str) -> np.ndarray:
    """Concatenate one numeric trace column across receptions.

    Each reception's traces are column-backed, so this is a handful of
    array concatenations — never a per-trace Python loop.
    """
    arrays = [r.traces.column(name) for r in receptions
              if len(r.traces)]
    if not arrays:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(arrays)

__all__ = ["daily_presence_hours", "presence_by_site",
           "RssiStats", "rssi_stats", "rssi_vs_distance"]


def daily_presence_hours(constellation: Constellation,
                         location: GeodeticPoint,
                         epoch: Epoch,
                         days: float = 1.0,
                         min_elevation_deg: float = 0.0,
                         coarse_step_s: float = 30.0) -> float:
    """Hours per day with at least one constellation satellite overhead.

    This is the paper's Figure 3a metric: the theoretical availability
    duration of a constellation at a spot, from TLE propagation.
    """
    if days <= 0:
        raise ValueError("days must be positive")
    span_s = days * 86400.0
    intervals: List[Tuple[float, float]] = []
    for satellite in constellation:
        predictor = PassPredictor(satellite.propagator, location,
                                  min_elevation_deg)
        for window in predictor.find_passes(epoch, span_s,
                                            coarse_step_s=coarse_step_s):
            intervals.append((window.rise_s, window.set_s))
    merged = merge_intervals(intervals)
    return total_length(merged) / span_s * 24.0


def presence_by_site(constellations: Dict[str, Constellation],
                     locations: Dict[str, GeodeticPoint],
                     epoch: Epoch, days: float = 1.0,
                     min_elevation_deg: float = 0.0,
                     ) -> Dict[str, Dict[str, float]]:
    """Daily presence hours for every (constellation, site) pair."""
    return {
        con_name: {
            site: daily_presence_hours(con, loc, epoch, days,
                                       min_elevation_deg)
            for site, loc in locations.items()
        }
        for con_name, con in constellations.items()
    }


@dataclass(frozen=True)
class RssiStats:
    """Signal-strength distribution of received beacons (Figure 3b)."""

    count: int
    mean_dbm: float
    median_dbm: float
    p10_dbm: float
    p90_dbm: float


def rssi_stats(receptions: Sequence[PassReception]) -> RssiStats:
    values = _traces_column(receptions, "rssi_dbm")
    if values.size == 0:
        nan = float("nan")
        return RssiStats(0, nan, nan, nan, nan)
    return RssiStats(
        count=int(values.size),
        mean_dbm=float(values.mean()),
        median_dbm=float(np.median(values)),
        p10_dbm=float(np.percentile(values, 10)),
        p90_dbm=float(np.percentile(values, 90)),
    )


def rssi_vs_distance(receptions: Sequence[PassReception],
                     bin_edges_km: Sequence[float],
                     ) -> List[Tuple[float, float, int]]:
    """Median RSSI per slant-range bin (Figure 3c).

    Returns (bin_center_km, median_rssi_dbm, count) per non-empty bin.
    """
    edges = np.asarray(list(bin_edges_km), dtype=float)
    if len(edges) < 2 or np.any(np.diff(edges) <= 0):
        raise ValueError("bin edges must be increasing, length >= 2")
    distances = _traces_column(receptions, "range_km")
    rssi = _traces_column(receptions, "rssi_dbm")
    out: List[Tuple[float, float, int]] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (distances >= lo) & (distances < hi)
        if not np.any(mask):
            continue
        out.append((float(0.5 * (lo + hi)),
                    float(np.median(rssi[mask])),
                    int(np.sum(mask))))
    return out
