"""Beacon-loss attribution (paper Appendix C).

The paper names three loss factors — long communication distances, the
Doppler effect, and limited device capability — without quantifying
their shares.  Because the simulator knows every deterministic link
term per beacon, it *can* quantify them: this module re-simulates a
campaign's passes while toggling individual impairments off, and
reports how much reception each factor costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


import numpy as np

from ..groundstation.receiver import PassReception
from ..phy.link_budget import free_space_path_loss_db

__all__ = ["LossAttribution", "attribute_losses"]


@dataclass(frozen=True)
class LossAttribution:
    """Where receptions were lost, by deterministic link regime."""

    total_beacons: int
    received: int
    #: Beacons whose *median* link (before fading) was already below
    #: the demod threshold due to distance alone.
    lost_to_distance: int
    #: Beacons above threshold at their range but pushed under by the
    #: low-elevation excess term.
    lost_to_elevation: int
    #: Beacons whose deterministic link was fine; fading killed them.
    lost_to_fading: int

    @property
    def reception_rate(self) -> float:
        if self.total_beacons == 0:
            return float("nan")
        return self.received / self.total_beacons

    def shares(self) -> Dict[str, float]:
        lost = self.total_beacons - self.received
        if lost <= 0:
            return {"distance": 0.0, "elevation": 0.0, "fading": 0.0}
        return {
            "distance": self.lost_to_distance / lost,
            "elevation": self.lost_to_elevation / lost,
            "fading": self.lost_to_fading / lost,
        }


def attribute_losses(receptions: Sequence[PassReception],
                     eirp_dbm: float,
                     frequency_hz: float,
                     rx_gain_dbi: float = 1.65,
                     sensitivity_dbm: float = -132.0,
                     horizon_excess_db: float = 12.0,
                     excess_scale_deg: float = 8.0,
                     implementation_loss_db: float = 1.0,
                     ) -> LossAttribution:
    """Attribute every lost beacon of a campaign to a link regime.

    For each beacon slot of each pass (reconstructed from the pass's
    beacon count and window), the deterministic median RSSI is split
    into its distance and elevation components:

    * below sensitivity on free-space loss alone → *distance*;
    * above on FSPL but below once the low-elevation excess applies →
      *elevation*;
    * above threshold deterministically but not received → *fading*
      (shadowing/fast fading/Doppler draw).
    """
    total = 0
    received = 0
    lost_distance = 0
    lost_elevation = 0
    lost_fading = 0

    for reception in receptions:
        window = reception.scheduled.window
        n = reception.beacons_sent
        if n == 0:
            continue
        total += n
        received += reception.beacons_received

        # Reconstruct per-slot geometry on a uniform grid (the beacon
        # train is periodic; the phase offset is immaterial for the
        # attribution statistics).
        times = np.linspace(window.rise_s, window.set_s, n)
        predictor_angles = _interp_pass_geometry(reception, times)
        elevation, rng_km = predictor_angles

        fspl = free_space_path_loss_db(np.maximum(rng_km, 1.0),
                                       frequency_hz)
        base = eirp_dbm + rx_gain_dbi - implementation_loss_db
        rssi_distance_only = base - fspl
        excess = horizon_excess_db * np.exp(
            -np.clip(elevation, 0.0, 90.0) / excess_scale_deg)
        rssi_full = rssi_distance_only - excess

        below_on_distance = rssi_distance_only < sensitivity_dbm
        below_on_elevation = (~below_on_distance) \
            & (rssi_full < sensitivity_dbm)
        lost = n - reception.beacons_received
        # Deterministic regimes bound the attribution; residual losses
        # among the deterministically fine slots are fading.
        d = int(below_on_distance.sum())
        e = int(below_on_elevation.sum())
        f = max(lost - d - e, 0)
        # Cannot lose more than were lost.
        d = min(d, lost)
        e = min(e, lost - d)
        lost_distance += d
        lost_elevation += e
        lost_fading += f

    return LossAttribution(
        total_beacons=total, received=received,
        lost_to_distance=lost_distance,
        lost_to_elevation=lost_elevation,
        lost_to_fading=lost_fading)


def _interp_pass_geometry(reception: PassReception, times: np.ndarray):
    """Approximate elevation/range along a pass.

    Uses a symmetric-parabola elevation profile anchored at the window's
    maximum elevation and the spherical slant-range relation — accurate
    to a few percent, which is ample for regime attribution.  Fully
    vectorized: the law-of-cosines slant range is evaluated on the
    whole elevation array at once.
    """
    from ..constellations.footprint import EARTH_RADIUS_KM

    window = reception.scheduled.window
    max_el = window.max_elevation_deg
    duration = max(window.duration_s, 1.0)
    x = (times - window.rise_s) / duration  # 0..1
    elevation = np.maximum(max_el * (1.0 - (2.0 * x - 1.0) ** 2), 0.0)

    altitude = reception.scheduled.satellite.mean_altitude_km
    # Vectorized law-of-cosines slant range (mirrors
    # constellations.footprint.slant_range_km element-wise).
    el_rad = np.radians(elevation)
    re = EARTH_RADIUS_KM
    rs = re + altitude
    rng_km = (np.sqrt(rs * rs - (re * np.cos(el_rad)) ** 2)
              - re * np.sin(el_rad))
    return elevation, rng_km
