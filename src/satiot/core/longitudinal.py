"""Longitudinal measurement: sampling a months-long deployment.

The paper's passive dataset spans seven months (Table 1).  Simulating
every hour of that span is wasteful — orbital geometry repeats on
day-to-week scales — so this module samples the campaign the way the
analysis consumes it: one representative day per period (default a
week), each propagated to its true epoch so nodal precession and drag
act on the constellation between samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from ..runtime.executor import Shard, ShardExecutor
from .campaign import PassiveCampaign, PassiveCampaignConfig
from .contacts import ContactWindowStats, analyze_contacts

__all__ = ["WeeklySample", "LongitudinalResult", "LongitudinalCampaign"]


@dataclass(frozen=True)
class WeeklySample:
    """Metrics of one sampled day."""

    week: int
    start_day_offset: float
    traces: int
    stats_by_constellation: Dict[str, ContactWindowStats]

    def shrinkage(self, constellation: str) -> float:
        return self.stats_by_constellation[constellation] \
            .duration_shrinkage


@dataclass
class LongitudinalResult:
    """All weekly samples plus trend summaries."""

    samples: List[WeeklySample] = field(default_factory=list)

    def traces_per_week(self) -> List[int]:
        return [s.traces for s in self.samples]

    def shrinkage_series(self, constellation: str) -> List[float]:
        return [s.shrinkage(constellation) for s in self.samples]

    def shrinkage_stability(self, constellation: str) -> float:
        """Peak-to-peak spread of the weekly shrinkage estimates."""
        series = self.shrinkage_series(constellation)
        if not series:
            return float("nan")
        return max(series) - min(series)


def _week_sample_worker(shard: Shard) -> WeeklySample:
    """Compute one sampled week — pure function of the shard payload."""
    week, offset, config, site, constellations = shard.payload
    # workers=1: the week itself is the unit of parallelism here.
    campaign = PassiveCampaign(config, workers=1).run()
    stats = {
        name: analyze_contacts(
            campaign.receptions(site, name), campaign.duration_s)
        for name in constellations}
    return WeeklySample(week=week, start_day_offset=offset,
                        traces=campaign.total_traces,
                        stats_by_constellation=stats)


class LongitudinalCampaign:
    """Samples a long deployment one day per period.

    Weekly samples are independent shards: with ``workers > 1`` they run
    on the runtime's process pool and merge back in week order, yielding
    the same :class:`LongitudinalResult` as a serial run.
    """

    def __init__(self, weeks: int = 4, site: str = "HK",
                 sample_days: float = 1.0,
                 period_days: float = 7.0, seed: int = 42,
                 constellations: Optional[Sequence[str]] = None,
                 workers: Optional[int] = None) -> None:
        if weeks <= 0:
            raise ValueError("need at least one week")
        if sample_days <= 0 or period_days < sample_days:
            raise ValueError("sample must fit inside the period")
        self.weeks = weeks
        self.site = site
        self.sample_days = sample_days
        self.period_days = period_days
        self.seed = seed
        self.constellations = tuple(constellations
                                    or ("tianqi", "fossa", "pico",
                                        "cstp"))
        self.workers = workers

    def run(self) -> LongitudinalResult:
        shards = []
        for week in range(self.weeks):
            offset = week * self.period_days
            config = PassiveCampaignConfig(
                sites=(self.site,),
                constellations=self.constellations,
                days=self.sample_days,
                start_day_offset=offset,
                seed=self.seed + week)
            shards.append(Shard(
                index=week, kind="week", key=str(week),
                payload=(week, offset, config, self.site,
                         self.constellations)))
        executor = ShardExecutor(self.workers)
        outcomes = executor.map(_week_sample_worker, shards)
        result = LongitudinalResult()
        result.samples = [outcome.result for outcome in outcomes]
        return result
