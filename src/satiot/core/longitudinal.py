"""Longitudinal measurement: sampling a months-long deployment.

The paper's passive dataset spans seven months (Table 1).  Simulating
every hour of that span is wasteful — orbital geometry repeats on
day-to-week scales — so this module samples the campaign the way the
analysis consumes it: one representative day per period (default a
week), each propagated to its true epoch so nodal precession and drag
act on the constellation between samples.

Out-of-core runs
----------------
With ``spill_dir`` set the campaign streams every sampled week's traces
into a sharded ``satiot-traces-v2`` archive (:mod:`satiot.streams`)
instead of accumulating them in RAM, checkpointing after each week so a
killed run resumes from the last completed week.  Each week is a pure
function of ``(config, seed + week)`` — no RNG stream crosses week
boundaries — and shard bytes are pure functions of the trace stream, so
a resumed run's archive is **byte-identical** to an uninterrupted one.
Week traces are rebased into campaign-global time (``time_s`` shifted
by the week's day offset) and pass ids are prefixed ``"w{week}/"`` so
rows stay unambiguous across the whole span.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union


from ..groundstation.traces import TraceColumns
from ..runtime.executor import Shard, ShardExecutor
from ..runtime.telemetry import CampaignTelemetry, ShardTelemetry
from .campaign import PassiveCampaign, PassiveCampaignConfig
from .contacts import ContactWindowStats, analyze_contacts

__all__ = ["WeeklySample", "LongitudinalResult", "LongitudinalCampaign"]


@dataclass(frozen=True)
class WeeklySample:
    """Metrics of one sampled day."""

    week: int
    start_day_offset: float
    traces: int
    stats_by_constellation: Dict[str, ContactWindowStats]

    def shrinkage(self, constellation: str) -> float:
        return self.stats_by_constellation[constellation] \
            .duration_shrinkage


@dataclass
class LongitudinalResult:
    """All weekly samples plus trend summaries."""

    samples: List[WeeklySample] = field(default_factory=list)
    #: Root of the spilled ``satiot-traces-v2`` archive (``None`` for
    #: in-RAM runs).
    archive_dir: Optional[str] = None
    #: The spilled archive's manifest (spilled runs only).
    manifest: Optional[Dict[str, Any]] = None
    #: Runtime telemetry of the run (spilled runs only for now).
    telemetry: Optional[CampaignTelemetry] = None

    def traces_per_week(self) -> List[int]:
        return [s.traces for s in self.samples]

    def shrinkage_series(self, constellation: str) -> List[float]:
        return [s.shrinkage(constellation) for s in self.samples]

    def shrinkage_stability(self, constellation: str) -> float:
        """Peak-to-peak spread of the weekly shrinkage estimates."""
        series = self.shrinkage_series(constellation)
        if not series:
            return float("nan")
        return max(series) - min(series)


def _week_sample_worker(shard: Shard) -> WeeklySample:
    """Compute one sampled week — pure function of the shard payload."""
    week, offset, config, site, constellations = shard.payload
    # workers=1: the week itself is the unit of parallelism here.
    campaign = PassiveCampaign(config, workers=1).run()
    stats = {
        name: analyze_contacts(
            campaign.receptions(site, name), campaign.duration_s)
        for name in constellations}
    return WeeklySample(week=week, start_day_offset=offset,
                        traces=campaign.total_traces,
                        stats_by_constellation=stats)


def _rebase_week_block(block: TraceColumns, week: int,
                       offset_days: float) -> TraceColumns:
    """Shift a week's block into campaign-global time and pass-id space."""
    return block.replace(
        time_s=block.column("time_s") + offset_days * 86400.0,
        pass_id=block.string_column("pass_id").map_table(
            lambda value: f"w{week}/{value}"))


def _week_spill_worker(shard: Shard,
                       ) -> Tuple[WeeklySample, List[TraceColumns],
                                  Dict[str, Dict[str, int]]]:
    """One sampled week plus its (rebased) trace blocks and counters."""
    week, offset, config, site, constellations = shard.payload
    campaign = PassiveCampaign(config, workers=1).run()
    stats = {}
    sent: Dict[str, int] = {}
    received: Dict[str, int] = {}
    for name in constellations:
        receptions = campaign.receptions(site, name)
        stats[name] = analyze_contacts(receptions, campaign.duration_s)
        key = f"{site}/{name}".lower()
        sent[key] = sum(r.beacons_sent for r in receptions)
        received[key] = sum(len(r.traces) for r in receptions)
    sample = WeeklySample(week=week, start_day_offset=offset,
                          traces=campaign.total_traces,
                          stats_by_constellation=stats)
    blocks = [_rebase_week_block(b, week, offset)
              for b in campaign.dataset.blocks()]
    return sample, blocks, {"sent": sent, "received": received}


class LongitudinalCampaign:
    """Samples a long deployment one day per period.

    Weekly samples are independent shards: with ``workers > 1`` they run
    on the runtime's process pool and merge back in week order, yielding
    the same :class:`LongitudinalResult` as a serial run.

    With ``spill_dir`` set, every week's traces stream into a sharded
    on-disk archive (see module docstring) and a checkpoint is written
    after each week; ``resume=True`` picks up from the last checkpoint
    (or short-circuits entirely when the archive is already complete).
    """

    def __init__(self, weeks: int = 4, site: str = "HK",
                 sample_days: float = 1.0,
                 period_days: float = 7.0, seed: int = 42,
                 constellations: Optional[Sequence[str]] = None,
                 workers: Optional[int] = None,
                 spill_dir: Union[str, Path, None] = None,
                 rows_per_shard: int = 100_000,
                 resume: bool = False) -> None:
        if weeks <= 0:
            raise ValueError("need at least one week")
        if sample_days <= 0 or period_days < sample_days:
            raise ValueError("sample must fit inside the period")
        self.weeks = weeks
        self.site = site
        self.sample_days = sample_days
        self.period_days = period_days
        self.seed = seed
        self.constellations = tuple(constellations
                                    or ("tianqi", "fossa", "pico",
                                        "cstp"))
        self.workers = workers
        self.spill_dir = Path(spill_dir) if spill_dir else None
        self.rows_per_shard = int(rows_per_shard)
        self.resume = bool(resume)

    # ------------------------------------------------------------------
    def _week_config(self, week: int) -> PassiveCampaignConfig:
        return PassiveCampaignConfig(
            sites=(self.site,),
            constellations=self.constellations,
            days=self.sample_days,
            start_day_offset=week * self.period_days,
            seed=self.seed + week)

    def _week_shards(self, start_week: int = 0) -> List[Shard]:
        shards = []
        for week in range(start_week, self.weeks):
            offset = week * self.period_days
            shards.append(Shard(
                index=week, kind="week", key=str(week),
                payload=(week, offset, self._week_config(week),
                         self.site, self.constellations)))
        return shards

    def _params(self) -> Dict[str, Any]:
        """Everything that determines the campaign's trace stream."""
        return {
            "engine": "longitudinal-v1",
            "weeks": self.weeks,
            "site": self.site,
            "sample_days": self.sample_days,
            "period_days": self.period_days,
            "seed": self.seed,
            "constellations": list(self.constellations),
            "rows_per_shard": self.rows_per_shard,
        }

    # ------------------------------------------------------------------
    def run(self) -> LongitudinalResult:
        if self.spill_dir is not None:
            return self._run_spilled()
        executor = ShardExecutor(self.workers)
        outcomes = executor.map(_week_sample_worker, self._week_shards())
        result = LongitudinalResult()
        result.samples = [outcome.result for outcome in outcomes]
        return result

    # ------------------------------------------------------------------
    def _run_spilled(self) -> LongitudinalResult:
        # Imported lazily: satiot.streams imports this module for the
        # checkpointed sample types, so a module-level import would
        # cycle.
        from ..streams.checkpoint import (campaign_fingerprint,
                                          clear_checkpoint,
                                          load_checkpoint,
                                          sample_from_state,
                                          sample_to_state,
                                          save_checkpoint)
        from ..streams.spill import (MANIFEST_NAME, PENDING_NAME,
                                     SHARD_DIR, ShardSpillWriter,
                                     is_stream_archive,
                                     read_stream_manifest)

        t0 = time.perf_counter()
        root = self.spill_dir
        fingerprint = campaign_fingerprint(self._params())

        samples: List[WeeklySample] = []
        sent: Dict[str, int] = {}
        received: Dict[str, int] = {}
        start_week = 0
        writer: Optional[ShardSpillWriter] = None

        state = load_checkpoint(root, fingerprint) \
            if self.resume else None
        if state is not None:
            samples = [sample_from_state(s) for s in state["samples"]]
            sent = {k: int(v) for k, v in state["sent"].items()}
            received = {k: int(v)
                        for k, v in state["received"].items()}
            start_week = int(state["weeks_done"])
            writer = ShardSpillWriter.resume(root, state["writer"])
        elif self.resume and is_stream_archive(root):
            manifest = read_stream_manifest(root)
            if manifest.get("fingerprint") == fingerprint:
                # Archive already complete: nothing to recompute.
                meta = manifest.get("meta", {})
                return LongitudinalResult(
                    samples=[sample_from_state(s)
                             for s in meta.get("samples", [])],
                    archive_dir=str(root), manifest=manifest)

        if writer is None:
            # Fresh run: clear any stale spill state so the directory
            # is a pure function of this run.
            root.mkdir(parents=True, exist_ok=True)
            for name in (MANIFEST_NAME, PENDING_NAME,
                         "checkpoint.json"):
                path = root / name
                if path.exists():
                    path.unlink()
            shard_dir = root / SHARD_DIR
            if shard_dir.is_dir():
                for stale in shard_dir.glob("shard-*.npz"):
                    stale.unlink()
            writer = ShardSpillWriter(
                root, rows_per_shard=self.rows_per_shard,
                fingerprint=fingerprint)

        executor = ShardExecutor(self.workers)
        shard_telemetry: List[ShardTelemetry] = []
        for outcome in executor.imap(_week_spill_worker,
                                     self._week_shards(start_week)):
            sample, blocks, counters = outcome.result
            for block in blocks:
                writer.write(block)
            for key, value in counters["sent"].items():
                sent[key] = sent.get(key, 0) + value
            for key, value in counters["received"].items():
                received[key] = received.get(key, 0) + value
            samples.append(sample)
            save_checkpoint(root, {
                "fingerprint": fingerprint,
                "weeks_done": sample.week + 1,
                "samples": [sample_to_state(s) for s in samples],
                "sent": sent,
                "received": received,
                "writer": writer.snapshot_state(),
            })
            shard_telemetry.append(ShardTelemetry(
                label=f"week:{sample.week}", wall_s=outcome.wall_s,
                traces=sample.traces, worker=outcome.worker))

        manifest = writer.finalize(meta={
            "engine": "longitudinal",
            "params": self._params(),
            "span_s": self.weeks * self.period_days * 86400.0,
            "observed_s": self.weeks * self.sample_days * 86400.0,
            "sent": sent,
            "received": received,
            "samples": [sample_to_state(s) for s in samples],
        })
        clear_checkpoint(root)

        telemetry = CampaignTelemetry(
            workers=executor.workers, mode=executor.mode,
            wall_s=time.perf_counter() - t0, shards=shard_telemetry,
            retries=executor.retries, fallbacks=executor.fallbacks,
            spilled_shards=writer.shards_written,
            spilled_bytes=writer.bytes_spilled)
        return LongitudinalResult(samples=samples,
                                  archive_dir=str(root),
                                  manifest=manifest,
                                  telemetry=telemetry)
