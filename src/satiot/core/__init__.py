"""Measurement core: the paper's campaigns and analyses."""

from .active import (ActiveCampaign, ActiveCampaignConfig,
                     ActiveCampaignResult, YUNNAN_PLANTATION)
from .availability import (RssiStats, daily_presence_hours, presence_by_site,
                           rssi_stats, rssi_vs_distance)
from .beacon_loss import LossAttribution, attribute_losses
from .capacity import CapacityEstimate, estimate_regional_capacity
from .campaign import (PassiveCampaign, PassiveCampaignConfig,
                       PassiveCampaignResult, SiteResult)
from .contacts import (ContactWindowStats, aggregate_stats,
                       analyze_contacts, mid_window_fraction,
                       reception_rates_by_weather, trace_distances_km,
                       window_position_fractions)
from .fleet import (FleetModel, congested_mac_config,
                    delivery_delay_under_load_s,
                    fleet_pressure_by_constellation,
                    passive_fleet_sweep)
from .longitudinal import (LongitudinalCampaign, LongitudinalResult,
                           WeeklySample)
from .validation import CheckResult, run_self_checks
from .energy_analysis import EnergyComparison, compare_energy, mode_table
from .performance import (SystemComparison, compare_systems,
                          per_node_reliability, reliability_by_concurrency,
                          retransmission_histogram)
from .report import format_kv, format_table
from .summary import ReportScale, full_report
from .sites import CONTINENT_SITES, SITES, MeasurementSite
from .stats import (Summary, bootstrap_mean_ci, empirical_cdf, interval_gaps,
                    merge_intervals, summarize, total_length)

__all__ = [
    "ActiveCampaign", "ActiveCampaignConfig", "ActiveCampaignResult",
    "YUNNAN_PLANTATION",
    "RssiStats", "daily_presence_hours", "presence_by_site", "rssi_stats",
    "rssi_vs_distance",
    "PassiveCampaign", "PassiveCampaignConfig", "PassiveCampaignResult",
    "SiteResult",
    "ContactWindowStats", "aggregate_stats", "analyze_contacts",
    "mid_window_fraction",
    "LossAttribution", "attribute_losses",
    "CapacityEstimate", "estimate_regional_capacity",
    "FleetModel", "congested_mac_config", "delivery_delay_under_load_s",
    "fleet_pressure_by_constellation", "passive_fleet_sweep",
    "LongitudinalCampaign", "LongitudinalResult", "WeeklySample",
    "CheckResult", "run_self_checks",
    "reception_rates_by_weather", "trace_distances_km",
    "window_position_fractions",
    "EnergyComparison", "compare_energy", "mode_table",
    "SystemComparison", "compare_systems", "per_node_reliability",
    "reliability_by_concurrency", "retransmission_histogram",
    "format_kv", "format_table",
    "ReportScale", "full_report",
    "CONTINENT_SITES", "SITES", "MeasurementSite",
    "Summary", "bootstrap_mean_ci", "empirical_cdf", "interval_gaps",
    "merge_intervals", "summarize", "total_length",
]
