"""Passive measurement campaign orchestration (paper Section 2.2).

Deploys TinyGS-style stations at the configured sites, schedules them
against every satellite of the target constellations with the customized
scheduler, simulates beacon reception through each contact window under
the site's weather, and collects the packet-trace dataset that all of
Section 3.1's analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..constellations.catalog import Constellation, build_all_constellations
from ..groundstation.receiver import BeaconReceiver, PassReception
from ..groundstation.scheduler import PassSchedule, Scheduler
from ..groundstation.station import GroundStation
from ..groundstation.traces import TraceDataset
from ..orbits.timebase import Epoch
from ..phy.channel import ChannelParams
from ..sim.rng import RngStreams
from ..sim.weather import WeatherProcess
from .sites import CONTINENT_SITES, SITES, MeasurementSite

__all__ = ["PassiveCampaignConfig", "SiteResult", "PassiveCampaignResult",
           "PassiveCampaign"]

DEFAULT_CONSTELLATIONS = ("tianqi", "fossa", "pico", "cstp")


@dataclass(frozen=True)
class PassiveCampaignConfig:
    """Configuration of one passive campaign run."""

    sites: Sequence[str] = tuple(CONTINENT_SITES)
    constellations: Sequence[str] = DEFAULT_CONSTELLATIONS
    days: float = 3.0
    #: Campaign start, in days after the element-set epoch.  Lets a
    #: longitudinal study sample disjoint weeks of the same catalog.
    start_day_offset: float = 0.0
    seed: int = 42
    min_elevation_deg: float = 0.0
    coarse_step_s: float = 30.0
    channel_params: Optional[ChannelParams] = None

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("campaign must span a positive number of days")
        unknown = [s for s in self.sites if s not in SITES]
        if unknown:
            raise ValueError(f"unknown sites: {unknown}")
        from ..constellations.catalog import CONSTELLATION_SPECS
        bad = [c for c in self.constellations
               if c.lower() not in CONSTELLATION_SPECS]
        if bad or not self.constellations:
            raise ValueError(f"unknown constellations: {bad}")

    @property
    def duration_s(self) -> float:
        return self.days * 86400.0


@dataclass
class SiteResult:
    """Everything recorded at one site."""

    site: MeasurementSite
    stations: List[GroundStation]
    schedule: PassSchedule
    receptions: List[PassReception]
    weather: WeatherProcess

    @property
    def trace_count(self) -> int:
        return sum(len(r.traces) for r in self.receptions)

    def receptions_by_constellation(self, name: str) -> List[PassReception]:
        name = name.lower()
        return [r for r in self.receptions
                if r.scheduled.satellite.constellation_name.lower() == name]


@dataclass
class PassiveCampaignResult:
    """Aggregate output of a passive campaign."""

    config: PassiveCampaignConfig
    epoch: Epoch
    constellations: Dict[str, Constellation]
    site_results: Dict[str, SiteResult]
    dataset: TraceDataset = field(default_factory=TraceDataset)

    @property
    def duration_s(self) -> float:
        return self.config.duration_s

    @property
    def total_traces(self) -> int:
        return len(self.dataset)

    def receptions(self, site: str, constellation: str,
                   ) -> List[PassReception]:
        return self.site_results[site].receptions_by_constellation(
            constellation)


class PassiveCampaign:
    """Runs the passive measurement campaign."""

    def __init__(self, config: Optional[PassiveCampaignConfig] = None) -> None:
        self.config = config or PassiveCampaignConfig()

    # ------------------------------------------------------------------
    def _deploy_stations(self, site: MeasurementSite) -> List[GroundStation]:
        return [GroundStation(station_id=f"{site.code}-{i + 1}",
                              site=site.code, location=site.location)
                for i in range(site.station_count)]

    # ------------------------------------------------------------------
    def run(self) -> PassiveCampaignResult:
        cfg = self.config
        streams = RngStreams(cfg.seed)
        constellations = build_all_constellations(seed=cfg.seed)
        constellations = {k: v for k, v in constellations.items()
                          if k in {c.lower() for c in cfg.constellations}}
        if not constellations:
            raise ValueError("no constellations selected")
        satellites = [sat for con in constellations.values() for sat in con]
        epoch = satellites[0].tle.epoch + cfg.start_day_offset * 86400.0

        result = PassiveCampaignResult(
            config=cfg, epoch=epoch, constellations=constellations,
            site_results={})

        pass_id = 0
        for code in cfg.sites:
            site = SITES[code]
            stations = self._deploy_stations(site)
            scheduler = Scheduler(stations,
                                  min_elevation_deg=cfg.min_elevation_deg)
            schedule = scheduler.build_schedule(
                satellites, epoch, cfg.duration_s,
                coarse_step_s=cfg.coarse_step_s)
            weather = WeatherProcess(site.weather, cfg.duration_s,
                                     streams.get(f"weather/{code}"))
            receiver = BeaconReceiver(
                channel_params=cfg.channel_params,
                link_overrides={
                    "implementation_loss_db":
                        1.0 + site.environment_loss_db})

            receptions: List[PassReception] = []
            for scheduled in schedule.assigned:
                rng = streams.get(
                    f"rx/{code}/{scheduled.satellite.norad_id}/{pass_id}")
                reception = receiver.receive_pass(
                    scheduled, epoch, pass_id, rng, weather=weather)
                receptions.append(reception)
                result.dataset.extend(reception.traces)
                pass_id += 1

            result.site_results[code] = SiteResult(
                site=site, stations=stations, schedule=schedule,
                receptions=receptions, weather=weather)
        return result
