"""Passive measurement campaign orchestration (paper Section 2.2).

Deploys TinyGS-style stations at the configured sites, schedules them
against every satellite of the target constellations with the customized
scheduler, simulates beacon reception through each contact window under
the site's weather, and collects the packet-trace dataset that all of
Section 3.1's analyses consume.

Execution is sharded per site through :mod:`satiot.runtime`: each site's
computation is a pure function of ``(config, site)`` — RNG streams are
keyed by ``(site, norad id, per-site pass index)`` and pass identifiers
are the shard-invariant strings ``"{site}-{norad}-{k}"`` — so shards can
run serially, on a process pool (``workers``/``SATIOT_WORKERS``), or on
any subset of sites, and always produce **bit-identical** traces for the
sites they share — verified at the column level since the trace data
plane went columnar.  Shard results carry compact
:class:`~satiot.groundstation.traces.TraceColumns` blocks over the IPC
boundary (flat arrays pickle far cheaper than row objects) and merge
back in configured site order via array concatenation.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..constellations.catalog import (Constellation, Satellite,
                                      build_all_constellations)
from ..groundstation.receiver import BeaconReceiver, PassReception
from ..groundstation.scheduler import PassSchedule, Scheduler
from ..groundstation.station import GroundStation
from ..groundstation.traces import TraceDataset
from ..orbits.timebase import Epoch
from ..phy.channel import ChannelParams
from ..runtime.ephemeris_cache import EphemerisCache, get_default_cache
from ..runtime.executor import Shard, ShardExecutor
from ..runtime.telemetry import CampaignTelemetry, ShardTelemetry
from ..sim.rng import RngStreams
from ..sim.weather import WeatherProcess
from .sites import CONTINENT_SITES, SITES, MeasurementSite

__all__ = ["PassiveCampaignConfig", "SiteResult", "PassiveCampaignResult",
           "PassiveCampaign"]

DEFAULT_CONSTELLATIONS = ("tianqi", "fossa", "pico", "cstp")

#: Sentinel: use the process-default ephemeris cache (see
#: :func:`satiot.runtime.get_default_cache`).
DEFAULT_CACHE = "default"


@dataclass(frozen=True)
class PassiveCampaignConfig:
    """Configuration of one passive campaign run."""

    sites: Sequence[str] = tuple(CONTINENT_SITES)
    constellations: Sequence[str] = DEFAULT_CONSTELLATIONS
    days: float = 3.0
    #: Campaign start, in days after the element-set epoch.  Lets a
    #: longitudinal study sample disjoint weeks of the same catalog.
    start_day_offset: float = 0.0
    seed: int = 42
    min_elevation_deg: float = 0.0
    coarse_step_s: float = 30.0
    channel_params: Optional[ChannelParams] = None

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("campaign must span a positive number of days")
        unknown = [s for s in self.sites if s not in SITES]
        if unknown:
            raise ValueError(f"unknown sites: {unknown}")
        from ..constellations.catalog import CONSTELLATION_SPECS
        bad = [c for c in self.constellations
               if c.lower() not in CONSTELLATION_SPECS]
        if bad or not self.constellations:
            raise ValueError(f"unknown constellations: {bad}")

    @property
    def duration_s(self) -> float:
        return self.days * 86400.0


@dataclass
class SiteResult:
    """Everything recorded at one site."""

    site: MeasurementSite
    stations: List[GroundStation]
    schedule: PassSchedule
    receptions: List[PassReception]
    weather: WeatherProcess

    @property
    def trace_count(self) -> int:
        return sum(len(r.traces) for r in self.receptions)

    def receptions_by_constellation(self, name: str) -> List[PassReception]:
        name = name.lower()
        return [r for r in self.receptions
                if r.scheduled.satellite.constellation_name.lower() == name]


@dataclass
class PassiveCampaignResult:
    """Aggregate output of a passive campaign."""

    config: PassiveCampaignConfig
    epoch: Epoch
    constellations: Dict[str, Constellation]
    site_results: Dict[str, SiteResult]
    dataset: TraceDataset = field(default_factory=TraceDataset)
    #: Per-shard runtime telemetry of the run that produced this result.
    telemetry: Optional[CampaignTelemetry] = None

    @property
    def duration_s(self) -> float:
        return self.config.duration_s

    @property
    def total_traces(self) -> int:
        return len(self.dataset)

    def receptions(self, site: str, constellation: str,
                   ) -> List[PassReception]:
        return self.site_results[site].receptions_by_constellation(
            constellation)

    def spill_to(self, root, rows_per_shard: int = 100_000) -> dict:
        """Archive the dataset as sharded ``satiot-traces-v2``.

        Streams the dataset's column blocks through the deterministic
        shard writer (peak memory stays one shard) and records the
        per-(site, constellation) sent/received counters in the
        manifest meta so streaming KPI reducers can compute loss rates
        without the reception objects.  Returns the manifest.
        """
        # Lazy import: satiot.streams depends on this module.
        from ..streams.checkpoint import campaign_fingerprint
        from ..streams.spill import ShardSpillWriter
        cfg = self.config
        fingerprint = campaign_fingerprint({
            "engine": "passive-v1",
            "sites": list(cfg.sites),
            "constellations": list(cfg.constellations),
            "days": cfg.days,
            "start_day_offset": cfg.start_day_offset,
            "seed": cfg.seed,
            "min_elevation_deg": cfg.min_elevation_deg,
            "coarse_step_s": cfg.coarse_step_s,
            "channel_params": repr(cfg.channel_params),
            "rows_per_shard": int(rows_per_shard),
        })
        sent: Dict[str, int] = {}
        received: Dict[str, int] = {}
        for code, site_result in self.site_results.items():
            for reception in site_result.receptions:
                name = reception.scheduled.satellite.constellation_name
                key = f"{code}/{name}".lower()
                sent[key] = sent.get(key, 0) + reception.beacons_sent
                received[key] = (received.get(key, 0)
                                 + len(reception.traces))
        writer = ShardSpillWriter(root, rows_per_shard=rows_per_shard,
                                  fingerprint=fingerprint)
        writer.write_dataset(self.dataset)
        return writer.finalize(meta={
            "engine": "passive",
            "span_s": self.duration_s,
            "sent": sent,
            "received": received,
        })


# ----------------------------------------------------------------------
# Shard-level computation (module-level: must be picklable for the
# process pool, and shared verbatim by the serial path so both paths are
# bit-identical by construction).
# ----------------------------------------------------------------------
def _campaign_inputs(cfg: PassiveCampaignConfig,
                     ) -> Tuple[Dict[str, Constellation],
                                List[Satellite], Epoch]:
    """Deterministically rebuild the campaign's orbital inputs."""
    constellations = build_all_constellations(seed=cfg.seed)
    constellations = {k: v for k, v in constellations.items()
                      if k in {c.lower() for c in cfg.constellations}}
    if not constellations:
        raise ValueError("no constellations selected")
    satellites = [sat for con in constellations.values() for sat in con]
    epoch = satellites[0].tle.epoch + cfg.start_day_offset * 86400.0
    return constellations, satellites, epoch


def _deploy_stations(site: MeasurementSite) -> List[GroundStation]:
    return [GroundStation(station_id=f"{site.code}-{i + 1}",
                          site=site.code, location=site.location)
            for i in range(site.station_count)]


def _run_site(cfg: PassiveCampaignConfig, code: str,
              satellites: Sequence[Satellite], epoch: Epoch,
              cache: Optional[EphemerisCache],
              ) -> Tuple[SiteResult, ShardTelemetry]:
    """Simulate one site — a pure function of ``(config, site)``.

    RNG streams are derived from ``(seed, site, norad, per-site pass
    index)``, never from cross-site state, which is what makes the
    result independent of which other sites run, in which order, and in
    which process.
    """
    t0 = time.perf_counter()
    stats0 = cache.stats.snapshot() if cache is not None else None

    streams = RngStreams(cfg.seed)
    site = SITES[code]
    stations = _deploy_stations(site)
    scheduler = Scheduler(stations,
                          min_elevation_deg=cfg.min_elevation_deg)
    schedule = scheduler.build_schedule(
        satellites, epoch, cfg.duration_s,
        coarse_step_s=cfg.coarse_step_s, ephemeris_cache=cache)
    weather = WeatherProcess(site.weather, cfg.duration_s,
                             streams.get(f"weather/{code}"))
    receiver = BeaconReceiver(
        channel_params=cfg.channel_params,
        link_overrides={
            "implementation_loss_db": 1.0 + site.environment_loss_db})

    receptions: List[PassReception] = []
    pass_index: Dict[int, int] = {}
    beacons = traces = 0
    for scheduled in schedule.assigned:
        norad = scheduled.satellite.norad_id
        k = pass_index.get(norad, 0)
        pass_index[norad] = k + 1
        pass_id = f"{code}-{norad}-{k}"
        rng = streams.get(f"rx/{code}/{norad}/{k}")
        reception = receiver.receive_pass(
            scheduled, epoch, pass_id, rng, weather=weather)
        receptions.append(reception)
        beacons += reception.beacons_sent
        traces += len(reception.traces)

    site_result = SiteResult(site=site, stations=stations,
                             schedule=schedule, receptions=receptions,
                             weather=weather)
    hits = misses = 0
    if cache is not None and stats0 is not None:
        stats1 = cache.stats.snapshot()
        hits = (stats1[0] - stats0[0]) + (stats1[2] - stats0[2])
        misses = (stats1[1] - stats0[1]) + (stats1[3] - stats0[3])
    grid_bytes = (cache.grid_resident_bytes()
                  if cache is not None else 0)
    telemetry = ShardTelemetry(
        label=f"site:{code}", wall_s=time.perf_counter() - t0,
        passes=len(schedule.assigned), beacons=beacons, traces=traces,
        cache_hits=hits, cache_misses=misses, grid_bytes=grid_bytes,
        worker=f"pid:{os.getpid()}")
    return site_result, telemetry


def _resolve_cache(spec) -> Optional[EphemerisCache]:
    """Turn a cache spec (object, sentinel, path or None) into a cache."""
    if spec is None:
        return None
    if isinstance(spec, EphemerisCache):
        return spec
    if spec == DEFAULT_CACHE:
        return get_default_cache()
    if spec == "memory":
        return EphemerisCache()
    return EphemerisCache(disk_dir=spec)


def _cache_spec_for_worker(spec) -> Union[str, None]:
    """Picklable description of the cache for worker processes.

    Custom cache *objects* cannot cross the process boundary; workers
    rebuild an equivalent cache (sharing the disk tier when one is
    configured, else a fresh per-process memory cache).
    """
    if spec is None:
        return None
    if isinstance(spec, EphemerisCache):
        return str(spec.disk_dir) if spec.disk_dir else "memory"
    return spec  # "default" or a disk path


def _site_shard_worker(shard: Shard) -> Tuple[SiteResult, ShardTelemetry]:
    """Process-pool entry point: recompute one site from its payload."""
    cfg, code, cache_spec = shard.payload
    cache = _resolve_cache(cache_spec)
    _, satellites, epoch = _campaign_inputs(cfg)
    return _run_site(cfg, code, satellites, epoch, cache)


# ----------------------------------------------------------------------
class PassiveCampaign:
    """Runs the passive measurement campaign.

    Parameters
    ----------
    config:
        Campaign configuration (defaults to the paper's setup).
    workers:
        Shard worker count; ``None`` defers to ``SATIOT_WORKERS`` (and
        then to 1, serial), ``0`` means one worker per CPU.  Parallel
        and serial runs produce bit-identical trace datasets.
    ephemeris_cache:
        ``"default"`` (the process-wide cache), ``None`` (disable
        caching), a directory path (disk-backed cache) or an
        :class:`~satiot.runtime.EphemerisCache` instance.
    """

    def __init__(self, config: Optional[PassiveCampaignConfig] = None,
                 workers: Optional[int] = None,
                 ephemeris_cache=DEFAULT_CACHE) -> None:
        self.config = config or PassiveCampaignConfig()
        self.workers = workers
        self.ephemeris_cache = ephemeris_cache

    # ------------------------------------------------------------------
    def run(self) -> PassiveCampaignResult:
        cfg = self.config
        t0 = time.perf_counter()
        constellations, satellites, epoch = _campaign_inputs(cfg)
        executor = ShardExecutor(self.workers)

        if executor.workers > 1 and len(cfg.sites) > 1:
            spec = _cache_spec_for_worker(self.ephemeris_cache)
            shards = [Shard(index=i, kind="site", key=code,
                            payload=(cfg, code, spec))
                      for i, code in enumerate(cfg.sites)]
            outcomes = executor.map(_site_shard_worker, shards)
            pairs = [outcome.result for outcome in outcomes]
        else:
            cache = _resolve_cache(self.ephemeris_cache)
            pairs = [_run_site(cfg, code, satellites, epoch, cache)
                     for code in cfg.sites]

        result = PassiveCampaignResult(
            config=cfg, epoch=epoch, constellations=constellations,
            site_results={})
        shard_telemetry: List[ShardTelemetry] = []
        for code, (site_result, telemetry) in zip(cfg.sites, pairs):
            result.site_results[code] = site_result
            for reception in site_result.receptions:
                # Column blocks are adopted wholesale (no per-row
                # work); the dataset concatenates arrays lazily on
                # first columnar access.
                result.dataset.extend(reception.traces)
            shard_telemetry.append(telemetry)
        result.telemetry = CampaignTelemetry(
            workers=executor.workers, mode=executor.mode,
            wall_s=time.perf_counter() - t0, shards=shard_telemetry,
            retries=executor.retries, fallbacks=executor.fallbacks)
        return result
