"""Plottable data series for every figure of the paper.

The benchmarks print summary tables; this module exposes the *full*
distributions behind them — CDFs, histograms and bar groups shaped like
the paper's plots — so a notebook can regenerate each figure with two
lines of matplotlib.  Each builder consumes campaign results and returns
a :class:`FigureSeries` of named ``(x, y)`` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..network.packets import PacketRecord
from ..network.terrestrial import TerrestrialRecord
from .campaign import PassiveCampaignResult
from .contacts import analyze_contacts, trace_distances_km, \
    window_position_fractions
from .sites import CONTINENT_SITES, SITES
from .availability import daily_presence_hours
from .stats import empirical_cdf

__all__ = ["FigureSeries", "fig3a_presence_bars", "fig3b_rssi_cdfs",
           "fig3c_rssi_vs_distance_curve", "fig4a_duration_cdfs",
           "fig4b_interval_cdfs", "fig5b_retransmission_cdf",
           "fig5c_latency_cdfs", "fig8_distance_cdfs",
           "fig9_window_histogram"]

Series = Tuple[np.ndarray, np.ndarray]


@dataclass
class FigureSeries:
    """Named data series with axis labels, ready for plotting."""

    figure: str
    xlabel: str
    ylabel: str
    series: Dict[str, Series] = field(default_factory=dict)

    def add(self, name: str, x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            raise ValueError(f"series {name!r}: x/y shape mismatch")
        self.series[name] = (x, y)

    def names(self) -> List[str]:
        return list(self.series)


# ----------------------------------------------------------------------
# Passive campaign figures.
# ----------------------------------------------------------------------
def fig3a_presence_bars(result: PassiveCampaignResult,
                        ) -> FigureSeries:
    """Daily presence per constellation across the continent sites."""
    out = FigureSeries("3a", xlabel="site index", ylabel="hours/day")
    sites = [code for code in CONTINENT_SITES
             if code in result.site_results]
    x = np.arange(len(sites), dtype=float)
    for name, constellation in sorted(result.constellations.items()):
        hours = [daily_presence_hours(constellation,
                                      SITES[code].location,
                                      result.epoch)
                 for code in sites]
        out.add(constellation.name, x, np.asarray(hours))
    return out


def fig3b_rssi_cdfs(result: PassiveCampaignResult) -> FigureSeries:
    """CDF of received-beacon RSSI per constellation."""
    out = FigureSeries("3b", xlabel="RSSI (dBm)", ylabel="CDF")
    for name, constellation in sorted(result.constellations.items()):
        values = result.dataset.by_constellation(name) \
            .column("rssi_dbm")
        if values.size == 0:
            continue
        x, p = empirical_cdf(values)
        out.add(constellation.name, x, p)
    return out


def fig3c_rssi_vs_distance_curve(result: PassiveCampaignResult,
                                 bin_width_km: float = 250.0,
                                 ) -> FigureSeries:
    """Median Tianqi RSSI against slant range."""
    out = FigureSeries("3c", xlabel="distance (km)",
                       ylabel="median RSSI (dBm)")
    tianqi = result.dataset.by_constellation("tianqi")
    if not len(tianqi):
        return out
    distance = tianqi.column("range_km")
    rssi = tianqi.column("rssi_dbm")
    edges = np.arange(distance.min(), distance.max() + bin_width_km,
                      bin_width_km)
    centers, medians = [], []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (distance >= lo) & (distance < hi)
        if mask.sum() < 5:
            continue
        centers.append(0.5 * (lo + hi))
        medians.append(np.median(rssi[mask]))
    out.add("Tianqi", np.asarray(centers), np.asarray(medians))
    return out


def _per_constellation_stats(result: PassiveCampaignResult):
    for name, constellation in sorted(result.constellations.items()):
        receptions = [r for code in result.site_results
                      for r in result.receptions(code, name)]
        yield constellation.name, receptions


def fig4a_duration_cdfs(result: PassiveCampaignResult) -> FigureSeries:
    """CDFs of theoretical vs effective contact durations (minutes)."""
    out = FigureSeries("4a", xlabel="contact duration (min)",
                       ylabel="CDF")
    for name, receptions in _per_constellation_stats(result):
        stats = analyze_contacts(receptions, result.duration_s)
        if stats.theoretical_durations_s:
            x, p = empirical_cdf(
                np.asarray(stats.theoretical_durations_s) / 60.0)
            out.add(f"{name} theoretical", x, p)
        if stats.effective_durations_s:
            x, p = empirical_cdf(
                np.asarray(stats.effective_durations_s) / 60.0)
            out.add(f"{name} effective", x, p)
    return out


def fig4b_interval_cdfs(result: PassiveCampaignResult) -> FigureSeries:
    """CDFs of theoretical vs effective contact intervals (minutes)."""
    out = FigureSeries("4b", xlabel="contact interval (min)",
                       ylabel="CDF")
    for name, receptions in _per_constellation_stats(result):
        stats = analyze_contacts(receptions, result.duration_s)
        if stats.theoretical_intervals_s:
            x, p = empirical_cdf(
                np.asarray(stats.theoretical_intervals_s) / 60.0)
            out.add(f"{name} theoretical", x, p)
        if stats.effective_intervals_s:
            x, p = empirical_cdf(
                np.asarray(stats.effective_intervals_s) / 60.0)
            out.add(f"{name} effective", x, p)
    return out


def fig8_distance_cdfs(result: PassiveCampaignResult) -> FigureSeries:
    """CDFs of DtS slant ranges per constellation (km)."""
    out = FigureSeries("8", xlabel="distance (km)", ylabel="CDF")
    for name, receptions in _per_constellation_stats(result):
        distances = trace_distances_km(receptions)
        if len(distances) == 0:
            continue
        x, p = empirical_cdf(distances)
        out.add(name, x, p)
    return out


def fig9_window_histogram(result: PassiveCampaignResult,
                          bins: int = 10) -> FigureSeries:
    """Histogram of reception positions within contact windows."""
    out = FigureSeries("9", xlabel="normalized window position",
                       ylabel="fraction of receptions")
    receptions = [r for sr in result.site_results.values()
                  for r in sr.receptions]
    positions = window_position_fractions(receptions)
    if positions.size == 0:
        return out
    hist, edges = np.histogram(positions, bins=bins, range=(0.0, 1.0))
    centers = 0.5 * (edges[:-1] + edges[1:])
    out.add("all constellations", centers, hist / hist.sum())
    return out


# ----------------------------------------------------------------------
# Active campaign figures.
# ----------------------------------------------------------------------
def fig5b_retransmission_cdf(records: Sequence[PacketRecord],
                             ) -> FigureSeries:
    """CDF of per-packet DtS retransmission counts."""
    out = FigureSeries("5b", xlabel="DtS retransmissions", ylabel="CDF")
    counts = [r.retransmissions for r in records if r.attempts]
    if counts:
        x, p = empirical_cdf(counts)
        out.add("Tianqi", x, p)
    return out


def fig5c_latency_cdfs(satellite_records: Sequence[PacketRecord],
                       terrestrial_records: Sequence[TerrestrialRecord],
                       ) -> FigureSeries:
    """CDFs of end-to-end latency (minutes), both systems."""
    out = FigureSeries("5c", xlabel="latency (min)", ylabel="CDF")
    sat = [r.total_latency_s / 60.0 for r in satellite_records
           if r.delivered]
    terr = [r.total_latency_s / 60.0 for r in terrestrial_records
            if r.delivered]
    if sat:
        x, p = empirical_cdf(sat)
        out.add("satellite", x, p)
    if terr:
        x, p = empirical_cdf(terr)
        out.add("terrestrial", x, p)
    return out
