"""Out-of-core streaming campaign engine.

This package is the storage/execution layer that takes campaigns past
RAM: a sharded deterministic ``satiot-traces-v2`` archive
(:mod:`~satiot.streams.spill`), incremental checkpoint/resume state
(:mod:`~satiot.streams.checkpoint`), fold-over-shards KPI reducers
(:mod:`~satiot.streams.reducers`) and the deterministic NPZ writer all
archives share (:mod:`~satiot.streams.npzio`).  See ``docs/streams.md``
for the format spec and the resume byte-identity contract.
"""

from .checkpoint import (CHECKPOINT_FORMAT, campaign_fingerprint,
                         clear_checkpoint, load_checkpoint,
                         save_checkpoint)
from .npzio import (atomic_write_bytes, deterministic_npz_bytes,
                    sha256_bytes, sha256_file, write_deterministic_npz)
from .reducers import ExactSum, StreamingKpiReducer, reduce_blocks
from .spill import (DEFAULT_ROWS_PER_SHARD, SHARD_FORMAT, STREAM_FORMAT,
                    ShardedTraceReader, ShardSpillWriter,
                    TraceArchiveError, is_stream_archive,
                    read_stream_manifest)

__all__ = [
    "STREAM_FORMAT", "SHARD_FORMAT", "DEFAULT_ROWS_PER_SHARD",
    "CHECKPOINT_FORMAT",
    "ShardSpillWriter", "ShardedTraceReader", "TraceArchiveError",
    "is_stream_archive", "read_stream_manifest",
    "ExactSum", "StreamingKpiReducer", "reduce_blocks",
    "campaign_fingerprint", "save_checkpoint", "load_checkpoint",
    "clear_checkpoint",
    "write_deterministic_npz", "deterministic_npz_bytes",
    "atomic_write_bytes", "sha256_bytes", "sha256_file",
]
