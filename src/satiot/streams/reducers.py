"""Streaming KPI reducers: fold shard blocks, never the whole dataset.

The analysis layer's KPIs — availability (effective contact hours),
beacon loss, latency decomposition (gap statistics), energy/TCO — are
all computable from *bounded* per-pass state: a pass's first/last
reception time and its received-beacon count.  A months-long campaign
has millions of traces but only thousands of passes, so folding shards
through :class:`StreamingKpiReducer` keeps memory O(passes) while the
results match an in-RAM computation **exactly**, not approximately:

* per-pass min/max/count are partition-invariant by construction;
* RSSI sums use :class:`ExactSum`, an exact big-rational accumulator
  whose result is independent of how the rows were sharded — the final
  ``float`` is the correctly-rounded true sum, bit-identical to any
  other partitioning of the same rows (including one big block).

That exactness is what lets spilled runs and in-RAM runs share KPI
archives byte-for-byte (the acceptance contract of the streams plane).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.stats import interval_gaps, merge_intervals, total_length
from ..econ.comparison import tco_usd
from ..groundstation.traces import TraceColumns

__all__ = ["ExactSum", "StreamingKpiReducer", "reduce_blocks"]


def _exact_int_sum(values: np.ndarray) -> int:
    """Exact sum of int64 values with ``|v| < 2**53`` (no overflow).

    Chunks of 512 sum safely in int64 (``512 * 2**53 == 2**62``); the
    per-chunk partials are then added as arbitrary-precision Python
    ints.
    """
    if values.size == 0:
        return 0
    pad = (-values.size) % 512
    if pad:
        values = np.concatenate(
            [values, np.zeros(pad, dtype=np.int64)])
    partials = values.reshape(-1, 512).sum(axis=1, dtype=np.int64)
    return sum(int(p) for p in partials)


def _rounded(fraction: Fraction) -> float:
    """Correctly-rounded float64 of an exact rational.

    An exact total of finite float64 inputs can still exceed the
    float64 range (e.g. two near-max values); IEEE round-to-nearest
    maps such a value to ±inf, which is exactly when ``float()``
    raises OverflowError.
    """
    try:
        return float(fraction)
    except OverflowError:
        return math.inf if fraction > 0 else -math.inf


class ExactSum:
    """Exact streaming sum of float64 values.

    Every float64 is a rational ``m * 2**e``; the accumulator keeps the
    exact rational total (via integer mantissa sums grouped by
    exponent), so the order and blocking of :meth:`update` calls cannot
    change the result.  :meth:`value` rounds the true sum to the
    nearest float64 once, at the end — the same bits a single exact sum
    over the unpartitioned data would give.
    """

    __slots__ = ("_total", "count")

    def __init__(self) -> None:
        self._total = Fraction(0)
        self.count = 0

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        if not np.all(np.isfinite(values)):
            raise ValueError("ExactSum requires finite values")
        mantissa, exponent = np.frexp(values)
        # m in [0.5, 1) with <= 53 significand bits, so m * 2**53 is an
        # exactly-representable integer.
        m_int = np.ldexp(mantissa, 53).astype(np.int64)
        e_int = exponent.astype(np.int64) - 53
        for exp in np.unique(e_int):
            chunk = _exact_int_sum(m_int[e_int == exp])
            if chunk:
                self._total += Fraction(chunk) * Fraction(2) ** int(exp)
        self.count += int(values.size)

    def merge(self, other: "ExactSum") -> None:
        self._total += other._total
        self.count += other.count

    def value(self) -> float:
        """Correctly-rounded float64 of the exact total."""
        return _rounded(self._total)

    def mean(self) -> float:
        """Correctly-rounded float64 of the exact mean."""
        if not self.count:
            return float("nan")
        return _rounded(self._total / self.count)


# ----------------------------------------------------------------------
class _SubjectState:
    """Bounded per-(site, constellation) fold state."""

    __slots__ = ("passes", "rssi")

    def __init__(self) -> None:
        #: pass_id -> [first_rx_s, last_rx_s, received_count]
        self.passes: Dict[str, List] = {}
        self.rssi = ExactSum()

    def observe(self, pass_id: str, t_min: float, t_max: float,
                count: int, rssi_values: np.ndarray) -> None:
        entry = self.passes.get(pass_id)
        if entry is None:
            self.passes[pass_id] = [t_min, t_max, count]
        else:
            entry[0] = min(entry[0], t_min)
            entry[1] = max(entry[1], t_max)
            entry[2] += count
        self.rssi.update(rssi_values)


class StreamingKpiReducer:
    """Folds trace blocks into availability/loss/latency/TCO KPIs.

    Feed any partition of a campaign's rows — shards from a
    :class:`~satiot.streams.spill.ShardedTraceReader`, per-week blocks,
    or one consolidated block — through :meth:`update`; the state is a
    pure function of the row *set*, so :meth:`finalize` returns
    identical numbers for identical rows however they were blocked.
    """

    def __init__(self) -> None:
        self._subjects: Dict[Tuple[str, str], _SubjectState] = {}
        self.rows = 0

    # -- folding -------------------------------------------------------
    def update(self, block: TraceColumns) -> None:
        if block.n == 0:
            return
        self.rows += block.n
        site_col = block.string_column("site")
        const_col = block.string_column("constellation")
        pass_col = block.string_column("pass_id")
        for table in (site_col.table, const_col.table, pass_col.table):
            if len(table) >= (1 << 21):  # pragma: no cover - 2M entries
                raise ValueError("string table too large to key")
        key = (site_col.codes.astype(np.int64) << 42
               | const_col.codes.astype(np.int64) << 21
               | pass_col.codes.astype(np.int64))
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        bounds = np.nonzero(np.diff(sorted_key))[0] + 1
        starts = np.concatenate([[0], bounds])
        ends = np.concatenate([bounds, [key.size]])
        times = block.column("time_s")
        rssi = block.column("rssi_dbm")
        for start, end in zip(starts, ends):
            rows = order[start:end]
            first = int(rows[0])
            subject = (site_col.decode(first), const_col.decode(first))
            state = self._subjects.get(subject)
            if state is None:
                state = self._subjects[subject] = _SubjectState()
            group_times = times[rows]
            state.observe(pass_col.decode(first),
                          float(group_times.min()),
                          float(group_times.max()),
                          int(rows.size), rssi[rows])

    def merge(self, other: "StreamingKpiReducer") -> None:
        """Fold another reducer's state in (parallel partial folds)."""
        self.rows += other.rows
        for subject, theirs in other._subjects.items():
            state = self._subjects.get(subject)
            if state is None:
                state = self._subjects[subject] = _SubjectState()
            for pass_id, (t0, t1, count) in theirs.passes.items():
                entry = state.passes.get(pass_id)
                if entry is None:
                    state.passes[pass_id] = [t0, t1, count]
                else:
                    entry[0] = min(entry[0], t0)
                    entry[1] = max(entry[1], t1)
                    entry[2] += count
            state.rssi.merge(theirs.rssi)

    # -- results -------------------------------------------------------
    def subjects(self) -> List[Tuple[str, str]]:
        return sorted(self._subjects)

    def finalize(self, span_s: float,
                 sent: Optional[Dict[str, int]] = None,
                 tco_months: float = 12.0,
                 ) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """KPIs per (site, constellation) subject.

        ``sent`` maps lower-cased ``"{site}/{constellation}"`` to the
        number of beacons transmitted (carried in the archive's
        manifest meta); without it loss rates are reported as NaN.
        """
        if span_s <= 0:
            raise ValueError("span_s must be positive")
        results: Dict[Tuple[str, str], Dict[str, Any]] = {}
        span_days = span_s / 86400.0
        for subject in self.subjects():
            state = self._subjects[subject]
            received = sum(entry[2] for entry in state.passes.values())
            spans = [(entry[0], entry[1])
                     for entry in state.passes.values()]
            merged = merge_intervals(spans)
            gaps = interval_gaps(merged, 0.0, span_s)
            sent_count = None
            if sent is not None:
                sent_count = sent.get("/".join(subject).lower())
            packets_per_day = received / span_days
            tco = tco_usd(tco_months, packets_per_day=packets_per_day)
            results[subject] = {
                "traces": received,
                "passes": len(state.passes),
                "contacts": len(merged),
                "effective_daily_hours":
                    total_length(merged) / span_s * 24.0,
                "mean_rssi_dbm": state.rssi.mean(),
                "beacon_loss_rate": (
                    float("nan") if not sent_count
                    else 1.0 - received / sent_count),
                "max_gap_s": max(gaps) if gaps else float(span_s),
                "mean_gap_s": (sum(gaps) / len(gaps)
                               if gaps else float(span_s)),
                "packets_per_day": packets_per_day,
                "tco_satellite_usd": tco["satellite_usd"],
                "tco_terrestrial_usd": tco["terrestrial_usd"],
            }
        return results


def reduce_blocks(blocks, span_s: float,
                  sent: Optional[Dict[str, int]] = None,
                  ) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """One-shot fold: any iterable of blocks to finalized KPIs."""
    reducer = StreamingKpiReducer()
    for block in blocks:
        reducer.update(block)
    return reducer.finalize(span_s, sent=sent)
