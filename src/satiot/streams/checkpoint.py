"""Incremental checkpoint/resume state for spilled campaigns.

After every spilled week the campaign persists a small JSON checkpoint
next to the shard archive: which weeks are done, their accumulated
samples and loss counters, and the spill writer's state (shard
inventory + partial-shard buffer pointer).  A crash — including a
``SIGKILL`` between a shard landing on disk and the checkpoint
recording it — resumes from the last checkpoint and replays only the
missing weeks.

Two properties make resume byte-exact rather than merely approximate:

* every week is a pure function of ``(config, seed + week)`` — there is
  no RNG stream that crosses week boundaries, so "resume from week k"
  and "run week k" are the same computation;
* shard boundaries and shard bytes are pure functions of the row
  stream (:mod:`satiot.streams.spill`), so rewriting a
  crash-orphaned shard reproduces it bit-for-bit.

Floats round-trip exactly through JSON (``repr`` of a float64 is
value-exact), so checkpointed statistics equal their in-memory
originals to the last bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.contacts import ContactWindowStats
from ..core.longitudinal import WeeklySample
from .npzio import atomic_write_bytes

__all__ = ["CHECKPOINT_FORMAT", "CHECKPOINT_NAME", "campaign_fingerprint",
           "save_checkpoint", "load_checkpoint", "clear_checkpoint",
           "sample_to_state", "sample_from_state"]

CHECKPOINT_FORMAT = "satiot-streams-checkpoint-v1"
CHECKPOINT_NAME = "checkpoint.json"


def campaign_fingerprint(params: Dict[str, Any]) -> str:
    """Stable digest of the campaign parameters that define its output.

    A checkpoint (or completed archive) only resumes a run with the
    *same* fingerprint — changing any parameter that affects the trace
    stream invalidates prior state instead of silently mixing runs.
    """
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def sample_to_state(sample: WeeklySample) -> Dict[str, Any]:
    return asdict(sample)


def sample_from_state(state: Dict[str, Any]) -> WeeklySample:
    stats = {
        name: ContactWindowStats(**stat)
        for name, stat in state["stats_by_constellation"].items()}
    return WeeklySample(
        week=int(state["week"]),
        start_day_offset=float(state["start_day_offset"]),
        traces=int(state["traces"]),
        stats_by_constellation=stats)


def _checkpoint_path(root: Union[str, Path]) -> Path:
    return Path(root) / CHECKPOINT_NAME


def save_checkpoint(root: Union[str, Path],
                    state: Dict[str, Any]) -> None:
    """Atomically persist the campaign state under the spill root."""
    payload = dict(state)
    payload["format"] = CHECKPOINT_FORMAT
    atomic_write_bytes(
        _checkpoint_path(root),
        (json.dumps(payload, indent=2, sort_keys=True) + "\n"
         ).encode("utf-8"))


def load_checkpoint(root: Union[str, Path],
                    fingerprint: Optional[str] = None,
                    ) -> Optional[Dict[str, Any]]:
    """Load the checkpoint, or ``None`` when there is nothing to resume.

    A checkpoint whose fingerprint does not match ``fingerprint`` (when
    given) raises — resuming a differently-parameterised run would
    corrupt the archive silently, which is strictly worse than failing.
    """
    path = _checkpoint_path(root)
    if not path.is_file():
        return None
    try:
        state = json.loads(path.read_text())
    except ValueError as exc:
        raise ValueError(
            f"{path}: checkpoint is not valid JSON ({exc})") from exc
    if state.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"{path}: unsupported checkpoint format "
            f"{state.get('format')!r}")
    if fingerprint is not None and state.get("fingerprint") != fingerprint:
        raise ValueError(
            f"{path}: checkpoint fingerprint does not match this "
            f"campaign's parameters; refusing to resume a different "
            f"run (delete the spill directory to start over)")
    return state


def clear_checkpoint(root: Union[str, Path]) -> None:
    path = _checkpoint_path(root)
    if path.exists():
        path.unlink()
