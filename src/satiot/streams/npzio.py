"""Deterministic NPZ serialization shared by every archive writer.

``np.savez`` stamps each zip entry with the current local time, so two
identical runs minutes apart differ at the byte level.  The writers
here serialize each array with the standard ``.npy`` format but pin the
zip metadata (epoch date, fixed permissions, fixed entry order), making
archives a pure function of their payload while staying loadable with
plain :func:`np.load`.

This started life inside :mod:`satiot.scenarios.kpi` (the KPI store was
the first byte-reproducible archive); the sharded trace spill plane
(:mod:`satiot.streams.spill`) needs the identical writer, so it lives
here now and the KPI store imports it back.
"""

from __future__ import annotations

import hashlib
import io
import os
import zipfile
from pathlib import Path
from typing import Dict, Union

import numpy as np

__all__ = ["write_deterministic_npz", "deterministic_npz_bytes",
           "sha256_bytes", "sha256_file", "atomic_write_bytes"]


def deterministic_npz_bytes(payload: Dict[str, np.ndarray]) -> bytes:
    """Serialize ``payload`` to NPZ bytes that depend only on it.

    Entries are written in the payload's insertion order with pinned
    zip metadata (DOS epoch timestamp, 0644 permissions, deflate), so
    equal payloads produce equal bytes in every process and on every
    run.
    """
    sink = io.BytesIO()
    with zipfile.ZipFile(sink, "w", zipfile.ZIP_DEFLATED) as zf:
        for name in payload:
            buffer = io.BytesIO()
            np.lib.format.write_array(
                buffer, np.asanyarray(payload[name]),
                allow_pickle=False)
            info = zipfile.ZipInfo(name + ".npy",
                                   date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_DEFLATED
            info.external_attr = 0o644 << 16
            zf.writestr(info, buffer.getvalue())
    return sink.getvalue()


def write_deterministic_npz(path: Union[str, Path],
                            payload: Dict[str, np.ndarray]) -> None:
    """Write an NPZ whose bytes depend only on the payload."""
    Path(path).write_bytes(deterministic_npz_bytes(payload))


def sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: Union[str, Path]) -> str:
    digest = hashlib.sha256()
    with Path(path).open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Crash-safe write: temp file in the same directory + ``os.replace``.

    A reader never observes a half-written file — it sees either the
    old content or the new one, which is what lets a killed spill run
    resume from whatever shards made it to disk.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
