"""Sharded ``satiot-traces-v2`` spill archives.

The v1 trace archive (:meth:`TraceDataset.to_npz`) is one NPZ holding
the whole campaign — fine for a day, hopeless for the paper's
seven-month longitudinal span.  The v2 layout spreads the same columnar
payload over fixed-size shards plus a manifest::

    <root>/manifest.json            # inventory, schema, fingerprints
    <root>/shards/shard-000000.npz  # rows [0, rows_per_shard)
    <root>/shards/shard-000001.npz  # rows [rows_per_shard, ...)
    ...

Determinism contract
--------------------
Shard boundaries are a pure function of the row stream and
``rows_per_shard`` (never of how the producer blocked its writes), each
shard's string tables are re-interned canonically over *that shard's*
rows, and shards are serialized with the deterministic zip writer — so
equal runs spill byte-identically, shard files and manifest included.
That is what lets a killed-and-resumed campaign prove itself against an
uninterrupted one with ``cmp``.

Durability
----------
Every file lands via write-to-temp + ``os.replace``, and each shard is
read back and checksum-verified before it enters the inventory.  The
``stream.shard_write`` fault site injects a torn write exactly there;
the verification catches it and rewrites, absorbing the fault without a
byte of output difference.
"""

from __future__ import annotations

import json
import os
import signal
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import numpy as np

from ..faults import fault_fires
from ..groundstation.traces import (NUMERIC_FIELDS, STRING_FIELDS,
                                    TRACE_FIELD_KINDS, StringColumn,
                                    TraceColumns, TraceDataset)
from .npzio import (atomic_write_bytes, deterministic_npz_bytes,
                    sha256_bytes, sha256_file)

__all__ = ["STREAM_FORMAT", "SHARD_FORMAT", "DEFAULT_ROWS_PER_SHARD",
           "TraceArchiveError", "ShardSpillWriter", "ShardedTraceReader",
           "is_stream_archive", "read_stream_manifest"]

STREAM_FORMAT = "satiot-traces-v2"
SHARD_FORMAT = "satiot-traces-v2-shard"
PENDING_FORMAT = "satiot-traces-v2-pending"

MANIFEST_NAME = "manifest.json"
PENDING_NAME = "pending.npz"
SHARD_DIR = "shards"

DEFAULT_ROWS_PER_SHARD = 100_000

#: Fault-plane site consulted on every shard write (torn-write
#: injection; absorbed by readback verification + rewrite).
SHARD_WRITE_SITE = "stream.shard_write"

#: Chaos hook: SIGKILL this process right after the N-th shard file
#: lands on disk — *before* any checkpoint records it — so resume tests
#: cover the worst crash window.
KILL_AFTER_SHARD_ENV = "SATIOT_STREAMS_KILL_AFTER_SHARD"


class TraceArchiveError(ValueError):
    """A sharded trace archive is missing, truncated or corrupt."""


def _maybe_kill_after_shard(shards_written: int) -> None:
    raw = os.environ.get(KILL_AFTER_SHARD_ENV, "").strip()
    if raw and shards_written >= int(raw):
        os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# Column block <-> NPZ payload
# ----------------------------------------------------------------------
def _block_payload(block: TraceColumns, magic: str,
                   index: int) -> Dict[str, np.ndarray]:
    payload: Dict[str, np.ndarray] = {
        "__format__": np.asarray([magic]),
        "__shard__": np.asarray([index], dtype=np.int64),
        "__n__": np.asarray([block.n], dtype=np.int64),
    }
    for name in NUMERIC_FIELDS:
        payload[name] = block.column(name)
    for name in STRING_FIELDS:
        col = block.string_column(name)
        payload[f"{name}__codes"] = col.codes
        payload[f"{name}__table"] = (
            np.asarray(col.table) if col.table
            else np.empty(0, dtype="<U1"))
    return payload


def _block_from_archive(archive, path: Path, magic: str) -> TraceColumns:
    stored = str(archive["__format__"][0])
    if stored != magic:
        raise TraceArchiveError(
            f"{path}: expected {magic!r}, found {stored!r}")
    n = int(archive["__n__"][0])
    numeric = {
        name: np.ascontiguousarray(archive[name])
        for name in NUMERIC_FIELDS}
    strings = {
        name: StringColumn(
            archive[f"{name}__codes"],
            [str(s) for s in archive[f"{name}__table"]],
            canonical=True)
        for name in STRING_FIELDS}
    for name, column in numeric.items():
        if column.shape != (n,):
            raise TraceArchiveError(
                f"{path}: column {name!r} has {column.shape[0]} rows, "
                f"header says {n}")
    return TraceColumns(numeric, strings, n)


def _load_shard_block(path: Path, magic: str) -> TraceColumns:
    """Read one shard NPZ, mapping every failure mode to a clear error."""
    import zipfile
    try:
        with np.load(path, allow_pickle=False) as archive:
            return _block_from_archive(archive, path, magic)
    except TraceArchiveError:
        raise
    except FileNotFoundError:
        raise TraceArchiveError(f"{path}: shard file is missing")
    except (zipfile.BadZipFile, EOFError, OSError, KeyError,
            ValueError) as exc:
        raise TraceArchiveError(
            f"{path}: shard is truncated or corrupt "
            f"({type(exc).__name__}: {exc})") from exc


def _table_fingerprints(block: TraceColumns) -> Dict[str, str]:
    """Per-field sha256 of the canonical string tables (manifest)."""
    out = {}
    for name in STRING_FIELDS:
        table = block.string_column(name).table
        out[name] = sha256_bytes("\x00".join(table).encode("utf-8"))
    return out


# ----------------------------------------------------------------------
def is_stream_archive(root: Union[str, Path]) -> bool:
    """True when ``root`` holds a ``satiot-traces-v2`` manifest."""
    manifest = Path(root) / MANIFEST_NAME
    if not manifest.is_file():
        return False
    try:
        return json.loads(
            manifest.read_text()).get("format") == STREAM_FORMAT
    except (OSError, ValueError):
        return False


def read_stream_manifest(root: Union[str, Path]) -> Dict[str, Any]:
    """O(1) manifest read — never opens a shard file."""
    path = Path(root) / MANIFEST_NAME
    if not path.is_file():
        raise TraceArchiveError(f"no {MANIFEST_NAME} under {root}")
    try:
        manifest = json.loads(path.read_text())
    except ValueError as exc:
        raise TraceArchiveError(
            f"{path}: manifest is not valid JSON ({exc})") from exc
    if manifest.get("format") != STREAM_FORMAT:
        raise TraceArchiveError(
            f"{path}: unsupported archive format "
            f"{manifest.get('format')!r}")
    for key in ("rows_per_shard", "total_rows", "shards", "schema"):
        if key not in manifest:
            raise TraceArchiveError(f"{path}: manifest lacks {key!r}")
    return manifest


# ----------------------------------------------------------------------
class ShardSpillWriter:
    """Streams column blocks to disk as fixed-size deterministic shards.

    Feed it :class:`TraceColumns` blocks of any size via :meth:`write`;
    whenever ``rows_per_shard`` rows are buffered it cuts a shard —
    boundaries depend only on the cumulative row stream, so producers
    are free to block their output however they like.  :meth:`finalize`
    flushes the remainder as a final short shard and writes the
    manifest.

    The writer is checkpointable: :meth:`snapshot_state` persists the
    partial-shard buffer (``pending.npz``) and returns a JSON-able
    state; :meth:`resume` reconstructs an equivalent writer, verifying
    every inventoried shard on disk — the resumed run spills the exact
    bytes the uninterrupted one would have.
    """

    def __init__(self, root: Union[str, Path],
                 rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
                 fingerprint: str = "") -> None:
        if rows_per_shard <= 0:
            raise ValueError("rows_per_shard must be positive")
        self.root = Path(root)
        self.rows_per_shard = int(rows_per_shard)
        self.fingerprint = str(fingerprint)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / SHARD_DIR).mkdir(exist_ok=True)
        self._buffer: List[TraceColumns] = []
        self._buffered = 0
        self._shards: List[Dict[str, Any]] = []
        self.rows_spilled = 0
        self.bytes_spilled = 0
        #: Torn writes detected and absorbed by readback verification.
        self.rewrites = 0
        self._finalized = False

    # -- properties ----------------------------------------------------
    @property
    def shards_written(self) -> int:
        return len(self._shards)

    @property
    def total_rows(self) -> int:
        return self.rows_spilled + self._buffered

    # -- streaming input -----------------------------------------------
    def write(self, block: TraceColumns) -> None:
        if self._finalized:
            raise RuntimeError("writer is finalized")
        if block.n == 0:
            return
        self._buffer.append(block)
        self._buffered += block.n
        while self._buffered >= self.rows_per_shard:
            self._cut_shard(self.rows_per_shard)

    def write_dataset(self, dataset: TraceDataset) -> None:
        for block in dataset.blocks():
            self.write(block)

    # -- shard cutting -------------------------------------------------
    def _cut_shard(self, rows: int) -> None:
        parts: List[TraceColumns] = []
        need = rows
        while need > 0:
            head = self._buffer[0]
            if head.n <= need:
                parts.append(self._buffer.pop(0))
                need -= head.n
            else:
                parts.append(head.slice(slice(0, need)))
                self._buffer[0] = head.slice(slice(need, head.n))
                need = 0
        self._buffered -= rows
        # Canonical re-interning makes the shard's bytes a pure
        # function of its rows, independent of producer blocking.
        block = TraceColumns.concat(parts).canonicalized()
        self._write_shard(block)

    def _write_shard(self, block: TraceColumns) -> None:
        index = len(self._shards)
        name = f"{SHARD_DIR}/shard-{index:06d}.npz"
        data = deterministic_npz_bytes(
            _block_payload(block, SHARD_FORMAT, index))
        digest = sha256_bytes(data)
        self._durable_write(self.root / name, data, digest)
        self._shards.append({
            "name": name,
            "rows": block.n,
            "sha256": digest,
            "string_tables": _table_fingerprints(block),
        })
        self.rows_spilled += block.n
        self.bytes_spilled += len(data)
        _maybe_kill_after_shard(len(self._shards))

    def _durable_write(self, path: Path, data: bytes,
                       digest: str) -> None:
        """Write + verify; a torn write is detected and rewritten."""
        to_write = data
        if fault_fires(SHARD_WRITE_SITE):
            to_write = data[:len(data) // 2]  # injected torn write
        atomic_write_bytes(path, to_write)
        if sha256_file(path) == digest:
            return
        self.rewrites += 1
        atomic_write_bytes(path, data)
        if sha256_file(path) != digest:
            raise OSError(
                f"shard write verification failed twice for {path}")

    # -- checkpointing -------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Persist the partial-shard buffer; return JSON-able state."""
        pending_path = self.root / PENDING_NAME
        pending: Optional[Dict[str, Any]] = None
        if self._buffered:
            block = TraceColumns.concat(
                list(self._buffer)).canonicalized()
            data = deterministic_npz_bytes(
                _block_payload(block, PENDING_FORMAT, -1))
            atomic_write_bytes(pending_path, data)
            pending = {"rows": block.n, "sha256": sha256_bytes(data)}
        elif pending_path.exists():
            pending_path.unlink()
        return {
            "format": STREAM_FORMAT,
            "rows_per_shard": self.rows_per_shard,
            "fingerprint": self.fingerprint,
            "shards": list(self._shards),
            "rows_spilled": self.rows_spilled,
            "bytes_spilled": self.bytes_spilled,
            "pending": pending,
        }

    @classmethod
    def resume(cls, root: Union[str, Path],
               state: Dict[str, Any]) -> "ShardSpillWriter":
        """Rebuild a writer from :meth:`snapshot_state` output.

        Inventoried shards are checksum-verified, stray shard files
        beyond the inventory (a crash landed them after the last
        checkpoint) are pruned — the resumed stream rewrites them
        byte-identically — and the pending buffer is restored
        value-exact from ``pending.npz``.
        """
        if state.get("format") != STREAM_FORMAT:
            raise TraceArchiveError(
                f"checkpoint format {state.get('format')!r} is not "
                f"{STREAM_FORMAT!r}")
        writer = cls(root, rows_per_shard=int(state["rows_per_shard"]),
                     fingerprint=str(state.get("fingerprint", "")))
        for entry in state["shards"]:
            path = writer.root / entry["name"]
            if not path.is_file():
                raise TraceArchiveError(
                    f"{path}: checkpointed shard is missing")
            if sha256_file(path) != entry["sha256"]:
                raise TraceArchiveError(
                    f"{path}: checkpointed shard fails its checksum")
        writer._shards = [dict(entry) for entry in state["shards"]]
        writer.rows_spilled = int(state["rows_spilled"])
        writer.bytes_spilled = int(state["bytes_spilled"])
        known = {entry["name"] for entry in writer._shards}
        for stray in sorted((writer.root / SHARD_DIR).glob("shard-*.npz")):
            if f"{SHARD_DIR}/{stray.name}" not in known:
                stray.unlink()
        pending = state.get("pending")
        if pending:
            pending_path = writer.root / PENDING_NAME
            if not pending_path.is_file():
                raise TraceArchiveError(
                    f"{pending_path}: checkpointed pending buffer is "
                    f"missing")
            if sha256_file(pending_path) != pending["sha256"]:
                raise TraceArchiveError(
                    f"{pending_path}: pending buffer fails its checksum")
            block = _load_shard_block(pending_path, PENDING_FORMAT)
            writer._buffer = [block]
            writer._buffered = block.n
        return writer

    # -- completion ----------------------------------------------------
    def finalize(self, meta: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
        """Flush the remainder, write the manifest, return it."""
        if self._finalized:
            raise RuntimeError("writer is already finalized")
        if self._buffered:
            self._cut_shard(self._buffered)
        manifest = {
            "format": STREAM_FORMAT,
            "rows_per_shard": self.rows_per_shard,
            "total_rows": self.rows_spilled,
            "schema": dict(TRACE_FIELD_KINDS),
            "fingerprint": self.fingerprint,
            "shards": self._shards,
            "meta": meta or {},
        }
        atomic_write_bytes(
            self.root / MANIFEST_NAME,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n"
             ).encode("utf-8"))
        pending_path = self.root / PENDING_NAME
        if pending_path.exists():
            pending_path.unlink()
        self._finalized = True
        return manifest


# ----------------------------------------------------------------------
class ShardedTraceReader:
    """Reads a v2 archive shard-by-shard; O(1) until blocks are pulled.

    Construction reads only the manifest.  :meth:`iter_blocks` streams
    one :class:`TraceColumns` per shard (checksum-verified by default),
    :meth:`load` materialises the whole dataset (small archives /
    tests), :meth:`verify` walks every shard without keeping any.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.manifest = read_stream_manifest(self.root)

    # -- O(1) views ----------------------------------------------------
    @property
    def total_rows(self) -> int:
        return int(self.manifest["total_rows"])

    @property
    def shard_count(self) -> int:
        return len(self.manifest["shards"])

    @property
    def meta(self) -> Dict[str, Any]:
        return self.manifest.get("meta", {})

    # -- streaming reads -----------------------------------------------
    def iter_blocks(self, verify: bool = True,
                    ) -> Iterator[TraceColumns]:
        for entry in self.manifest["shards"]:
            path = self.root / entry["name"]
            if verify:
                if not path.is_file():
                    raise TraceArchiveError(
                        f"{path}: shard file is missing")
                if sha256_file(path) != entry["sha256"]:
                    raise TraceArchiveError(
                        f"{path}: shard is truncated or corrupt "
                        f"(checksum mismatch)")
            block = _load_shard_block(path, SHARD_FORMAT)
            if block.n != int(entry["rows"]):
                raise TraceArchiveError(
                    f"{path}: manifest says {entry['rows']} rows, "
                    f"shard has {block.n}")
            yield block

    def verify(self) -> int:
        """Checksum + header check of every shard; returns row total."""
        rows = 0
        for block in self.iter_blocks(verify=True):
            rows += block.n
        if rows != self.total_rows:
            raise TraceArchiveError(
                f"{self.root}: manifest says {self.total_rows} rows, "
                f"shards hold {rows}")
        return rows

    def load(self, verify: bool = True) -> TraceDataset:
        """Materialise the archive (defeats streaming; small runs only)."""
        dataset = TraceDataset()
        for block in self.iter_blocks(verify=verify):
            dataset.extend(block)
        return dataset
