"""Columnar KPI result store (``satiot-kpis-v1``).

Every scenario cell reduces to a list of KPI rows
``(cell, params, kpi, subject, value)``; the store keeps them as five
parallel columns — strings interned exactly like the trace data plane's
:class:`~satiot.groundstation.traces.StringColumn` — and archives them
as an NPZ whose bytes are a pure function of the rows: entries are
written through :func:`write_deterministic_npz`, which pins the zip
timestamps and permissions, so *same spec + same seed → byte-identical
store*, regardless of worker count or wall-clock time.  That is the
property ``satiot scenario diff`` builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..groundstation.traces import StringColumn
# Re-exported for backwards compatibility: the deterministic writer
# moved to satiot.streams.npzio so the sharded trace spill plane can
# share it; historical imports from this module keep working.
from ..streams.npzio import write_deterministic_npz

__all__ = ["KPI_FORMAT", "KpiRow", "KpiStore", "KpiDelta", "KpiDiff",
           "diff_stores", "write_deterministic_npz"]

KPI_FORMAT = "satiot-kpis-v1"

_STRING_COLUMNS = ("cell", "params", "kpi", "subject")


@dataclass(frozen=True)
class KpiRow:
    """One extracted KPI value.

    ``subject`` scopes the KPI inside its cell (``"Tianqi@HK"``, a node
    id, ``"SF10"``, …; empty for cell-level KPIs); ``params`` is the
    canonical JSON of the cell's sweep parameters.
    """

    cell: str
    params: str
    kpi: str
    subject: str
    value: float

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.cell, self.kpi, self.subject)


# ----------------------------------------------------------------------
class KpiStore:
    """Columnar store of KPI rows with an order-preserving layout.

    Row order is the deterministic matrix order the orchestrator
    produced them in; equality, archives and diffs all honour it.
    """

    def __init__(self, rows: Optional[Sequence[KpiRow]] = None) -> None:
        self._rows: List[KpiRow] = list(rows or [])

    # ------------------------------------------------------------------
    def append(self, row: KpiRow) -> None:
        self._rows.append(row)

    def extend(self, rows: Sequence[KpiRow]) -> None:
        self._rows.extend(rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[KpiRow]:
        return iter(self._rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, KpiStore):
            return NotImplemented
        return self._rows == other._rows

    def __repr__(self) -> str:
        return (f"KpiStore({len(self._rows)} rows, "
                f"{len(self.cells())} cells)")

    # ------------------------------------------------------------------
    def cells(self) -> List[str]:
        """Cell ids in first-appearance (matrix) order."""
        seen: Dict[str, None] = {}
        for row in self._rows:
            seen.setdefault(row.cell, None)
        return list(seen)

    def kpis(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self._rows:
            seen.setdefault(row.kpi, None)
        return list(seen)

    def value(self, cell: str, kpi: str, subject: str = "") -> float:
        """The value of one KPI; raises ``KeyError`` naming the miss."""
        for row in self._rows:
            if row.cell == cell and row.kpi == kpi \
                    and row.subject == subject:
                return row.value
        raise KeyError(f"no KPI {kpi!r} for cell {cell!r} "
                       f"subject {subject!r}")

    def subject_values(self, kpi: str, cell: Optional[str] = None,
                       ) -> Dict[str, float]:
        """``{subject: value}`` of one KPI (optionally one cell)."""
        out: Dict[str, float] = {}
        for row in self._rows:
            if row.kpi == kpi and (cell is None or row.cell == cell):
                out[row.subject] = row.value
        return out

    def cell_values(self, kpi: str, subject: str = "",
                    ) -> Dict[str, float]:
        """``{cell: value}`` of one KPI across the matrix."""
        out: Dict[str, float] = {}
        for row in self._rows:
            if row.kpi == kpi and row.subject == subject:
                out[row.cell] = row.value
        return out

    def by_key(self) -> Dict[Tuple[str, str, str], float]:
        return {row.key: row.value for row in self._rows}

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Archive as a byte-reproducible NPZ (see module docstring)."""
        payload: Dict[str, np.ndarray] = {
            "__format__": np.asarray([KPI_FORMAT]),
            "__n__": np.asarray([len(self._rows)], dtype=np.int64),
        }
        for name in _STRING_COLUMNS:
            column = StringColumn.from_values(
                getattr(row, name) for row in self._rows)
            payload[f"{name}__codes"] = column.codes
            payload[f"{name}__table"] = (
                np.asarray(column.table) if column.table
                else np.empty(0, dtype="<U1"))
        payload["value"] = np.asarray(
            [row.value for row in self._rows], dtype=np.float64)
        write_deterministic_npz(path, payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "KpiStore":
        with np.load(Path(path), allow_pickle=False) as archive:
            magic = str(archive["__format__"][0])
            if magic != KPI_FORMAT:
                raise ValueError(
                    f"unsupported KPI archive format {magic!r}")
            n = int(archive["__n__"][0])
            strings = {}
            for name in _STRING_COLUMNS:
                codes = archive[f"{name}__codes"]
                table = [str(s) for s in archive[f"{name}__table"]]
                strings[name] = [table[c] for c in codes]
            values = archive["value"]
            if not (len(values) == n
                    and all(len(strings[s]) == n for s in strings)):
                raise ValueError("KPI archive column lengths disagree")
        rows = [KpiRow(cell=strings["cell"][i],
                       params=strings["params"][i],
                       kpi=strings["kpi"][i],
                       subject=strings["subject"][i],
                       value=float(values[i]))
                for i in range(n)]
        return cls(rows)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KpiDelta:
    """One changed KPI between two runs."""

    cell: str
    kpi: str
    subject: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a


@dataclass
class KpiDiff:
    """Structured result of comparing two KPI stores."""

    changed: List[KpiDelta] = field(default_factory=list)
    only_a: List[Tuple[str, str, str]] = field(default_factory=list)
    only_b: List[Tuple[str, str, str]] = field(default_factory=list)
    compared: int = 0

    @property
    def identical(self) -> bool:
        return not (self.changed or self.only_a or self.only_b)

    @property
    def total_deltas(self) -> int:
        return len(self.changed) + len(self.only_a) + len(self.only_b)


def diff_stores(a: KpiStore, b: KpiStore,
                rtol: float = 0.0, atol: float = 0.0) -> KpiDiff:
    """Compare two stores key-by-key.

    With the default zero tolerances a value matches only when it is
    bit-equal (NaN matches NaN, so an identical run diffs clean).
    """
    keys_a = a.by_key()
    keys_b = b.by_key()
    diff = KpiDiff()
    for key in keys_a:
        if key not in keys_b:
            diff.only_a.append(key)
    for key in keys_b:
        if key not in keys_a:
            diff.only_b.append(key)
    for key, va in keys_a.items():
        if key not in keys_b:
            continue
        diff.compared += 1
        vb = keys_b[key]
        if np.isnan(va) and np.isnan(vb):
            continue
        if rtol == 0.0 and atol == 0.0:
            same = va == vb
        else:
            same = bool(np.isclose(va, vb, rtol=rtol, atol=atol,
                                   equal_nan=True))
        if not same:
            cell, kpi, subject = key
            diff.changed.append(KpiDelta(cell=cell, kpi=kpi,
                                         subject=subject, a=va, b=vb))
    return diff
