"""Scenario matrix execution and KPI extraction.

The orchestrator expands a scenario into its cell matrix, runs every
cell through :class:`~satiot.runtime.ShardExecutor` (cells are the unit
of parallelism; campaigns inside a cell run serially so a cell is a
pure function of its spec), extracts KPIs into one
:class:`~satiot.scenarios.kpi.KpiStore`, and writes a run directory::

    <out>/manifest.json   # spec, seed, git revision, fingerprints
    <out>/kpis.npz        # byte-reproducible columnar KPI store

Because each cell is pure and the store is written deterministically,
the same spec and seed produce a byte-identical ``kpis.npz`` whatever
the worker count — ``satiot scenario diff`` of two such runs reports
zero deltas.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import __version__
from ..core.campaign import (DEFAULT_CACHE, PassiveCampaign,
                             _cache_spec_for_worker, _resolve_cache)
from ..runtime.executor import Shard, ShardExecutor
from ..runtime.telemetry import (CampaignTelemetry, ShardTelemetry,
                                 render_fixed_table)
from .compiler import (CompiledCell, build_cell_constellations,
                       compile_cells)
from .kpi import KpiDiff, KpiRow, KpiStore, diff_stores
from .spec import (ScenarioError, ScenarioSpec, canonical_json,
                   parse_scenario, scenario_fingerprint)

__all__ = ["RUN_FORMAT", "ScenarioRun", "run_scenario",
           "smoke_document", "load_run", "diff_runs",
           "render_diff_report", "render_grid", "render_kpi_table"]

RUN_FORMAT = "satiot-scenario-run-v1"

MANIFEST_NAME = "manifest.json"
STORE_NAME = "kpis.npz"


# ----------------------------------------------------------------------
@dataclass
class ScenarioRun:
    """Everything one scenario execution produced."""

    spec: ScenarioSpec
    cells: List[CompiledCell]
    store: KpiStore
    manifest: Dict[str, Any]
    telemetry: Optional[CampaignTelemetry] = None

    @property
    def cell_ids(self) -> List[str]:
        return [cell.cell_id for cell in self.cells]

    def cell_params(self, cell_id: str) -> Dict[str, Any]:
        for cell in self.cells:
            if cell.cell_id == cell_id:
                return dict(cell.sweep_params)
        raise KeyError(f"no cell {cell_id!r}")

    def save(self, out_dir: Union[str, Path]) -> Path:
        """Write ``manifest.json`` + ``kpis.npz`` under ``out_dir``."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / MANIFEST_NAME).write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True) + "\n")
        self.store.save(out / STORE_NAME)
        return out


# ----------------------------------------------------------------------
# Cell execution (module level: shard workers must pickle).
# ----------------------------------------------------------------------
def _params_json(cell: CompiledCell) -> str:
    return canonical_json(cell.sweep_params)


def _rows(cell: CompiledCell,
          triples: Sequence[Tuple[str, str, float]]) -> List[KpiRow]:
    params = _params_json(cell)
    return [KpiRow(cell=cell.cell_id, params=params, kpi=kpi,
                   subject=subject, value=float(value))
            for kpi, subject, value in triples]


def _run_passive_cell(cell: CompiledCell, cache,
                      ) -> Tuple[List[KpiRow], Dict[str, str]]:
    from ..core.contacts import analyze_contacts
    result = PassiveCampaign(cell.config, workers=1,
                             ephemeris_cache=cache).run()
    triples: List[Tuple[str, str, float]] = []
    fingerprints = _fleet_fingerprints(result.constellations)
    for name in sorted(result.constellations):
        display = result.constellations[name].name
        for site in cell.config.sites:
            receptions = result.receptions(site, name)
            stats = analyze_contacts(receptions, result.duration_s)
            subject = f"{display}@{site}"
            sent = sum(r.beacons_sent for r in receptions)
            received = sum(r.beacons_received for r in receptions)
            triples += [
                ("theoretical_daily_hours", subject,
                 stats.theoretical_daily_hours),
                ("effective_daily_hours", subject,
                 stats.effective_daily_hours),
                ("duration_shrinkage", subject,
                 stats.duration_shrinkage),
                ("mean_duration_shrinkage", subject,
                 stats.mean_duration_shrinkage),
                ("interval_inflation", subject,
                 stats.interval_inflation),
                ("contacts", subject,
                 len(stats.theoretical_durations_s)),
                ("beacons_sent", subject, sent),
                ("beacons_received", subject, received),
                ("beacon_loss_rate", subject,
                 1.0 - received / sent if sent else float("nan")),
            ]
    for site in cell.config.sites:
        triples.append(("traces", site,
                        result.site_results[site].trace_count))
    triples.append(("total_traces", "", result.total_traces))
    return _rows(cell, triples), fingerprints


def _fleet_fingerprints(constellations) -> Dict[str, str]:
    from ..runtime.ephemeris_cache import constellation_fingerprint
    out = {}
    for constellation in constellations.values():
        out[constellation.name] = constellation_fingerprint(
            [sat.tle for sat in constellation])
    return out


#: Per-process memo of active-campaign ground segments; building one is
#: deterministic, so sharing it across sweep cells is purely a speedup
#: and never changes results.
_SEGMENT_MEMO: Dict[Tuple[int, float], Any] = {}


def _shared_segment(seed: int, duration_s: float):
    from ..constellations.catalog import build_constellation
    from ..network.store_forward import (TIANQI_GROUND_STATIONS,
                                         GroundSegment)
    key = (seed, duration_s)
    if key not in _SEGMENT_MEMO:
        constellation = build_constellation("tianqi", seed=seed)
        epoch = constellation.satellites[0].tle.epoch
        _SEGMENT_MEMO[key] = GroundSegment(
            constellation, epoch, duration_s, TIANQI_GROUND_STATIONS)
    return _SEGMENT_MEMO[key]


def _run_active_cell(cell: CompiledCell,
                     ) -> Tuple[List[KpiRow], Dict[str, str]]:
    from ..core.active import ActiveCampaign
    from ..core.energy_analysis import compare_energy
    from ..core.performance import compare_systems
    from ..econ.comparison import tco_crossover_months, tco_usd
    from ..network.server import (latency_decomposition_minutes,
                                  reliability_report)
    config = cell.config
    segment = _shared_segment(config.seed, config.duration_s)
    result = ActiveCampaign(config, ground_segment=segment).run()
    records = result.all_satellite_records()
    report = reliability_report(records)
    latency = latency_decomposition_minutes(records)
    comparison = compare_systems(records,
                                 result.all_terrestrial_records())
    attempts = sum(len(r.attempts) for r in records)
    triples: List[Tuple[str, str, float]] = [
        ("reliability", "", report.reliability),
        ("generated", "", report.generated),
        ("delivered", "", report.delivered),
        ("reached_satellite", "", report.reached_satellite),
        ("abandoned", "", report.abandoned),
        ("tx_attempts_per_packet", "",
         attempts / max(report.generated, 1)),
        ("terrestrial_reliability", "",
         comparison.terrestrial_reliability),
        ("satellite_latency_min", "",
         comparison.satellite_latency_min),
        ("terrestrial_latency_min", "",
         comparison.terrestrial_latency_min),
        ("latency_ratio", "", comparison.latency_ratio),
    ]
    triples += [(f"{segment_name}", "", value)
                for segment_name, value in latency.items()]
    if result.tianqi_energy and result.terrestrial_energy:
        energy = compare_energy(
            next(iter(result.tianqi_energy.values())),
            next(iter(result.terrestrial_energy.values())))
        triples += [
            ("tianqi_avg_power_mw", "", energy.tianqi_avg_power_mw),
            ("terrestrial_avg_power_mw", "",
             energy.terrestrial_avg_power_mw),
            ("tianqi_battery_days", "", energy.tianqi_battery_days),
            ("terrestrial_battery_days", "",
             energy.terrestrial_battery_days),
            ("battery_drain_ratio", "", energy.drain_ratio),
        ]
    packets_per_day = 86400.0 / config.reading_interval_s
    # Cost KPIs priced under the cell's provider (spec key
    # traffic.provider, registry-validated at compile time; the
    # default "tianqi" resolves to the identical TIANQI_COSTS object,
    # so existing specs keep byte-identical KPI rows).
    provider = (cell.params or {}).get("provider") or "tianqi"
    tco = tco_usd(12.0, config.node_count, packets_per_day,
                  config.payload_bytes, satellite=provider)
    flips, crossover = tco_crossover_months(
        config.node_count, packets_per_day, config.payload_bytes,
        satellite=provider)
    triples += [
        ("tco_12mo_satellite_usd", "", tco["satellite_usd"]),
        ("tco_12mo_terrestrial_usd", "", tco["terrestrial_usd"]),
        ("tco_crossover_months", "",
         crossover if flips else float("inf")),
    ]
    fingerprints = _fleet_fingerprints(
        {"tianqi": result.constellation})
    return _rows(cell, triples), fingerprints


def _stream_triples(result) -> List[Tuple[str, str, float]]:
    """Extra KPI rows computed by folding the spilled archive.

    These never materialise the dataset: the reducers stream shard
    blocks and keep O(passes) state.  Spilled cells therefore emit the
    *same* standard rows as in-RAM cells plus this ``stream_*`` family,
    so resumed and uninterrupted spill runs stay byte-identical while
    spill vs no-spill differs only by the extra rows.
    """
    from ..streams.reducers import StreamingKpiReducer
    from ..streams.spill import ShardedTraceReader
    reader = ShardedTraceReader(result.archive_dir)
    meta = reader.meta
    reducer = StreamingKpiReducer()
    for block in reader.iter_blocks():
        reducer.update(block)
    sent = {key: int(value)
            for key, value in meta.get("sent", {}).items()}
    kpis = reducer.finalize(float(meta["span_s"]), sent=sent)
    triples: List[Tuple[str, str, float]] = [
        ("stream_shards", "", reader.shard_count),
        ("stream_rows", "", reader.total_rows),
    ]
    for (site, constellation), values in sorted(kpis.items()):
        subject = f"{constellation}@{site}"
        for kpi in ("effective_daily_hours", "contacts",
                    "mean_rssi_dbm", "beacon_loss_rate", "max_gap_s",
                    "packets_per_day", "tco_satellite_usd",
                    "tco_terrestrial_usd"):
            triples.append((f"stream_{kpi}", subject, values[kpi]))
    return triples


def _run_longitudinal_cell(cell: CompiledCell, spill=None,
                           ) -> Tuple[List[KpiRow], Dict[str, str]]:
    from ..core.longitudinal import LongitudinalCampaign
    kwargs = dict(cell.kwargs)
    if spill is not None:
        root, rows_per_shard, resume = spill
        kwargs.update(spill_dir=Path(root) / cell.cell_id,
                      rows_per_shard=rows_per_shard, resume=resume)
    campaign = LongitudinalCampaign(workers=1, **kwargs)
    result = campaign.run()
    triples: List[Tuple[str, str, float]] = []
    for sample in result.samples:
        triples.append(("traces", f"week{sample.week}", sample.traces))
        for name in cell.kwargs["constellations"]:
            stats = sample.stats_by_constellation[name]
            subject = f"{name}@week{sample.week}"
            triples += [
                ("theoretical_daily_hours", subject,
                 stats.theoretical_daily_hours),
                ("effective_daily_hours", subject,
                 stats.effective_daily_hours),
                ("duration_shrinkage", subject,
                 stats.duration_shrinkage),
            ]
    for name in cell.kwargs["constellations"]:
        triples.append(("shrinkage_stability", name,
                        result.shrinkage_stability(name)))
    if spill is not None:
        triples += _stream_triples(result)
    return _rows(cell, triples), {}


def _run_presence_cell(cell: CompiledCell,
                       ) -> Tuple[List[KpiRow], Dict[str, str]]:
    from ..core.sites import SITES
    from ..core.stats import (interval_gaps, merge_intervals,
                              total_length)
    from ..orbits.passes import PassPredictor
    params = cell.params
    constellations = build_cell_constellations(cell)
    fingerprints = _fleet_fingerprints(constellations)
    first = next(iter(constellations.values()))
    epoch = first.satellites[0].tle.epoch
    if params["start_day_offset"]:
        epoch = epoch + params["start_day_offset"] * 86400.0
    span_s = params["days"] * 86400.0
    triples: List[Tuple[str, str, float]] = []
    for constellation in constellations.values():
        display = constellation.name
        triples.append(("satellites", display, len(constellation)))
        for code in params["sites"]:
            location = SITES[code].location
            spans = []
            for satellite in constellation:
                predictor = PassPredictor(
                    satellite.propagator, location,
                    params["min_elevation_deg"])
                for window in predictor.find_passes(
                        epoch, span_s,
                        coarse_step_s=params["coarse_step_s"]):
                    spans.append((window.rise_s, window.set_s))
            merged = merge_intervals(spans)
            hours = total_length(merged) / span_s * 24.0
            gaps = interval_gaps(merged, 0.0, span_s)
            subject = f"{display}@{code}"
            triples += [
                ("presence_h_day", subject, hours),
                ("max_contact_gap_min", subject,
                 max(gaps) / 60.0 if gaps else 0.0),
                ("contacts", subject, len(merged)),
            ]
    return _rows(cell, triples), fingerprints


def _run_reception_cell(cell: CompiledCell,
                        ) -> Tuple[List[KpiRow], Dict[str, str]]:
    from ..core.sites import SITES
    from ..groundstation.receiver import BeaconReceiver
    from ..groundstation.scheduler import Scheduler
    from ..groundstation.station import GroundStation
    from ..sim.rng import RngStreams
    params = cell.params
    constellations = build_cell_constellations(cell)
    fingerprints = _fleet_fingerprints(constellations)
    constellation = next(iter(constellations.values()))
    epoch = constellation.satellites[0].tle.epoch
    code = params["site"]
    site = SITES[code]
    station_count = params["stations"] or site.station_count
    stations = [GroundStation(f"{code}-{i}", code, site.location)
                for i in range(station_count)]
    scheduler = Scheduler(
        stations, min_elevation_deg=params["min_elevation_deg"])
    schedule = scheduler.build_schedule(
        list(constellation), epoch, params["duration_s"],
        coarse_step_s=params["coarse_step_s"])
    receiver = BeaconReceiver()
    streams = RngStreams(cell.seed)
    # RNG streams are keyed by the fleet's beacon period so sweep cells
    # draw decorrelated channel noise (``p{period}/{pass index}``).
    period = constellation.radio.beacon_period_s
    receptions = [
        receiver.receive_pass(scheduled, epoch, f"{code}-{i}",
                              streams.get(f"p{period}/{i}"))
        for i, scheduled in enumerate(schedule.assigned)]
    received = sum(r.beacons_received for r in receptions)
    sent = sum(r.beacons_sent for r in receptions)
    heard = (float(np.mean([r.heard_anything for r in receptions]))
             if receptions else float("nan"))
    blocks = [r.traces.column("time_s") for r in receptions
              if len(r.traces)]
    times = np.sort(np.concatenate(blocks)) if blocks else np.empty(0)
    gaps = np.diff(times) if times.size > 1 else np.array([np.inf])
    triples = [
        ("passes_scheduled", "", len(schedule.assigned)),
        ("beacons_sent", "", sent),
        ("beacons_received", "", received),
        ("beacon_loss_rate", "",
         1.0 - received / sent if sent else float("nan")),
        ("windows_heard_frac", "", heard),
        ("median_rx_gap_s", "", float(np.median(gaps))),
    ]
    return _rows(cell, triples), fingerprints


def _run_downlink_cell(cell: CompiledCell,
                       ) -> Tuple[List[KpiRow], Dict[str, str]]:
    from ..network.downlink import DownlinkConfig, DownlinkSimulator
    from ..network.store_forward import BufferedPacket, SatelliteBuffer
    params = cell.params
    simulator = DownlinkSimulator(DownlinkConfig(
        throughput_bytes_s=params["rate_bytes_s"]))
    backlog = params["fleet_size"] * params["packets_per_node"]
    sessions = simulator.sessions_to_empty(
        backlog, params["payload_bytes"], params["window_s"])
    buffer = SatelliteBuffer(
        44100, capacity_packets=params["buffer_capacity"])
    for seq in range(min(backlog, params["buffer_fill_cap"])):
        buffer.store(BufferedPacket("fleet", seq, 0.0,
                                    params["payload_bytes"]))
    session = simulator.run_session(buffer, (0.0, params["window_s"]))
    triples = [
        ("backlog_packets", "", backlog),
        ("contacts_to_drain", "", sessions),
        ("drained_one_contact", "", session.drained_count),
    ]
    return _rows(cell, triples), {}


def _run_phy_cell(cell: CompiledCell,
                  ) -> Tuple[List[KpiRow], Dict[str, str]]:
    from ..phy.adaptation import sf_trade_table
    from ..phy.link_budget import LinkBudget
    from ..phy.lora import SNR_LIMIT_DB, noise_floor_dbm
    params = cell.params
    table = sf_trade_table(payload_bytes=params["payload_bytes"],
                           bandwidth_hz=params["bandwidth_hz"])
    budget = LinkBudget(eirp_dbm=params["eirp_dbm"],
                        frequency_hz=params["frequency_hz"])
    rssi = budget.mean_rssi_dbm(params["range_km"],
                                params["elevation_deg"],
                                rx_gain_dbi=params["rx_gain_dbi"])
    snr = rssi - noise_floor_dbm(params["bandwidth_hz"])
    triples: List[Tuple[str, str, float]] = [("snr_db", "", snr)]
    for sf, point in sorted(table.items()):
        subject = f"SF{sf}"
        triples += [
            ("snr_limit_db", subject, point.snr_limit_db),
            ("airtime_s", subject, point.airtime_s),
            ("tx_energy_j", subject, point.tx_energy_j),
            ("collision_exposure", subject, point.collision_exposure),
            ("margin_db", subject, snr - SNR_LIMIT_DB[sf]),
        ]
    return _rows(cell, triples), {}


_CELL_RUNNERS = {
    "passive": None,  # takes the cache; dispatched explicitly below
    "active": _run_active_cell,
    "longitudinal": _run_longitudinal_cell,
    "presence": _run_presence_cell,
    "reception": _run_reception_cell,
    "downlink": _run_downlink_cell,
    "phy": _run_phy_cell,
}


def _execute_cell(cell: CompiledCell, cache, spill=None,
                  ) -> Tuple[List[KpiRow], Dict[str, str],
                             ShardTelemetry]:
    t0 = time.perf_counter()
    if cell.kind == "passive":
        rows, fingerprints = _run_passive_cell(cell, cache)
    elif cell.kind == "longitudinal":
        rows, fingerprints = _run_longitudinal_cell(cell, spill)
    else:
        rows, fingerprints = _CELL_RUNNERS[cell.kind](cell)
    telemetry = ShardTelemetry(
        label=f"cell:{cell.cell_id}",
        wall_s=time.perf_counter() - t0, traces=len(rows),
        worker=f"pid:{os.getpid()}")
    return rows, fingerprints, telemetry


def _cell_shard_worker(shard: Shard):
    """Process-pool entry point: run one cell from its payload."""
    cell, cache_spec, spill = shard.payload
    return _execute_cell(cell, _resolve_cache(cache_spec), spill)


# ----------------------------------------------------------------------
def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "-C", str(Path(__file__).resolve().parent),
             "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else "unknown"


def _build_manifest(spec: ScenarioSpec, cells: Sequence[CompiledCell],
                    store: KpiStore,
                    fingerprints: Dict[str, str]) -> Dict[str, Any]:
    return {
        "format": RUN_FORMAT,
        "scenario": spec.name,
        "kind": spec.kind,
        "seed": spec.seed,
        "scenario_fingerprint": scenario_fingerprint(spec),
        "git_revision": _git_revision(),
        "satiot_version": __version__,
        "cells": [cell.cell_id for cell in cells],
        "sweep": {path: list(values)
                  for path, values in spec.sweep.items()},
        "kpi_rows": len(store),
        "constellation_fingerprints": dict(sorted(
            fingerprints.items())),
        "faults": spec.faults,
    }


def _install_spec_faults(spec: ScenarioSpec) -> None:
    if not spec.faults:
        return
    from ..faults import FAULTS_ENV, FaultPlane, install_plane
    # Export before any pool spawns so shard workers rebuild the same
    # schedule from the environment.
    os.environ[FAULTS_ENV] = spec.faults
    install_plane(FaultPlane.from_spec(spec.faults))


def run_scenario(spec: Union[ScenarioSpec, Dict[str, Any]],
                 workers: Optional[int] = None,
                 ephemeris_cache=DEFAULT_CACHE,
                 out_dir: Union[str, Path, None] = None,
                 spill_dir: Union[str, Path, None] = None,
                 rows_per_shard: int = 100_000,
                 resume: bool = False) -> ScenarioRun:
    """Execute a scenario matrix and extract its KPI store.

    ``workers`` (then the spec's ``workers`` key, then
    ``SATIOT_WORKERS``) sets the cell-level parallelism; campaigns
    inside a cell always run serially, which is what makes the KPI
    store invariant under the worker count.

    ``spill_dir`` streams each longitudinal cell's traces into a
    sharded ``satiot-traces-v2`` archive under
    ``<spill_dir>/<cell_id>/`` (checkpointed per week; ``resume=True``
    continues a killed run) and adds ``stream_*`` KPI rows computed by
    the fold-over-shards reducers.  Other cell kinds are unaffected.
    """
    if isinstance(spec, dict):
        spec = parse_scenario(spec)
    _install_spec_faults(spec)
    cells = compile_cells(spec)
    if workers is None:
        workers = spec.workers
    executor = ShardExecutor(workers)
    t0 = time.perf_counter()

    spill = (str(spill_dir), int(rows_per_shard), bool(resume)) \
        if spill_dir is not None else None
    if executor.workers > 1 and len(cells) > 1:
        cache_spec = _cache_spec_for_worker(ephemeris_cache)
        shards = [Shard(index=cell.index, kind="cell",
                        key=cell.cell_id,
                        payload=(cell, cache_spec, spill))
                  for cell in cells]
        outcomes = executor.map(_cell_shard_worker, shards)
        results = [outcome.result for outcome in outcomes]
    else:
        cache = _resolve_cache(ephemeris_cache)
        results = [_execute_cell(cell, cache, spill)
                   for cell in cells]

    store = KpiStore()
    fingerprints: Dict[str, str] = {}
    shard_telemetry: List[ShardTelemetry] = []
    for rows, cell_fingerprints, telemetry in results:
        store.extend(rows)
        fingerprints.update(cell_fingerprints)
        shard_telemetry.append(telemetry)
    campaign_telemetry = CampaignTelemetry(
        workers=executor.workers, mode=executor.mode,
        wall_s=time.perf_counter() - t0, shards=shard_telemetry,
        retries=executor.retries, fallbacks=executor.fallbacks)

    manifest = _build_manifest(spec, cells, store, fingerprints)
    if spill is not None:
        # Only recorded for spill-backed runs so in-RAM manifests stay
        # byte-stable across this feature.
        manifest["spill"] = {"dir": spill[0],
                             "rows_per_shard": spill[1]}
    run = ScenarioRun(spec=spec, cells=cells, store=store,
                      manifest=manifest,
                      telemetry=campaign_telemetry)
    if out_dir is not None:
        run.save(out_dir)
    return run


# ----------------------------------------------------------------------
def smoke_document(document: Dict[str, Any]) -> Dict[str, Any]:
    """Shrink a scenario document for CI smoke runs.

    Durations are capped (passive-family days to 0.25, active days to
    1.0, longitudinal to 2 weeks sampling 0.25 days) and every sweep
    axis is truncated to its first two values.  The result is a valid
    document of the same shape whose run takes seconds.
    """
    document = json.loads(json.dumps(document))
    kind = document.get("kind")
    duration = dict(document.get("duration") or {})
    cap = 1.0 if kind == "active" else 0.25
    duration["days"] = min(float(duration.get("days", cap)), cap)
    if kind in ("passive", "active", "presence", "reception"):
        document["duration"] = duration
    if kind == "longitudinal":
        section = dict(document.get("longitudinal") or {})
        section["weeks"] = min(int(section.get("weeks", 2)), 2)
        section["sample_days"] = min(
            float(section.get("sample_days", 0.25)), 0.25)
        document["longitudinal"] = section
    sweep = document.get("sweep") or {}
    if sweep:
        document["sweep"] = {path: values[:2]
                             for path, values in sweep.items()}
    return document


# ----------------------------------------------------------------------
def load_run(run_dir: Union[str, Path],
             ) -> Tuple[Dict[str, Any], KpiStore]:
    """Read a run directory's manifest and KPI store."""
    run_dir = Path(run_dir)
    manifest_path = run_dir / MANIFEST_NAME
    store_path = run_dir / STORE_NAME
    if not manifest_path.is_file() or not store_path.is_file():
        raise ScenarioError(
            "", f"{run_dir} is not a scenario run directory "
                f"(expected {MANIFEST_NAME} and {STORE_NAME})")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != RUN_FORMAT:
        raise ScenarioError(
            "format", f"{manifest_path}: unsupported run manifest "
                      f"format {manifest.get('format')!r}")
    return manifest, KpiStore.load(store_path)


def diff_runs(run_a: Union[str, Path], run_b: Union[str, Path],
              rtol: float = 0.0, atol: float = 0.0,
              ) -> Tuple[KpiDiff, Dict[str, Any], Dict[str, Any]]:
    """Diff two run directories; returns the diff plus both manifests."""
    manifest_a, store_a = load_run(run_a)
    manifest_b, store_b = load_run(run_b)
    return (diff_stores(store_a, store_b, rtol=rtol, atol=atol),
            manifest_a, manifest_b)


def render_diff_report(diff: KpiDiff, manifest_a: Dict[str, Any],
                       manifest_b: Dict[str, Any]) -> str:
    """Human-readable diff between two scenario runs."""
    lines = [
        f"scenario {manifest_a.get('scenario')} "
        f"(seed {manifest_a.get('seed')}) — "
        f"{manifest_a.get('git_revision', 'unknown')[:12]} vs "
        f"{manifest_b.get('git_revision', 'unknown')[:12]}",
        f"compared {diff.compared} KPI values: "
        f"{len(diff.changed)} changed, {len(diff.only_a)} only in A, "
        f"{len(diff.only_b)} only in B",
    ]
    if diff.identical:
        lines.append("0 deltas — runs are KPI-identical")
        return "\n".join(lines)
    if diff.changed:
        rows = [[d.cell, d.kpi, d.subject, f"{d.a:.6g}",
                 f"{d.b:.6g}", f"{d.delta:+.6g}"]
                for d in diff.changed]
        lines.append(render_fixed_table(
            ["cell", "kpi", "subject", "A", "B", "delta"], rows))
    for label, keys in (("only in A", diff.only_a),
                        ("only in B", diff.only_b)):
        for cell, kpi, subject in keys:
            lines.append(f"  {label}: {cell} / {kpi} / {subject}")
    return "\n".join(lines)


def render_grid(spec: ScenarioSpec,
                cells: Sequence[CompiledCell]) -> str:
    """The expanded matrix as a table (``satiot scenario grid``)."""
    axes = list(spec.sweep)
    header = ["#", "cell"] + [path.rsplit(".", 1)[-1]
                              for path in axes]
    rows = []
    for cell in cells:
        rows.append([cell.index, cell.cell_id]
                    + [cell.sweep_params.get(path, "")
                       for path in axes])
    title = (f"{spec.name} [{spec.kind}]: {len(cells)} cell(s), "
             f"{len(axes)} sweep axis(es), seed {spec.seed}")
    return render_fixed_table(header,
                              [[str(c) for c in row] for row in rows],
                              title=title)


def render_kpi_table(run: ScenarioRun, kpis: Optional[Sequence[str]]
                     = None) -> str:
    """Cells × KPIs summary (cell-level subjects only)."""
    store = run.store
    names = list(kpis) if kpis else store.kpis()
    subjects = {row.kpi: row.subject for row in store
                if row.subject == ""}
    names = [n for n in names if n in subjects] or names[:6]
    header = ["cell"] + names
    rows = []
    for cell_id in store.cells():
        row = [cell_id]
        for name in names:
            try:
                row.append(f"{store.value(cell_id, name):.6g}")
            except KeyError:
                row.append("-")
        rows.append(row)
    title = (f"{run.spec.name}: {len(store)} KPI rows, "
             f"{len(store.cells())} cell(s)")
    return render_fixed_table(header, rows, title=title)
