"""Lowering scenario documents onto the campaign layer.

The compiler turns each cell of a scenario matrix into a
:class:`CompiledCell`: a picklable description carrying the concrete
campaign config (``PassiveCampaignConfig``/``ActiveCampaignConfig``,
``LongitudinalCampaign`` kwargs) or the parameter set of one of the
lighter workload kinds (``presence``, ``reception``, ``downlink``,
``phy``).  Execution lives in :mod:`satiot.scenarios.orchestrator`;
keeping the two apart means benchmarks and tests can compile a spec and
inspect exactly what would run without running it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from ..constellations.catalog import (CONSTELLATION_SPECS,
                                      Constellation, ConstellationSpec,
                                      DtSRadioProfile,
                                      build_constellation)
from ..constellations.shells import ShellSpec
from ..core.active import ActiveCampaignConfig
from ..core.campaign import PassiveCampaignConfig
from ..econ.providers import get_provider
from ..sim.weather import WeatherParams
from .spec import ScenarioError, ScenarioSpec, expand_grid

__all__ = ["CompiledCell", "compile_cells", "compile_cell",
           "build_cell_constellations"]


@dataclass(frozen=True)
class CompiledCell:
    """One executable cell of a scenario matrix.

    ``config`` is the lowered campaign config for campaign kinds
    (``passive``/``active``), ``kwargs`` the constructor arguments for
    ``longitudinal``, and ``params`` the normalized parameter dict for
    the lighter kinds.  ``sweep_params`` maps each sweep axis path to
    this cell's value.
    """

    index: int
    cell_id: str
    kind: str
    seed: int
    sweep_params: Dict[str, Any] = field(default_factory=dict)
    config: Any = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)
    faults: Optional[str] = None


# ----------------------------------------------------------------------
def _radio_with_overrides(base: DtSRadioProfile,
                          overrides: Dict[str, float]) -> DtSRadioProfile:
    if not overrides:
        return base
    coerced = dict(overrides)
    if "beacon_payload_bytes" in coerced:
        coerced["beacon_payload_bytes"] = \
            int(coerced["beacon_payload_bytes"])
    return replace(base, **coerced)


def _walker_spec(walker: Dict[str, Any]) -> ConstellationSpec:
    """A single-shell Walker-synth constellation spec.

    Name and NORAD base default to deterministic functions of the shell
    size (``ABL-<count>`` / ``80000 + count``) so a pure
    ``constellation.walker.count`` sweep yields distinct, reproducible
    fleets without further spec keys.
    """
    count = walker["count"]
    name = walker["name"] or f"ABL-{count}"
    norad_base = walker["norad_base"] or 80000 + count
    altitude = walker["altitude_km"]
    spread = walker["altitude_spread_km"] / 2.0
    return ConstellationSpec(
        name=name, operator_region="scenario",
        shells=(ShellSpec(f"A{count}", count=count,
                          altitude_min_km=altitude - spread,
                          altitude_max_km=altitude + spread,
                          inclination_deg=walker["inclination_deg"]),),
        radio=DtSRadioProfile(frequency_hz=walker["frequency_hz"]),
        norad_base=norad_base)


def build_cell_constellations(cell: CompiledCell,
                              ) -> Dict[str, Constellation]:
    """Materialize the constellations a presence/reception cell uses.

    Returned keys are the built constellations' display names in a
    deterministic order (declaration order for name lists).  Campaign
    kinds rebuild their constellations inside the campaign itself.
    """
    doc = cell.params.get("constellation") or {}
    seed = cell.seed
    if "names" in doc:
        return {name: build_constellation(name, seed=seed)
                for name in doc["names"]}
    if "name" in doc:
        base = CONSTELLATION_SPECS[doc["name"].lower()]
        spec = replace(base, radio=_radio_with_overrides(
            base.radio, doc.get("overrides") or {}))
        return {spec.name: build_constellation(doc["name"], seed=seed,
                                               spec=spec)}
    if "walker" in doc:
        spec = _walker_spec(doc["walker"])
        return {spec.name: build_constellation(spec.name, seed=seed,
                                               spec=spec)}
    if "catalog" in doc:
        from ..catalog import constellation_from_catalog
        constellation = constellation_from_catalog(
            doc["catalog"], doc.get("select") or None,
            name=doc.get("catalog_name", "catalog"))
        return {constellation.name: constellation}
    raise ScenarioError("constellation", "nothing to build")


# ----------------------------------------------------------------------
def _compile_passive(spec: ScenarioSpec) -> PassiveCampaignConfig:
    duration = spec.section("duration")
    ground = spec.section("ground")
    names = spec.document["constellation"]["names"]
    return PassiveCampaignConfig(
        sites=tuple(spec.document["sites"]),
        constellations=tuple(names),
        days=duration["days"],
        start_day_offset=duration["start_day_offset"],
        seed=spec.seed,
        min_elevation_deg=ground["min_elevation_deg"],
        coarse_step_s=ground["coarse_step_s"])


def _compile_active(spec: ScenarioSpec) -> ActiveCampaignConfig:
    duration = spec.section("duration")
    traffic = spec.section("traffic")
    mac = spec.section("mac")
    kwargs: Dict[str, Any] = dict(
        days=duration["days"], seed=spec.seed,
        node_count=traffic["node_count"],
        payload_bytes=traffic["payload_bytes"],
        reading_interval_s=traffic["reading_interval_s"],
        max_retransmissions=mac["max_retransmissions"],
        antenna_name=spec.document.get("antenna",
                                       "five_eighths_wave"))
    if "weather" in spec.document:
        weather = spec.section("weather")
        kwargs["weather"] = WeatherParams(
            mean_dry_hours=weather["mean_dry_hours"],
            mean_rain_hours=weather["mean_rain_hours"])
    return ActiveCampaignConfig(**kwargs)


def _compile_longitudinal(spec: ScenarioSpec) -> Dict[str, Any]:
    section = spec.section("longitudinal")
    names = spec.document["constellation"]["names"]
    return dict(weeks=section["weeks"], site=section["site"],
                sample_days=section["sample_days"],
                period_days=section["period_days"], seed=spec.seed,
                constellations=tuple(names))


# ----------------------------------------------------------------------
def compile_cell(index: int, cell_id: str,
                 sweep_params: Dict[str, Any],
                 spec: ScenarioSpec) -> CompiledCell:
    """Lower one cell spec onto its concrete runnable description."""
    common = dict(index=index, cell_id=cell_id, kind=spec.kind,
                  seed=spec.seed, sweep_params=dict(sweep_params),
                  faults=spec.faults)
    if spec.kind == "passive":
        return CompiledCell(config=_compile_passive(spec), **common)
    if spec.kind == "active":
        provider = str(spec.section("traffic")["provider"]).lower()
        try:
            get_provider(provider)
        except ValueError as error:
            raise ScenarioError("traffic.provider", str(error))
        return CompiledCell(config=_compile_active(spec),
                            params={"provider": provider}, **common)
    if spec.kind == "longitudinal":
        return CompiledCell(kwargs=_compile_longitudinal(spec),
                            **common)
    if spec.kind == "presence":
        return CompiledCell(params={
            "constellation": spec.document["constellation"],
            "sites": spec.document["sites"],
            "days": spec.section("duration")["days"],
            "start_day_offset":
                spec.section("duration")["start_day_offset"],
            "min_elevation_deg":
                spec.section("ground")["min_elevation_deg"],
            "coarse_step_s": spec.section("ground")["coarse_step_s"],
        }, **common)
    if spec.kind == "reception":
        ground = spec.section("ground")
        return CompiledCell(params={
            "constellation": spec.document["constellation"],
            "site": spec.document["sites"][0],
            "stations": ground["stations"],
            "min_elevation_deg": ground["min_elevation_deg"],
            "coarse_step_s": ground["coarse_step_s"],
            "duration_s": spec.section("duration")["days"] * 86400.0,
        }, **common)
    if spec.kind == "downlink":
        return CompiledCell(params=spec.section("downlink"), **common)
    if spec.kind == "phy":
        return CompiledCell(params=spec.section("phy"), **common)
    raise ScenarioError("kind", f"no compiler for {spec.kind!r}")


def compile_cells(spec: ScenarioSpec) -> List[CompiledCell]:
    """Expand the sweep and lower every cell, in matrix order."""
    return [compile_cell(index, cell_id, params, cell_spec)
            for index, (cell_id, params, cell_spec)
            in enumerate(expand_grid(spec))]
