"""Declarative scenario documents (``satiot-scenario-v1``).

A scenario is a versioned JSON document that describes one workload —
constellation, ground segment, traffic, weather, fault spec, duration,
seed — plus an optional ``sweep`` block that turns single values into
axes of a deterministic scenario matrix.  The document is pure data: the
compiler (:mod:`satiot.scenarios.compiler`) lowers it onto the existing
campaign configs, and the orchestrator
(:mod:`satiot.scenarios.orchestrator`) executes the matrix and extracts
KPIs.

Validation is strict: every error is a :class:`ScenarioError` carrying
the dotted path of the offending key (``ground.min_elevation_deg``), so
a typo in a committed spec file fails with a message naming exactly what
to fix rather than a distant ``KeyError``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["SCENARIO_FORMAT", "SCENARIO_KINDS", "ScenarioError",
           "ScenarioSpec", "parse_scenario", "load_scenario",
           "expand_grid", "canonical_json", "scenario_fingerprint"]

SCENARIO_FORMAT = "satiot-scenario-v1"

#: Workload families the compiler knows how to lower.
SCENARIO_KINDS = ("passive", "active", "longitudinal", "presence",
                  "reception", "downlink", "phy")


class ScenarioError(ValueError):
    """A scenario document failed validation.

    ``path`` is the dotted location of the offending key (empty for
    document-level problems); the message always embeds it.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        where = f"scenario key {path!r}: " if path else "scenario: "
        super().__init__(where + message)


# ----------------------------------------------------------------------
# Section schemas: {key: (types, default)}.  ``None`` as default means
# "no default" — the compiler decides; ``required`` marks keys that must
# be present when the section is given.
# ----------------------------------------------------------------------
_SCALARS = (int, float)


def _is_number(value: Any) -> bool:
    return isinstance(value, _SCALARS) and not isinstance(value, bool)


@dataclass(frozen=True)
class _Field:
    types: tuple
    default: Any = None
    required: bool = False
    positive: bool = False


def _number_field(default=None, required=False, positive=False) -> _Field:
    return _Field((int, float), default, required, positive)


def _int_field(default=None, required=False, positive=False) -> _Field:
    return _Field((int,), default, required, positive)


def _str_field(default=None, required=False) -> _Field:
    return _Field((str,), default, required)


_SECTION_SCHEMAS: Dict[str, Dict[str, _Field]] = {
    "duration": {
        "days": _number_field(default=1.0, positive=True),
        "start_day_offset": _number_field(default=0.0),
    },
    "ground": {
        "min_elevation_deg": _number_field(default=0.0),
        "coarse_step_s": _number_field(default=30.0, positive=True),
        "stations": _int_field(default=None, positive=True),
    },
    "traffic": {
        "node_count": _int_field(default=3, positive=True),
        "payload_bytes": _int_field(default=20, positive=True),
        "reading_interval_s": _number_field(default=1800.0,
                                            positive=True),
        # Cost-model provider (satiot.econ.providers registry name);
        # the measured Tianqi tariff unless the spec says otherwise.
        "provider": _str_field(default="tianqi"),
    },
    "mac": {
        "max_retransmissions": _int_field(default=5),
    },
    "weather": {
        "mean_dry_hours": _number_field(default=30.0, positive=True),
        "mean_rain_hours": _number_field(default=10.0, positive=True),
    },
    "longitudinal": {
        "weeks": _int_field(default=4, positive=True),
        "site": _str_field(default="HK"),
        "sample_days": _number_field(default=1.0, positive=True),
        "period_days": _number_field(default=7.0, positive=True),
    },
    "downlink": {
        "rate_bytes_s": _number_field(required=True, positive=True),
        "fleet_size": _int_field(required=True, positive=True),
        "window_s": _number_field(default=420.0, positive=True),
        "packets_per_node": _int_field(default=2, positive=True),
        "payload_bytes": _int_field(default=20, positive=True),
        "buffer_capacity": _int_field(default=10_000_000, positive=True),
        "buffer_fill_cap": _int_field(default=120_000, positive=True),
    },
    "phy": {
        "payload_bytes": _int_field(default=20, positive=True),
        "range_km": _number_field(default=1400.0, positive=True),
        "elevation_deg": _number_field(default=35.0),
        "eirp_dbm": _number_field(default=10.5),
        "frequency_hz": _number_field(default=400.45e6, positive=True),
        "rx_gain_dbi": _number_field(default=2.0),
        "bandwidth_hz": _number_field(default=125_000.0, positive=True),
    },
}

#: Sections each kind accepts beyond the always-allowed document keys.
_KIND_SECTIONS: Dict[str, Tuple[str, ...]] = {
    "passive": ("duration", "ground", "constellation", "sites"),
    "active": ("duration", "traffic", "mac", "weather", "antenna"),
    "longitudinal": ("longitudinal", "constellation"),
    "presence": ("duration", "ground", "constellation", "sites"),
    "reception": ("duration", "ground", "constellation", "sites"),
    "downlink": ("downlink",),
    "phy": ("phy",),
}

_DOCUMENT_KEYS = ("format", "name", "title", "kind", "seed", "workers",
                  "faults", "sweep", "kpis") \
    + tuple(sorted({s for ss in _KIND_SECTIONS.values() for s in ss}))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A parsed, validated scenario document.

    ``document`` is the normalized dict (defaults filled in, sweep
    removed for cells); ``sweep`` keeps the sweep axes in declaration
    order so the grid expansion is a deterministic function of the
    document alone.
    """

    name: str
    kind: str
    seed: int
    document: Dict[str, Any]
    title: str = ""
    workers: Optional[int] = None
    faults: Optional[str] = None
    sweep: Dict[str, List[Any]] = field(default_factory=dict)
    kpis: Optional[Tuple[str, ...]] = None

    def section(self, name: str) -> Dict[str, Any]:
        """The normalized section dict (defaults applied)."""
        return dict(self.document.get(name) or {})

    @property
    def is_matrix(self) -> bool:
        return bool(self.sweep)


# ----------------------------------------------------------------------
def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise ScenarioError(path, message)


def _check_mapping(value: Any, path: str) -> Dict[str, Any]:
    _require(isinstance(value, dict), path,
             f"expected an object, got {type(value).__name__}")
    return value


def _validate_section(document: Dict[str, Any], section: str) -> None:
    """Type/range-check one section in place, filling defaults."""
    schema = _SECTION_SCHEMAS[section]
    raw = _check_mapping(document.get(section) or {}, section)
    for key in raw:
        _require(key in schema, f"{section}.{key}",
                 f"unknown key; expected one of {sorted(schema)}")
    out: Dict[str, Any] = {}
    for key, spec in schema.items():
        path = f"{section}.{key}"
        if key not in raw:
            _require(not spec.required, path,
                     "required key is missing")
            out[key] = spec.default
            continue
        value = raw[key]
        if value is None and spec.default is None and not spec.required:
            out[key] = None  # optional key, explicit null
            continue
        if spec.types == (int,):
            _require(isinstance(value, int)
                     and not isinstance(value, bool), path,
                     f"expected an integer, got {value!r}")
        elif spec.types == (str,):
            _require(isinstance(value, str), path,
                     f"expected a string, got {value!r}")
        else:
            _require(_is_number(value), path,
                     f"expected a number, got {value!r}")
            value = float(value)
        if spec.positive and spec.types != (str,):
            _require(value > 0, path,
                     f"must be positive, got {value!r}")
        out[key] = value
    document[section] = out


_CONSTELLATION_MODES = ("names", "name", "walker", "catalog")

_WALKER_SCHEMA: Dict[str, _Field] = {
    "count": _int_field(required=True, positive=True),
    "altitude_km": _number_field(default=600.0, positive=True),
    "altitude_spread_km": _number_field(default=20.0),
    "inclination_deg": _number_field(default=97.5),
    "name": _str_field(default=None),
    "norad_base": _int_field(default=None, positive=True),
    "frequency_hz": _number_field(default=400.45e6, positive=True),
}

#: Radio-profile fields a scenario may override on a named
#: constellation (kind ``reception``); values are coerced to float.
_RADIO_OVERRIDE_KEYS = ("beacon_period_s", "beacon_eirp_dbm",
                        "frequency_hz", "beacon_payload_bytes")


def _validate_constellation(document: Dict[str, Any], kind: str) -> None:
    raw = document.get("constellation")
    if raw is None:
        if kind == "reception":
            document["constellation"] = {"name": "tianqi",
                                         "overrides": {}}
        else:
            document["constellation"] = {"names": ["tianqi", "fossa",
                                                   "pico", "cstp"]}
        return
    raw = _check_mapping(raw, "constellation")
    modes = [m for m in _CONSTELLATION_MODES if m in raw]
    _require(len(modes) == 1, "constellation",
             f"give exactly one of {list(_CONSTELLATION_MODES)}, "
             f"got {sorted(raw) or 'nothing'}")
    mode = modes[0]
    if kind in ("passive", "longitudinal"):
        _require(mode == "names", f"constellation.{mode}",
                 f"kind {kind!r} selects constellations by Table-3 "
                 f"name list ('names')")
    if kind == "reception":
        _require(mode == "name", f"constellation.{mode}",
                 "kind 'reception' builds exactly one constellation "
                 "('name', optionally with radio 'overrides')")
    extra = [k for k in raw
             if k not in (mode, "overrides", "select",
                          "catalog_name")]
    _require(not extra, f"constellation.{extra[0]}" if extra else "",
             "unknown key")
    if mode == "names":
        names = raw["names"]
        _require(isinstance(names, list) and names
                 and all(isinstance(n, str) for n in names),
                 "constellation.names",
                 f"expected a non-empty list of strings, got {names!r}")
        from ..constellations.catalog import CONSTELLATION_SPECS
        unknown = [n for n in names
                   if n.lower() not in CONSTELLATION_SPECS]
        _require(not unknown, "constellation.names",
                 f"unknown constellations {unknown}; choose from "
                 f"{sorted(CONSTELLATION_SPECS)}")
    elif mode == "name":
        name = raw["name"]
        _require(isinstance(name, str), "constellation.name",
                 f"expected a string, got {name!r}")
        from ..constellations.catalog import CONSTELLATION_SPECS
        _require(name.lower() in CONSTELLATION_SPECS,
                 "constellation.name",
                 f"unknown constellation {name!r}; choose from "
                 f"{sorted(CONSTELLATION_SPECS)}")
        overrides = _check_mapping(raw.get("overrides") or {},
                                   "constellation.overrides")
        cleaned = {}
        for key, value in overrides.items():
            path = f"constellation.overrides.{key}"
            _require(key in _RADIO_OVERRIDE_KEYS, path,
                     f"unknown radio override; expected one of "
                     f"{list(_RADIO_OVERRIDE_KEYS)}")
            _require(_is_number(value), path,
                     f"expected a number, got {value!r}")
            cleaned[key] = float(value)
        raw["overrides"] = cleaned
    elif mode == "walker":
        walker = _check_mapping(raw["walker"], "constellation.walker")
        for key in walker:
            _require(key in _WALKER_SCHEMA,
                     f"constellation.walker.{key}",
                     f"unknown key; expected one of "
                     f"{sorted(_WALKER_SCHEMA)}")
        out = {}
        for key, spec in _WALKER_SCHEMA.items():
            path = f"constellation.walker.{key}"
            if key not in walker:
                _require(not spec.required, path,
                         "required key is missing")
                out[key] = spec.default
                continue
            value = walker[key]
            if value is None and spec.default is None \
                    and not spec.required:
                out[key] = None  # optional key, explicit null
                continue
            if spec.types == (str,):
                _require(isinstance(value, str), path,
                         f"expected a string, got {value!r}")
            elif spec.types == (int,):
                _require(isinstance(value, int)
                         and not isinstance(value, bool), path,
                         f"expected an integer, got {value!r}")
            else:
                _require(_is_number(value), path,
                         f"expected a number, got {value!r}")
                value = float(value)
            if spec.positive and spec.types != (str,):
                _require(value > 0, path,
                         f"must be positive, got {value!r}")
            out[key] = value
        raw["walker"] = out
    else:  # catalog
        _require(isinstance(raw["catalog"], str),
                 "constellation.catalog",
                 f"expected a path string, got {raw['catalog']!r}")
        select = raw.get("select") or []
        _require(isinstance(select, list)
                 and all(isinstance(s, str) for s in select),
                 "constellation.select",
                 "expected a list of selector strings")
        _require(kind in ("presence",), "constellation.catalog",
                 f"catalog constellations are only supported for "
                 f"kind 'presence' (got kind {kind!r}); campaign "
                 f"kinds need a Table-3 name")
    if mode != "name" and "overrides" in raw:
        raise ScenarioError("constellation.overrides",
                            "radio overrides need constellation.name")
    document["constellation"] = raw


def _validate_sites(document: Dict[str, Any], kind: str) -> None:
    from ..core.sites import CONTINENT_SITES, SITES
    raw = document.get("sites")
    if raw is None:
        raw = ["HK"] if kind == "reception" \
            else list(CONTINENT_SITES)
    _require(isinstance(raw, list) and raw
             and all(isinstance(s, str) for s in raw), "sites",
             f"expected a non-empty list of site codes, got {raw!r}")
    unknown = [s for s in raw if s not in SITES]
    _require(not unknown, "sites",
             f"unknown sites {unknown}; choose from {sorted(SITES)}")
    if kind == "reception":
        _require(len(raw) == 1, "sites",
                 "kind 'reception' runs at exactly one site")
    document["sites"] = list(raw)


def _validate_sweep(document: Dict[str, Any]) -> Dict[str, List[Any]]:
    raw = document.get("sweep") or {}
    raw = _check_mapping(raw, "sweep")
    sweep: Dict[str, List[Any]] = {}
    for path, values in raw.items():
        _require(isinstance(path, str) and path, f"sweep.{path}",
                 "sweep keys are dotted document paths")
        _require(isinstance(values, list) and values,
                 f"sweep.{path}",
                 f"expected a non-empty list of values, got {values!r}")
        _require(all(_is_number(v) or isinstance(v, str)
                     for v in values), f"sweep.{path}",
                 "sweep values must be numbers or strings")
        # The target must exist in the document skeleton so a typo in
        # the axis path fails here, not as a silently ignored knob.
        _probe_path(document, path)
        sweep[path] = list(values)
    return sweep


def _probe_path(document: Dict[str, Any], path: str) -> None:
    """Verify a dotted sweep path lands on a known scenario key."""
    parts = path.split(".")
    section = parts[0]
    kind = document["kind"]
    allowed = _KIND_SECTIONS[kind]
    _require(section in allowed, f"sweep.{path}",
             f"section {section!r} is not part of kind {kind!r} "
             f"(allowed: {sorted(allowed)})")
    if section in _SECTION_SCHEMAS:
        _require(len(parts) == 2, f"sweep.{path}",
                 f"expected '{section}.<key>'")
        _require(parts[1] in _SECTION_SCHEMAS[section],
                 f"sweep.{path}",
                 f"unknown key {parts[1]!r}; expected one of "
                 f"{sorted(_SECTION_SCHEMAS[section])}")
    elif section == "constellation":
        tail = ".".join(parts[1:])
        ok = tail in ("name",) \
            or (parts[1:2] == ["overrides"] and len(parts) == 3
                and parts[2] in _RADIO_OVERRIDE_KEYS) \
            or (parts[1:2] == ["walker"] and len(parts) == 3
                and parts[2] in _WALKER_SCHEMA)
        _require(ok, f"sweep.{path}",
                 "sweepable constellation keys are 'name', "
                 "'overrides.<radio key>' and 'walker.<key>'")
    else:
        raise ScenarioError(f"sweep.{path}",
                            f"section {section!r} has no sweepable keys")


def _set_path(document: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    node = document
    for part in parts[:-1]:
        nxt = node.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            node[part] = nxt
        node = nxt
    node[parts[-1]] = value


# ----------------------------------------------------------------------
def parse_scenario(document: Dict[str, Any]) -> ScenarioSpec:
    """Validate a scenario document and return the parsed spec.

    The input dict is not mutated; defaults are filled into the parsed
    copy.  Raises :class:`ScenarioError` naming the offending key.
    """
    document = _check_mapping(document, "")
    document = json.loads(json.dumps(document))  # deep, JSON-clean copy

    fmt = document.get("format")
    _require(fmt == SCENARIO_FORMAT, "format",
             f"expected {SCENARIO_FORMAT!r}, got {fmt!r}")
    name = document.get("name")
    _require(isinstance(name, str) and name, "name",
             f"expected a non-empty string, got {name!r}")
    _require(all(c.isalnum() or c in "_-" for c in name), "name",
             f"{name!r} may only contain letters, digits, '_' and '-'")
    kind = document.get("kind")
    _require(kind in SCENARIO_KINDS, "kind",
             f"expected one of {list(SCENARIO_KINDS)}, got {kind!r}")

    for key in document:
        _require(key in _DOCUMENT_KEYS, key,
                 f"unknown document key; expected one of "
                 f"{sorted(_DOCUMENT_KEYS)}")
    allowed = _KIND_SECTIONS[kind]
    for section in _KIND_SECTIONS["passive"] + ("traffic", "mac",
                                                "weather", "antenna",
                                                "longitudinal",
                                                "downlink", "phy"):
        if section in document and section not in allowed:
            raise ScenarioError(
                section, f"section not allowed for kind {kind!r} "
                         f"(allowed: {sorted(allowed)})")

    seed = document.get("seed", 42)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             "seed", f"expected an integer, got {seed!r}")
    workers = document.get("workers")
    _require(workers is None or (isinstance(workers, int)
                                 and not isinstance(workers, bool)
                                 and workers >= 0), "workers",
             f"expected a non-negative integer or null, got {workers!r}")
    title = document.get("title", "")
    _require(isinstance(title, str), "title",
             f"expected a string, got {title!r}")

    faults = document.get("faults")
    if faults is not None:
        _require(isinstance(faults, str), "faults",
                 f"expected a fault-spec string, got {faults!r}")
        from ..faults import FaultPlane
        try:
            FaultPlane.from_spec(faults)
        except ValueError as error:
            raise ScenarioError("faults", str(error))

    kpis = document.get("kpis")
    if kpis is not None:
        _require(isinstance(kpis, list)
                 and all(isinstance(k, str) for k in kpis), "kpis",
                 f"expected a list of KPI names, got {kpis!r}")

    for section in allowed:
        if section in _SECTION_SCHEMAS:
            _validate_section(document, section)
    if "constellation" in allowed:
        _validate_constellation(document, kind)
    if "sites" in allowed:
        _validate_sites(document, kind)
    if "antenna" in allowed:
        antenna = document.get("antenna", "five_eighths_wave")
        from ..phy.antennas import ANTENNAS_BY_NAME
        _require(isinstance(antenna, str)
                 and antenna in ANTENNAS_BY_NAME, "antenna",
                 f"unknown antenna {antenna!r}; choose from "
                 f"{sorted(ANTENNAS_BY_NAME)}")
        document["antenna"] = antenna
    if kind == "downlink":
        _require("downlink" in document, "downlink",
                 "kind 'downlink' requires a downlink section")

    sweep = _validate_sweep(document)
    document.pop("sweep", None)

    # Sweep cells must themselves validate; probe each axis value
    # independently (cheap: one parse per value, axes are short).
    for path, values in sweep.items():
        for value in values:
            probe = json.loads(json.dumps(document))
            _set_path(probe, path, value)
            probe["sweep"] = {}
            try:
                _parse_cell(probe)
            except ScenarioError as error:
                raise ScenarioError(f"sweep.{path}",
                                    f"substituting {value!r} fails "
                                    f"validation: {error}")

    return ScenarioSpec(name=name, kind=kind, seed=seed,
                        document=document, title=title, workers=workers,
                        faults=faults, sweep=sweep,
                        kpis=tuple(kpis) if kpis is not None else None)


def _parse_cell(document: Dict[str, Any]) -> ScenarioSpec:
    """Parse a single already-substituted cell document."""
    spec = parse_scenario(document)
    return spec


def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Read and validate a scenario file (JSON)."""
    text = Path(path).read_text()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ScenarioError("", f"{path}: not valid JSON ({error})")
    try:
        return parse_scenario(document)
    except ScenarioError as error:
        raise ScenarioError(error.path, f"{path}: {error}") from None


# ----------------------------------------------------------------------
def _cell_value_repr(value: Any) -> str:
    if isinstance(value, str):
        return value
    return json.dumps(value)


def expand_grid(spec: ScenarioSpec) -> List[Tuple[str,
                                                  Dict[str, Any],
                                                  ScenarioSpec]]:
    """Expand the sweep into an ordered list of cells.

    Returns ``(cell_id, params, cell_spec)`` triples.  Axes iterate in
    document declaration order with the **first** axis outermost, and
    values in their declared order, so the matrix — and therefore every
    downstream KPI store — is a deterministic function of the document.
    A sweepless scenario is a single cell whose id is the scenario name.
    """
    if not spec.sweep:
        return [(spec.name, {}, spec)]
    axes = list(spec.sweep.items())
    cells = []
    for combo in itertools.product(*(values for _p, values in axes)):
        params = {path: value
                  for (path, _v), value in zip(axes, combo)}
        document = json.loads(json.dumps(spec.document))
        for path, value in params.items():
            _set_path(document, path, value)
        document["sweep"] = {}
        cell_spec = parse_scenario(document)
        cell_id = ",".join(
            f"{path.rsplit('.', 1)[-1]}={_cell_value_repr(value)}"
            for path, value in params.items())
        cells.append((cell_id, params, cell_spec))
    return cells


# ----------------------------------------------------------------------
def canonical_json(document: Dict[str, Any]) -> str:
    """Canonical serialization used for fingerprints and manifests."""
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":"))


def scenario_fingerprint(spec: ScenarioSpec) -> str:
    """Stable 16-hex-digit fingerprint of the normalized document."""
    payload = dict(spec.document)
    payload["sweep"] = {k: list(v) for k, v in spec.sweep.items()}
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:16]
