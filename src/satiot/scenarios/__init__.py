"""satiot.scenarios — declarative campaign specs, compiled and run.

The package folds the ad-hoc benchmark scripts into data: a scenario is
a versioned JSON document (:mod:`satiot.scenarios.spec`), the compiler
lowers it onto the campaign layer
(:mod:`satiot.scenarios.compiler`), and the orchestrator executes the
expanded matrix through the shard executor and extracts one columnar
KPI store with a reproducible run manifest
(:mod:`satiot.scenarios.orchestrator`).  See ``docs/scenarios.md`` for
the spec grammar and the ``satiot scenario`` CLI family.
"""

from .compiler import CompiledCell, build_cell_constellations, compile_cells
from .kpi import (KPI_FORMAT, KpiDelta, KpiDiff, KpiRow, KpiStore,
                  diff_stores, write_deterministic_npz)
from .orchestrator import (RUN_FORMAT, ScenarioRun, diff_runs, load_run,
                           render_diff_report, render_grid,
                           render_kpi_table, run_scenario, smoke_document)
from .spec import (SCENARIO_FORMAT, SCENARIO_KINDS, ScenarioError,
                   ScenarioSpec, canonical_json, expand_grid,
                   load_scenario, parse_scenario, scenario_fingerprint)

__all__ = [
    "SCENARIO_FORMAT", "SCENARIO_KINDS", "ScenarioError", "ScenarioSpec",
    "canonical_json", "expand_grid", "load_scenario", "parse_scenario",
    "scenario_fingerprint",
    "CompiledCell", "build_cell_constellations", "compile_cells",
    "KPI_FORMAT", "KpiDelta", "KpiDiff", "KpiRow", "KpiStore",
    "diff_stores", "write_deterministic_npz",
    "RUN_FORMAT", "ScenarioRun", "diff_runs", "load_run",
    "render_diff_report", "render_grid", "render_kpi_table",
    "run_scenario", "smoke_document",
]
