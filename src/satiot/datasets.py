"""Dataset archival in the paper's release layout.

The paper publishes its traces as the *SINet* dataset (per-site files
plus metadata).  This module writes a simulated campaign in the same
shape — one traces file per site plus a JSON manifest — and loads such
an archive back, so analyses can run on archived data without
re-simulation.

Since the trace data plane went columnar, archives support three
formats (recorded in the manifest and auto-detected on load):

``csv``
    Text, interoperable, one row per beacon (the original layout).
``jsonl``
    JSON lines; same row model, typed values.
``npz``
    Binary column archive — NumPy arrays plus string-interning tables,
    compressed.  Value-exact and several times smaller than CSV; the
    default for large campaigns.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Tuple, Union

from .core.campaign import PassiveCampaignResult
from .groundstation.traces import TRACE_FORMATS, TraceDataset

__all__ = ["DatasetManifest", "export_dataset", "load_dataset",
           "NPZ_AUTO_THRESHOLD"]

MANIFEST_NAME = "manifest.json"

#: ``trace_format="auto"`` switches to the binary column archive at
#: this many traces — text stays the default for small, eyeball-able
#: runs, large campaigns get the compact format.
NPZ_AUTO_THRESHOLD = 20_000


@dataclass(frozen=True)
class DatasetManifest:
    """Top-level metadata of an archived campaign."""

    name: str
    seed: int
    days: float
    sites: Dict[str, int]            # site code -> trace count
    constellations: Dict[str, int]   # name -> satellite count
    total_traces: int
    #: On-disk format of the per-site trace files (csv/jsonl/npz).
    trace_format: str = "csv"

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DatasetManifest":
        data = json.loads(text)
        # Archives written before the columnar data plane carry no
        # trace_format field; they are CSV by construction.
        data.setdefault("trace_format", "csv")
        return cls(**data)


def _resolve_format(trace_format: str, total_traces: int) -> str:
    if trace_format == "auto":
        return "npz" if total_traces >= NPZ_AUTO_THRESHOLD else "csv"
    if trace_format not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {trace_format!r}; "
                         f"choose from {TRACE_FORMATS} or 'auto'")
    return trace_format


def export_dataset(result: PassiveCampaignResult,
                   root: Union[str, Path],
                   name: str = "sinet-sim",
                   trace_format: str = "csv") -> DatasetManifest:
    """Write a campaign as ``root/<SITE>/traces.<fmt>`` + manifest.

    ``trace_format`` may be ``csv``, ``jsonl``, ``npz`` or ``auto``
    (npz for runs with at least :data:`NPZ_AUTO_THRESHOLD` traces,
    csv below).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    fmt = _resolve_format(trace_format, result.total_traces)

    site_counts: Dict[str, int] = {}
    for code, site_result in result.site_results.items():
        site_dir = root / code
        site_dir.mkdir(exist_ok=True)
        dataset = result.dataset.by_site(code).sorted_by_time()
        dataset.save(site_dir / f"traces.{fmt}", trace_format=fmt)
        site_counts[code] = len(dataset)

    manifest = DatasetManifest(
        name=name,
        seed=result.config.seed,
        days=result.config.days,
        sites=site_counts,
        constellations={c.name: len(c)
                        for c in result.constellations.values()},
        total_traces=result.total_traces,
        trace_format=fmt,
    )
    (root / MANIFEST_NAME).write_text(manifest.to_json() + "\n")
    return manifest


def _site_traces_path(root: Path, code: str, fmt: str) -> Path:
    """Locate a site's trace file, tolerating a format mismatch.

    The manifest's ``trace_format`` is authoritative, but archives
    rewritten by hand (or pre-columnar ones) are still loadable as long
    as exactly one known format is present on disk.
    """
    preferred = root / code / f"traces.{fmt}"
    if preferred.exists():
        return preferred
    candidates = [root / code / f"traces.{alt}" for alt in TRACE_FORMATS]
    existing = [p for p in candidates if p.exists()]
    if len(existing) == 1:
        return existing[0]
    raise FileNotFoundError(f"missing site file {preferred}")


def load_dataset(root: Union[str, Path],
                 ) -> Tuple[DatasetManifest, Dict[str, TraceDataset]]:
    """Load an archive written by :func:`export_dataset`.

    The trace format is auto-detected from the manifest (falling back
    to whatever single known format exists per site directory).
    """
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} under {root}")
    manifest = DatasetManifest.from_json(manifest_path.read_text())

    datasets: Dict[str, TraceDataset] = {}
    for code, expected in manifest.sites.items():
        path = _site_traces_path(root, code, manifest.trace_format)
        dataset = TraceDataset.load(path)
        if len(dataset) != expected:
            raise ValueError(
                f"site {code}: manifest says {expected} traces, "
                f"file has {len(dataset)}")
        datasets[code] = dataset
    return manifest, datasets
