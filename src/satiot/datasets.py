"""Dataset archival in the paper's release layout.

The paper publishes its traces as the *SINet* dataset (per-site files
plus metadata).  This module writes a simulated campaign in the same
shape — one traces file per site plus a JSON manifest — and loads such
an archive back, so analyses can run on archived data without
re-simulation.

Since the trace data plane went columnar, archives support three
formats (recorded in the manifest and auto-detected on load):

``csv``
    Text, interoperable, one row per beacon (the original layout).
``jsonl``
    JSON lines; same row model, typed values.
``npz``
    Binary column archive — NumPy arrays plus string-interning tables,
    compressed.  Value-exact and several times smaller than CSV; the
    default for large campaigns.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .core.campaign import PassiveCampaignResult
from .groundstation.traces import (TRACE_FORMATS, TraceColumns,
                                   TraceDataset, _block_text_rows,
                                   _FIELD_ORDER, iter_sorted_chunks)

__all__ = ["DatasetManifest", "export_dataset", "load_dataset",
           "read_manifest", "NPZ_AUTO_THRESHOLD"]

MANIFEST_NAME = "manifest.json"

#: ``trace_format="auto"`` switches to the binary column archive at
#: this many traces — text stays the default for small, eyeball-able
#: runs, large campaigns get the compact format.
NPZ_AUTO_THRESHOLD = 20_000


@dataclass(frozen=True)
class DatasetManifest:
    """Top-level metadata of an archived campaign."""

    name: str
    seed: int
    days: float
    sites: Dict[str, int]            # site code -> trace count
    constellations: Dict[str, int]   # name -> satellite count
    total_traces: int
    #: On-disk format of the per-site trace files (csv/jsonl/npz).
    trace_format: str = "csv"

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DatasetManifest":
        data = json.loads(text)
        # Archives written before the columnar data plane carry no
        # trace_format field; they are CSV by construction.
        data.setdefault("trace_format", "csv")
        return cls(**data)


def _resolve_format(trace_format: str, total_traces: int) -> str:
    if trace_format == "auto":
        return "npz" if total_traces >= NPZ_AUTO_THRESHOLD else "csv"
    if trace_format not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {trace_format!r}; "
                         f"choose from {TRACE_FORMATS} or 'auto'")
    return trace_format


def _site_blocks(dataset: TraceDataset,
                 code: str) -> List[TraceColumns]:
    """Per-block site filter; row order matches a consolidated select."""
    blocks = []
    for block in dataset.blocks():
        mask = block.string_column("site").mask_eq(code)
        if mask.any():
            blocks.append(block.take(mask))
    return blocks


def _export_site_streaming(dataset: TraceDataset, code: str,
                           path: Path, fmt: str) -> int:
    """Write one site's traces time-sorted without consolidating.

    Row-for-row (and therefore byte-for-byte) identical to
    ``dataset.by_site(code).sorted_by_time().save(path)``: per-block
    site filtering preserves the consolidated row order, and
    :func:`iter_sorted_chunks` replays the same stable time sort in
    bounded chunks.  Peak memory is one chunk plus the site's time
    column instead of the whole campaign.
    """
    blocks = _site_blocks(dataset, code)
    total = sum(block.n for block in blocks)
    chunks = iter_sorted_chunks(blocks)
    if fmt == "csv":
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(_FIELD_ORDER))
            writer.writeheader()
            for chunk in chunks:
                for row in _block_text_rows(chunk):
                    writer.writerow(row)
    elif fmt == "jsonl":
        with path.open("w") as fh:
            for chunk in chunks:
                for row in _block_text_rows(chunk):
                    fh.write(json.dumps(row) + "\n")
    else:
        raise ValueError(
            f"streaming export supports csv/jsonl, not {fmt!r}")
    return total


def export_dataset(result: PassiveCampaignResult,
                   root: Union[str, Path],
                   name: str = "sinet-sim",
                   trace_format: str = "csv") -> DatasetManifest:
    """Write a campaign as ``root/<SITE>/traces.<fmt>`` + manifest.

    ``trace_format`` may be ``csv``, ``jsonl``, ``npz`` or ``auto``
    (npz for runs with at least :data:`NPZ_AUTO_THRESHOLD` traces,
    csv below).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    fmt = _resolve_format(trace_format, result.total_traces)

    site_counts: Dict[str, int] = {}
    for code, site_result in result.site_results.items():
        site_dir = root / code
        site_dir.mkdir(exist_ok=True)
        path = site_dir / f"traces.{fmt}"
        if fmt in ("csv", "jsonl"):
            # Text conversion streams column-block-by-block; the NPZ
            # writer needs the consolidated (canonically re-interned)
            # columns anyway, so it keeps the in-RAM path.
            site_counts[code] = _export_site_streaming(
                result.dataset, code, path, fmt)
        else:
            dataset = result.dataset.by_site(code).sorted_by_time()
            dataset.save(path, trace_format=fmt)
            site_counts[code] = len(dataset)

    manifest = DatasetManifest(
        name=name,
        seed=result.config.seed,
        days=result.config.days,
        sites=site_counts,
        constellations={c.name: len(c)
                        for c in result.constellations.values()},
        total_traces=result.total_traces,
        trace_format=fmt,
    )
    (root / MANIFEST_NAME).write_text(manifest.to_json() + "\n")
    return manifest


def read_manifest(root: Union[str, Path]) -> DatasetManifest:
    """O(1) archive metadata: read only ``manifest.json``.

    Unlike :func:`load_dataset` this never opens a trace file, so it is
    fast regardless of archive size; callers that only need counts and
    format (``satiot dataset info``) should prefer it.
    """
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} under {root}")
    return DatasetManifest.from_json(manifest_path.read_text())


def _site_traces_path(root: Path, code: str, fmt: str) -> Path:
    """Locate a site's trace file, tolerating a format mismatch.

    The manifest's ``trace_format`` is authoritative, but archives
    rewritten by hand (or pre-columnar ones) are still loadable as long
    as exactly one known format is present on disk.
    """
    preferred = root / code / f"traces.{fmt}"
    if preferred.exists():
        return preferred
    candidates = [root / code / f"traces.{alt}" for alt in TRACE_FORMATS]
    existing = [p for p in candidates if p.exists()]
    if len(existing) == 1:
        return existing[0]
    raise FileNotFoundError(f"missing site file {preferred}")


def load_dataset(root: Union[str, Path],
                 ) -> Tuple[DatasetManifest, Dict[str, TraceDataset]]:
    """Load an archive written by :func:`export_dataset`.

    The trace format is auto-detected from the manifest (falling back
    to whatever single known format exists per site directory).
    """
    root = Path(root)
    manifest = read_manifest(root)

    datasets: Dict[str, TraceDataset] = {}
    for code, expected in manifest.sites.items():
        path = _site_traces_path(root, code, manifest.trace_format)
        dataset = TraceDataset.load(path)
        if len(dataset) != expected:
            raise ValueError(
                f"site {code}: manifest says {expected} traces, "
                f"file has {len(dataset)}")
        datasets[code] = dataset
    return manifest, datasets
