"""Dataset archival in the paper's release layout.

The paper publishes its traces as the *SINet* dataset (per-site files
plus metadata).  This module writes a simulated campaign in the same
shape — one traces CSV per site plus a JSON manifest — and loads such an
archive back, so analyses can run on archived data without
re-simulation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Tuple, Union

from .core.campaign import PassiveCampaignResult
from .groundstation.traces import TraceDataset

__all__ = ["DatasetManifest", "export_dataset", "load_dataset"]

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class DatasetManifest:
    """Top-level metadata of an archived campaign."""

    name: str
    seed: int
    days: float
    sites: Dict[str, int]            # site code -> trace count
    constellations: Dict[str, int]   # name -> satellite count
    total_traces: int

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DatasetManifest":
        data = json.loads(text)
        return cls(**data)


def export_dataset(result: PassiveCampaignResult,
                   root: Union[str, Path],
                   name: str = "sinet-sim") -> DatasetManifest:
    """Write a campaign as ``root/<SITE>/traces.csv`` + manifest."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)

    site_counts: Dict[str, int] = {}
    for code, site_result in result.site_results.items():
        site_dir = root / code
        site_dir.mkdir(exist_ok=True)
        dataset = result.dataset.by_site(code).sorted_by_time()
        dataset.to_csv(site_dir / "traces.csv")
        site_counts[code] = len(dataset)

    manifest = DatasetManifest(
        name=name,
        seed=result.config.seed,
        days=result.config.days,
        sites=site_counts,
        constellations={c.name: len(c)
                        for c in result.constellations.values()},
        total_traces=result.total_traces,
    )
    (root / MANIFEST_NAME).write_text(manifest.to_json() + "\n")
    return manifest


def load_dataset(root: Union[str, Path],
                 ) -> Tuple[DatasetManifest, Dict[str, TraceDataset]]:
    """Load an archive written by :func:`export_dataset`."""
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} under {root}")
    manifest = DatasetManifest.from_json(manifest_path.read_text())

    datasets: Dict[str, TraceDataset] = {}
    for code, expected in manifest.sites.items():
        csv_path = root / code / "traces.csv"
        if not csv_path.exists():
            raise FileNotFoundError(f"missing site file {csv_path}")
        dataset = TraceDataset.from_csv(csv_path)
        if len(dataset) != expected:
            raise ValueError(
                f"site {code}: manifest says {expected} traces, "
                f"file has {len(dataset)}")
        datasets[code] = dataset
    return manifest, datasets
