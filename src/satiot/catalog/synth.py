"""Walker-shell mega-constellation synthesizer.

Scales :func:`satiot.constellations.shells.generate_shell_tles` from
the paper's ~39 Table-3 satellites to Starlink-class multi-shell fleets
(thousands of objects), dumped as re-ingestable 3LE.  The output is the
repo's stand-in for a live Celestrak catalog: the committed test
fixture ``tests/fixtures/megaconst_5k.3le.gz`` is exactly
``synthesize_mega_constellation(MEGACONST_5K, seed=FIXTURE_SEED)``
written through :func:`~satiot.catalog.ingest.write_catalog` (pinned
gzip mtime, so regeneration is byte-identical).

Satellite names follow the ``<CONST>-<SHELL>-<NNNN>`` convention that
:func:`~satiot.catalog.db.derive_group` inverts, so shell membership
survives a dump → ingest round-trip as the database ``group`` column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..constellations.shells import ShellSpec, generate_shell_tles
from ..orbits.tle import TLE

__all__ = ["FIXTURE_SEED", "MEGACONST_5K", "MegaConstellationSpec",
           "synthesize_mega_constellation"]

#: Seed of the committed ``tests/fixtures/megaconst_5k.3le.gz`` fixture.
FIXTURE_SEED = 2025


@dataclass(frozen=True)
class MegaConstellationSpec:
    """A multi-shell constellation: stacked Walker shells, one epoch.

    ``norad_base`` starts the contiguous catalog-number block; shells
    occupy consecutive sub-blocks in declaration order.
    """

    name: str
    shells: Tuple[ShellSpec, ...]
    norad_base: int
    epochyr: int = 25
    epochdays: float = 100.0

    def __post_init__(self) -> None:
        if not self.shells:
            raise ValueError("a mega-constellation needs >= 1 shell")
        if len({shell.name for shell in self.shells}) != len(self.shells):
            raise ValueError("shell names must be unique")
        if not 0 <= self.norad_base <= 99999 - self.total_count:
            raise ValueError(
                f"norad block [{self.norad_base}, "
                f"{self.norad_base + self.total_count}) exceeds the "
                f"5-digit catalog-number space")

    @property
    def total_count(self) -> int:
        return sum(shell.count for shell in self.shells)

    def shell_norad_base(self, shell_name: str) -> int:
        """First catalog number of the named shell's sub-block."""
        norad = self.norad_base
        for shell in self.shells:
            if shell.name == shell_name:
                return norad
            norad += shell.count
        raise KeyError(f"no shell {shell_name!r} in {self.name}")


#: A 5000-satellite, five-shell Starlink-style LEO mega-constellation:
#: two dense mid-inclination shells, a polar-adjacent shell for high
#: latitudes, a sun-synchronous shell and a low equatorial-ish shell.
MEGACONST_5K = MegaConstellationSpec(
    name="MEGA",
    shells=(
        ShellSpec("SHELL-A", count=1584, altitude_min_km=540.0,
                  altitude_max_km=560.0, inclination_deg=53.0,
                  planes=72),
        ShellSpec("SHELL-B", count=1584, altitude_min_km=530.0,
                  altitude_max_km=550.0, inclination_deg=53.2,
                  planes=72, raan_offset_deg=2.5),
        ShellSpec("SHELL-C", count=720, altitude_min_km=560.0,
                  altitude_max_km=580.0, inclination_deg=70.0,
                  planes=36),
        ShellSpec("SHELL-D", count=520, altitude_min_km=604.0,
                  altitude_max_km=626.0, inclination_deg=97.6,
                  planes=20),
        ShellSpec("SHELL-E", count=592, altitude_min_km=335.0,
                  altitude_max_km=345.0, inclination_deg=42.0,
                  planes=28),
    ),
    norad_base=70000,
)
assert MEGACONST_5K.total_count == 5000


def synthesize_mega_constellation(spec: MegaConstellationSpec
                                  = MEGACONST_5K,
                                  seed: int = FIXTURE_SEED,
                                  ) -> List[TLE]:
    """Generate every element set of a multi-shell constellation.

    Deterministic: the same ``(spec, seed)`` produces byte-identical
    TLE lines (each shell's RNG is keyed by the seed and its norad
    sub-block, exactly as in the Table-3 generator).  Names are
    ``<spec.name>-<shell.name>-<NNNN>`` with a 1-based member number
    zero-padded to the shell's width.
    """
    tles: List[TLE] = []
    norad = spec.norad_base
    for shell in spec.shells:
        width = max(2, len(str(shell.count)))
        shell_tles = generate_shell_tles(
            shell, epochyr=spec.epochyr, epochdays=spec.epochdays,
            norad_base=norad, seed=seed)
        for idx, tle in enumerate(shell_tles):
            tles.append(tle.with_name(
                f"{spec.name}-{shell.name}-{idx + 1:0{width}d}"))
        norad += shell.count
    return tles
