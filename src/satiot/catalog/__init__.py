"""Catalog layer: TLE database + catalog-scale fleet materialization.

The measured study runs over ~39 synthetic Table-3 satellites; every
"production scale" claim needs the substrate real services answer over —
a queryable element-set catalog covering thousands of objects.  This
package provides that substrate, offline (files only, no network):

* :mod:`~satiot.catalog.ingest` — a strict Celestrak-format (TLE/3LE)
  file reader with checksum/epoch validation and line-accurate errors,
  plus the inverse writers that make every synthesized fleet
  re-ingestable;
* :mod:`~satiot.catalog.db` — :class:`TleDb`, a sqlite-backed element
  store keeping per-NORAD epoch **history** with ``insert`` / ``get`` /
  ``history`` / ``find`` / ``stats`` verbs, group/name/norad selectors
  and "latest element set as of time T" queries;
* :mod:`~satiot.catalog.synth` — a Walker-shell mega-constellation
  synthesizer scaling :func:`~satiot.constellations.shells.generate_shell_tles`
  to multi-shell 5k-satellite fleets dumped as 3LE;
* :mod:`~satiot.catalog.bridge` — the catalog→fleet bridge that
  materializes any selector into :class:`~satiot.orbits.sgp4_batch.SGP4Batch`
  / ``find_passes_fleet`` inputs (flowing through
  :meth:`~satiot.runtime.EphemerisCache.constellation_grid` under the
  fleet-fingerprint key) and into :class:`~satiot.constellations.catalog.Constellation`
  objects for campaigns, the scheduler and ``satiot serve``.

The ``satiot catalog`` CLI family mirrors the DB verbs; see
``docs/catalog.md``.
"""

from .bridge import (FleetSelection, constellation_from_catalog,
                     fleet_passes, open_any_catalog, select_fleet,
                     shell_groups)
from .db import (DbStats, InsertStats, TleDb, TleNotFound, derive_group,
                 parse_selector)
from .ingest import (CatalogEntry, CatalogFormatError, format_catalog,
                     iter_catalog, load_tles, read_catalog, write_catalog)
from .synth import (FIXTURE_SEED, MEGACONST_5K, MegaConstellationSpec,
                    synthesize_mega_constellation)

__all__ = [
    "CatalogEntry",
    "CatalogFormatError",
    "DbStats",
    "FIXTURE_SEED",
    "FleetSelection",
    "InsertStats",
    "MEGACONST_5K",
    "MegaConstellationSpec",
    "TleDb",
    "TleNotFound",
    "constellation_from_catalog",
    "derive_group",
    "fleet_passes",
    "format_catalog",
    "iter_catalog",
    "load_tles",
    "open_any_catalog",
    "parse_selector",
    "read_catalog",
    "select_fleet",
    "shell_groups",
    "synthesize_mega_constellation",
    "write_catalog",
]
