"""Catalog → fleet bridge.

Materializes any :class:`~satiot.catalog.db.TleDb` selection into the
batch-propagation machinery: :class:`~satiot.orbits.sgp4.SGP4`
propagator lists for :class:`~satiot.orbits.sgp4_batch.SGP4Batch` /
:func:`~satiot.orbits.passes.find_passes_fleet`, flowing through
:meth:`~satiot.runtime.ephemeris_cache.EphemerisCache.constellation_grid`
under the selection's fleet fingerprint — and into
:class:`~satiot.constellations.catalog.Constellation` objects so
campaigns, the ground-station scheduler and ``satiot serve`` answer
over the full catalog instead of the 39 built-in Table-3 satellites.

The same :class:`FleetSelection` drives both directions; its
fingerprint is stable across dump → ingest → select round-trips
(storage keeps verbatim lines), so a serving tier and a benchmark
sweeping the same catalog share ephemeris-cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..constellations.catalog import (Constellation, ConstellationSpec,
                                      DtSRadioProfile, Satellite)
from ..constellations.shells import ShellSpec
from ..orbits.constants import EARTH_RADIUS_KM
from ..orbits.frames import GeodeticPoint
from ..orbits.kepler import semi_major_axis_km
from ..orbits.passes import ContactWindow, find_passes_fleet
from ..orbits.sgp4 import SGP4
from ..orbits.timebase import Epoch
from ..orbits.tle import TLE
from ..runtime.ephemeris_cache import (EphemerisCache,
                                       constellation_fingerprint,
                                       get_default_cache)
from .db import TleDb, TleNotFound, derive_group
from .ingest import CatalogEntry, read_catalog

__all__ = ["FleetSelection", "constellation_from_catalog",
           "fleet_passes", "open_any_catalog", "select_fleet",
           "shell_groups"]

#: Generic UHF DtS profile for catalog-built constellations whose radio
#: parameters the catalog does not carry (TLEs hold orbits, not radios).
DEFAULT_CATALOG_RADIO = DtSRadioProfile(frequency_hz=401.0e6)


@dataclass(frozen=True)
class FleetSelection:
    """One materialized catalog selection, NORAD-ordered.

    Derived products (element sets, propagators, the joint fleet
    fingerprint) are computed lazily and cached on the instance —
    building 5 000 :class:`SGP4` propagators is deliberate, not a
    side effect of selecting rows.
    """

    entries: Tuple[CatalogEntry, ...]
    selectors: Tuple[str, ...] = ()
    as_of_jd: Optional[float] = None
    source: str = ""
    # cached_property needs a mutable namespace on a frozen dataclass
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def tles(self) -> Tuple[TLE, ...]:
        if "tles" not in self._cache:
            self._cache["tles"] = tuple(e.tle for e in self.entries)
        return self._cache["tles"]

    @property
    def propagators(self) -> List[SGP4]:
        if "propagators" not in self._cache:
            self._cache["propagators"] = [SGP4(t) for t in self.tles]
        return self._cache["propagators"]

    @property
    def fingerprint(self) -> str:
        """Joint fleet fingerprint — the
        :meth:`EphemerisCache.constellation_grid` cache identity."""
        if "fingerprint" not in self._cache:
            self._cache["fingerprint"] = \
                constellation_fingerprint(self.tles)
        return self._cache["fingerprint"]

    @property
    def epoch(self) -> Epoch:
        """Reference instant: the newest member epoch (the freshest
        element set in the selection)."""
        if not self.entries:
            raise ValueError("empty selection has no epoch")
        return Epoch(max(e.epoch_jd for e in self.entries))

    @property
    def groups(self) -> Tuple[str, ...]:
        """Per-member group tag (ingest group, else derived from the
        name), parallel to :attr:`entries`."""
        return tuple(e.group or derive_group(e.name)
                     for e in self.entries)


def open_any_catalog(path: Union[str, Path]) -> TleDb:
    """Open a catalog source as a :class:`TleDb`.

    A sqlite file (detected by its 16-byte magic header) is opened in
    place; anything else is treated as a TLE/3LE text file (possibly
    gzip'd) and bulk-loaded into an in-memory database with groups
    derived from names.  Either way callers get the same verbs.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no catalog at {path}")
    with path.open("rb") as fh:
        is_sqlite = fh.read(16) == b"SQLite format 3\x00"
    if is_sqlite:
        return TleDb(path)
    db = TleDb(":memory:")
    db.insert(read_catalog(path), group_from_name=True)
    return db


def select_fleet(source: Union[TleDb, str, Path],
                 selectors: Union[str, Sequence[str], None] = None,
                 as_of_jd: Optional[float] = None) -> FleetSelection:
    """Materialize a catalog selection into a :class:`FleetSelection`.

    ``source`` is an open :class:`TleDb` or a path accepted by
    :func:`open_any_catalog`.  ``selectors`` follow
    :func:`~satiot.catalog.db.parse_selector` (``None`` selects the
    whole catalog); ``as_of_jd`` picks each object's latest element
    set at or before that Julian date.
    """
    close_after = False
    if not isinstance(source, TleDb):
        db: TleDb = open_any_catalog(source)
        close_after = True
    else:
        db = source
    try:
        entries = db.get(selectors, as_of_jd=as_of_jd)
    finally:
        if close_after:
            db.close()
    if not entries:
        raise TleNotFound("selection matches no element set")
    if selectors is None:
        selector_tuple: Tuple[str, ...] = ()
    elif isinstance(selectors, str):
        selector_tuple = (selectors,)
    else:
        selector_tuple = tuple(selectors)
    return FleetSelection(
        entries=tuple(entries), selectors=selector_tuple,
        as_of_jd=as_of_jd,
        source=db.path if not close_after else str(source))


def shell_groups(selection: FleetSelection) -> Dict[str, List[int]]:
    """Member indices per group, in first-appearance order."""
    groups: Dict[str, List[int]] = {}
    for index, group in enumerate(selection.groups):
        groups.setdefault(group, []).append(index)
    return groups


def fleet_passes(selection: FleetSelection,
                 observers: Sequence[GeodeticPoint],
                 duration_s: float,
                 epoch: Optional[Epoch] = None,
                 cache: Union[EphemerisCache, None, bool] = True,
                 coarse_step_s: float = 30.0,
                 min_elevation_deg: float = 10.0,
                 refine_tol_s: float = 0.5,
                 refine: str = "interp",
                 ) -> List[List[List[ContactWindow]]]:
    """Pass sweep of the whole selection: ``results[sat][observer]``.

    Runs through :meth:`EphemerisCache.find_passes_fleet` — one
    :meth:`~EphemerisCache.constellation_grid` fill under the
    selection's fleet fingerprint, one GMST/TEME→ECEF evaluation —
    and is bit-identical to nested per-satellite
    ``PassPredictor.find_passes`` calls (the batch layer's contract).

    ``cache=True`` uses the process-default cache (falling back to the
    uncached fleet path when disabled), an explicit
    :class:`EphemerisCache` uses that instance, and ``cache=None`` /
    ``False`` bypasses caching.
    """
    if epoch is None:
        epoch = selection.epoch
    resolved: Optional[EphemerisCache]
    if cache is True:
        resolved = get_default_cache()
    elif cache is False or cache is None:
        resolved = None
    else:
        resolved = cache
    if resolved is not None:
        return resolved.find_passes_fleet(
            selection.propagators, observers, epoch, duration_s,
            coarse_step_s=coarse_step_s,
            min_elevation_deg=min_elevation_deg,
            refine_tol_s=refine_tol_s, refine=refine)
    return find_passes_fleet(
        selection.propagators, observers, epoch, duration_s,
        coarse_step_s=coarse_step_s,
        min_elevation_deg=min_elevation_deg,
        refine_tol_s=refine_tol_s, refine=refine)


def _shell_spec_for(group: str, tles: Sequence[TLE]) -> ShellSpec:
    """Reconstruct an approximate :class:`ShellSpec` from element sets.

    The catalog stores orbits, not design documents, so the shell's
    altitude band and inclination are recovered from its members.
    Only used for Constellation metadata (footprint areas, shell
    labels) — propagation always uses the verbatim element sets.
    """
    altitudes = [semi_major_axis_km(t.mean_motion_rev_day)
                 - EARTH_RADIUS_KM for t in tles]
    inclination = sum(t.inclination_deg for t in tles) / len(tles)
    eccentricity = max(t.eccentricity for t in tles)
    return ShellSpec(
        name=group, count=len(tles),
        altitude_min_km=min(altitudes), altitude_max_km=max(altitudes),
        inclination_deg=min(max(inclination, 0.0), 180.0),
        eccentricity=min(eccentricity, 0.0499))


def constellation_from_catalog(source: Union[TleDb, str, Path,
                                             FleetSelection],
                               selectors: Union[str, Sequence[str],
                                                None] = None,
                               name: str = "catalog",
                               radio: Optional[DtSRadioProfile] = None,
                               as_of_jd: Optional[float] = None,
                               ) -> Constellation:
    """Build a campaign/serving-ready :class:`Constellation` from the
    catalog.

    Shells are the selection's groups (reconstructed from member
    orbits); every satellite carries ``radio`` (a generic UHF DtS
    profile by default — catalogs describe orbits, not payloads).
    The result plugs into everything a Table-3 constellation does:
    ``daily_presence_hours``, the scheduler's ``predict_windows``,
    and ``ConstellationService``.
    """
    if isinstance(source, FleetSelection):
        selection = source
    else:
        selection = select_fleet(source, selectors, as_of_jd=as_of_jd)
    radio = radio or DEFAULT_CATALOG_RADIO
    groups = shell_groups(selection)
    shells = tuple(
        _shell_spec_for(group, [selection.tles[i] for i in indices])
        for group, indices in groups.items())
    spec = ConstellationSpec(
        name=name, operator_region="catalog", shells=shells,
        radio=radio,
        norad_base=min(t.norad_id for t in selection.tles))
    group_of = {i: group for group, indices in groups.items()
                for i in indices}
    satellites = tuple(
        Satellite(tle=tle, constellation_name=name, radio=radio,
                  shell_name=group_of[i])
        for i, tle in enumerate(selection.tles))
    return Constellation(spec=spec, satellites=satellites)
