"""Strict Celestrak-format (TLE/3LE) catalog file ingest.

Celestrak distributes catalogs as plain text: repeating ``name / line 1 /
line 2`` triples (3LE) or bare ``line 1 / line 2`` pairs (2LE), possibly
gzip-compressed.  This module reads such files **offline** — the repo
never fetches from the network; fixtures under ``tests/fixtures/`` and
synthesized dumps stand in for live catalogs.

Unlike the permissive :func:`satiot.orbits.tle.parse_tle_file` (which
skips anything that does not look like a line 1), ingest is *strict*:
checksums are verified, epochs validated, and any structural damage —
orphan line 2, two consecutive name lines, a dangling line 1 at EOF —
raises :class:`CatalogFormatError` carrying the 1-based line number, so
a corrupt thousand-satellite file points at the broken record instead of
silently dropping it.

The inverse direction (:func:`format_catalog` / :func:`write_catalog`)
renders element sets back to 2LE/3LE text, gzip-compressing by suffix
with a pinned mtime so identical fleets produce byte-identical dumps.
Everything the synthesizer or ``satiot tle --format 3le`` writes
re-ingests through this parser (the round-trip is tested).
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Sequence, Union

from ..orbits.tle import TLE, TLEError, format_tle, parse_tle

__all__ = ["CatalogEntry", "CatalogFormatError", "format_catalog",
           "iter_catalog", "load_tles", "open_catalog", "read_catalog",
           "write_catalog"]

#: Recognized catalog serializations: named triples or bare pairs.
CATALOG_FORMATS = ("3le", "2le")


class CatalogFormatError(TLEError):
    """A structurally damaged catalog file, located by line number."""

    def __init__(self, lineno: int, reason: str,
                 source: str = "<stream>") -> None:
        self.lineno = lineno
        self.reason = reason
        self.source = source
        super().__init__(f"{source}:{lineno}: {reason}")


@dataclass(frozen=True)
class CatalogEntry:
    """One parsed element set plus its verbatim lines and location.

    The raw lines are what :class:`~satiot.catalog.db.TleDb` archives —
    storage round-trips bytes, not floats.
    """

    tle: TLE
    line1: str
    line2: str
    lineno: int  # 1-based line number of ``line1`` in the source
    #: ingest group (constellation/shell tag) — assigned by
    #: :meth:`~satiot.catalog.db.TleDb.insert`, empty for file reads
    group: str = ""

    @property
    def name(self) -> str:
        return self.tle.name

    @property
    def norad_id(self) -> int:
        return self.tle.norad_id

    @property
    def epoch_jd(self) -> float:
        return self.tle.epoch.jd


def _looks_like_element_line(line: str, digit: str) -> bool:
    return line.startswith(f"{digit} ") and len(line) >= 69


def open_catalog(path: Union[str, Path]) -> IO[str]:
    """Open a catalog file for text reading, gunzipping ``*.gz``."""
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="ascii")
    return path.open("r", encoding="ascii")


def iter_catalog(lines: Iterable[str],
                 validate_checksum: bool = True,
                 source: str = "<stream>") -> Iterator[CatalogEntry]:
    """Yield :class:`CatalogEntry` from TLE/3LE text, strictly.

    Accepts mixed 2LE/3LE content (a record is a ``line 1``/``line 2``
    pair, optionally preceded by one name line).  Blank lines are
    allowed between records.  Anything else is an error located by line
    number: orphan ``line 2``, consecutive name lines, dangling name or
    ``line 1`` at EOF, checksum/epoch/field failures from
    :func:`~satiot.orbits.tle.parse_tle`.
    """
    pending_name = ""
    pending_name_lineno = 0
    pending_line1 = ""
    pending_line1_lineno = 0
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\r\n")
        if not line.strip():
            if pending_line1:
                raise CatalogFormatError(
                    lineno, "blank line splits an element-set pair",
                    source)
            continue
        if pending_line1:
            if not _looks_like_element_line(line, "2"):
                raise CatalogFormatError(
                    lineno, f"expected line 2 after line 1 of object "
                            f"{pending_line1[2:7].strip()}, got "
                            f"{line[:24]!r}", source)
            try:
                tle = parse_tle(pending_line1, line, name=pending_name,
                                validate_checksum=validate_checksum)
            except CatalogFormatError:
                raise
            except TLEError as error:
                raise CatalogFormatError(
                    pending_line1_lineno, str(error), source) from error
            yield CatalogEntry(tle=tle, line1=pending_line1[:69],
                               line2=line[:69],
                               lineno=pending_line1_lineno)
            pending_name = ""
            pending_line1 = ""
            continue
        if _looks_like_element_line(line, "1"):
            pending_line1 = line
            pending_line1_lineno = lineno
            continue
        if _looks_like_element_line(line, "2"):
            raise CatalogFormatError(
                lineno, "orphan line 2 (no preceding line 1)", source)
        if pending_name:
            raise CatalogFormatError(
                lineno, f"consecutive name lines ({pending_name!r} then "
                        f"{line.strip()!r})", source)
        pending_name = line.strip()
        pending_name_lineno = lineno
    if pending_line1:
        raise CatalogFormatError(
            pending_line1_lineno, "dangling line 1 at end of file",
            source)
    if pending_name:
        raise CatalogFormatError(
            pending_name_lineno,
            f"dangling name line {pending_name!r} at end of file",
            source)


def read_catalog(path: Union[str, Path],
                 validate_checksum: bool = True) -> List[CatalogEntry]:
    """Read a (possibly gzip'd) catalog file into entries, strictly."""
    path = Path(path)
    with open_catalog(path) as fh:
        return list(iter_catalog(fh, validate_checksum=validate_checksum,
                                 source=path.name))


def load_tles(path: Union[str, Path],
              validate_checksum: bool = True) -> List[TLE]:
    """Read a catalog file and return just the element sets."""
    return [entry.tle for entry in
            read_catalog(path, validate_checksum=validate_checksum)]


# ----------------------------------------------------------------------
# Writers (the re-ingestable inverse)
# ----------------------------------------------------------------------
def format_catalog(tles: Sequence[TLE], fmt: str = "3le") -> List[str]:
    """Render element sets as 3LE (named) or 2LE catalog lines."""
    if fmt not in CATALOG_FORMATS:
        raise ValueError(f"unknown catalog format {fmt!r}; "
                         f"choose from {CATALOG_FORMATS}")
    lines: List[str] = []
    for tle in tles:
        line1, line2 = format_tle(tle)
        if fmt == "3le":
            lines.append(tle.name)
        lines.extend([line1, line2])
    return lines


def write_catalog(tles: Sequence[TLE], path: Union[str, Path],
                  fmt: str = "3le") -> int:
    """Write element sets to a catalog file (gzip'd iff ``*.gz``).

    Gzip output pins ``mtime=0`` and omits the embedded filename so
    equal fleets give byte-identical files regardless of where they are
    written — the property the committed test fixture and the
    synthesizer determinism tests rely on.  Returns the number of
    element sets written.
    """
    path = Path(path)
    text = "\n".join(format_catalog(tles, fmt=fmt)) + "\n"
    if path.suffix == ".gz":
        with path.open("wb") as raw, \
                gzip.GzipFile(filename="", fileobj=raw, mode="wb",
                              mtime=0) as fh:
            fh.write(text.encode("ascii"))
    else:
        path.write_text(text, encoding="ascii")
    return len(tles)
