"""`TleDb`: a sqlite-backed element-set archive with epoch history.

Modelled on the `space tle` workflow (insert / get / history / find /
stats against a local archive), adapted to this repo's offline policy:
element sets arrive from catalog files or the synthesizer, never the
network.  The store archives the **verbatim lines** of every element
set — reads hand back byte-identical TLEs, so fingerprints computed
before and after a round-trip through the database agree — keyed by
``(norad_id, epoch)`` so repeated inserts of the same catalog file are
idempotent and each object accumulates an epoch-ordered history.

Selectors address objects three ways (see :func:`parse_selector`)::

    44100            # NORAD catalog number
    norad:44100      # explicit form of the same
    name:MEGA-SHELL-A-0001   # exact (case-insensitive) name
    group:MEGA-SHELL-A       # every object of an ingest group
    MEGA-SHELL-A-0001        # bare text falls back to exact name

"Latest element set as of time T" queries (``as_of_jd=``) return, per
object, the newest element set whose epoch is at or before T — the
element set an operator would actually have propagated at T.
"""

from __future__ import annotations

import re
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..orbits.tle import TLE, format_tle
from .ingest import CatalogEntry, read_catalog

__all__ = ["DbStats", "InsertStats", "TleDb", "TleNotFound",
           "derive_group", "parse_selector"]

#: Trailing ``-<digits>`` member suffix stripped by :func:`derive_group`.
_MEMBER_SUFFIX = re.compile(r"-\d+$")


class TleNotFound(LookupError):
    """No element set matches the selector (and as-of constraint)."""


def derive_group(name: str) -> str:
    """Group of an element set derived from its name.

    Constellation members are conventionally numbered with a trailing
    ``-<digits>`` suffix (``MEGA-SHELL-A-0042``, ``Tianqi-TQ-A-07``);
    stripping it yields the shell/constellation the object belongs to.
    Names without such a suffix are their own group.
    """
    stripped = _MEMBER_SUFFIX.sub("", name.strip())
    return stripped or name.strip()


def parse_selector(text: str) -> Tuple[str, str]:
    """Parse one selector into a ``(kind, value)`` pair.

    ``kind`` is ``norad`` | ``name`` | ``group``.  Bare digits select
    by NORAD id; ``norad:`` / ``name:`` / ``group:`` prefixes are
    explicit; any other bare text selects by exact name.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty selector")
    for prefix in ("norad", "name", "group"):
        if text.lower().startswith(prefix + ":"):
            value = text[len(prefix) + 1:].strip()
            if not value:
                raise ValueError(f"empty {prefix!r} selector: {text!r}")
            if prefix == "norad" and not value.isdigit():
                raise ValueError(
                    f"norad selector must be numeric: {text!r}")
            return prefix, value
    if text.isdigit():
        return "norad", text
    return "name", text


@dataclass(frozen=True)
class InsertStats:
    """Outcome of one :meth:`TleDb.insert` call."""

    inserted: int       # element sets newly archived
    duplicates: int     # (norad, epoch) pairs already present, skipped
    new_objects: int    # NORAD ids seen for the first time

    @property
    def total(self) -> int:
        return self.inserted + self.duplicates


@dataclass(frozen=True)
class DbStats:
    """Database-wide figures behind ``satiot catalog stats``."""

    objects: int
    element_sets: int
    groups: Dict[str, int]             # group -> object count
    first_epoch_jd: Optional[float]
    last_epoch_jd: Optional[float]

    @property
    def epoch_span_days(self) -> float:
        if self.first_epoch_jd is None or self.last_epoch_jd is None:
            return 0.0
        return self.last_epoch_jd - self.first_epoch_jd


_SCHEMA = """
CREATE TABLE IF NOT EXISTS elset (
    norad_id  INTEGER NOT NULL,
    epoch_jd  REAL    NOT NULL,
    name      TEXT    NOT NULL,
    grp       TEXT    NOT NULL DEFAULT '',
    line1     TEXT    NOT NULL,
    line2     TEXT    NOT NULL,
    PRIMARY KEY (norad_id, epoch_jd)
);
CREATE INDEX IF NOT EXISTS idx_elset_name ON elset (name COLLATE NOCASE);
CREATE INDEX IF NOT EXISTS idx_elset_grp ON elset (grp COLLATE NOCASE);
"""


class TleDb:
    """Element-set archive with per-object epoch history.

    ``path`` is a sqlite database file (created on first use) or
    ``":memory:"`` for an ephemeral store.  The instance is also a
    context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "TleDb":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, elements: Iterable[Union[CatalogEntry, TLE]],
               group: str = "",
               group_from_name: bool = False) -> InsertStats:
        """Archive element sets; duplicates are skipped, not errors.

        Accepts parsed :class:`CatalogEntry` rows (their verbatim lines
        are stored) or bare :class:`TLE` values (canonical lines are
        rendered first).  ``group`` tags every inserted row;
        ``group_from_name`` instead derives each row's group from its
        name via :func:`derive_group` (how shell membership of a
        synthesized mega-constellation survives ingest).
        """
        before = self._object_ids()
        inserted = duplicates = 0
        cursor = self._conn.cursor()
        for element in elements:
            if isinstance(element, CatalogEntry):
                tle, line1, line2 = element.tle, element.line1, \
                    element.line2
            else:
                tle = element
                line1, line2 = format_tle(tle)
            grp = derive_group(tle.name) if group_from_name else group
            cursor.execute(
                "INSERT OR IGNORE INTO elset "
                "(norad_id, epoch_jd, name, grp, line1, line2) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (tle.norad_id, float(tle.epoch.jd), tle.name, grp,
                 line1, line2))
            if cursor.rowcount:
                inserted += 1
            else:
                duplicates += 1
        self._conn.commit()
        new_objects = len(self._object_ids() - before)
        return InsertStats(inserted=inserted, duplicates=duplicates,
                           new_objects=new_objects)

    def insert_file(self, path: Union[str, Path], group: str = "",
                    group_from_name: bool = False,
                    validate_checksum: bool = True) -> InsertStats:
        """Ingest a (possibly gzip'd) TLE/3LE catalog file, strictly."""
        return self.insert(
            read_catalog(path, validate_checksum=validate_checksum),
            group=group, group_from_name=group_from_name)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def norad_ids(self, selector: Optional[str] = None) -> List[int]:
        """NORAD ids matched by ``selector`` (all objects if ``None``)."""
        if selector is None:
            return sorted(self._object_ids())
        kind, value = parse_selector(selector)
        if kind == "norad":
            rows = self._conn.execute(
                "SELECT DISTINCT norad_id FROM elset WHERE norad_id=?",
                (int(value),)).fetchall()
        elif kind == "group":
            rows = self._conn.execute(
                "SELECT DISTINCT norad_id FROM elset "
                "WHERE grp=? COLLATE NOCASE", (value,)).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT DISTINCT norad_id FROM elset "
                "WHERE name=? COLLATE NOCASE", (value,)).fetchall()
        return sorted(r[0] for r in rows)

    def _select_ids(self, selectors: Union[str, Sequence[str], None],
                    ) -> List[int]:
        if selectors is None:
            return self.norad_ids()
        if isinstance(selectors, str):
            selectors = [selectors]
        matched: List[int] = []
        seen = set()
        for selector in selectors:
            ids = self.norad_ids(selector)
            if not ids:
                raise TleNotFound(
                    f"selector {selector!r} matches no object")
            for norad in ids:
                if norad not in seen:
                    seen.add(norad)
                    matched.append(norad)
        return sorted(matched)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_object(self, norad_id: int,
                   as_of_jd: Optional[float] = None) -> CatalogEntry:
        """Latest element set of one object (optionally as of a JD)."""
        if as_of_jd is None:
            row = self._conn.execute(
                "SELECT name, grp, line1, line2, epoch_jd FROM elset "
                "WHERE norad_id=? ORDER BY epoch_jd DESC LIMIT 1",
                (norad_id,)).fetchone()
        else:
            row = self._conn.execute(
                "SELECT name, grp, line1, line2, epoch_jd FROM elset "
                "WHERE norad_id=? AND epoch_jd<=? "
                "ORDER BY epoch_jd DESC LIMIT 1",
                (norad_id, float(as_of_jd))).fetchone()
        if row is None:
            constraint = "" if as_of_jd is None else \
                f" with epoch <= JD {as_of_jd:.6f}"
            raise TleNotFound(
                f"no element set for object {norad_id}{constraint}")
        return self._entry(norad_id, row)

    def get(self, selectors: Union[str, Sequence[str], None] = None,
            as_of_jd: Optional[float] = None) -> List[CatalogEntry]:
        """Latest element set per selected object, NORAD-ordered.

        With ``as_of_jd``, each object's newest element set at or
        before that instant; objects whose whole history is later than
        T raise :class:`TleNotFound` (the operator had nothing to
        propagate).
        """
        return [self.get_object(norad, as_of_jd=as_of_jd)
                for norad in self._select_ids(selectors)]

    def history(self, selectors: Union[str, Sequence[str]],
                last: Optional[int] = None) -> List[CatalogEntry]:
        """Every archived element set, epoch-ordered within each object.

        ``last`` keeps only each object's newest ``last`` element sets
        (still returned oldest-first, like ``space tle history``).
        """
        if last is not None and last < 1:
            raise ValueError("last must be >= 1")
        out: List[CatalogEntry] = []
        for norad in self._select_ids(selectors):
            rows = self._conn.execute(
                "SELECT name, grp, line1, line2, epoch_jd FROM elset "
                "WHERE norad_id=? ORDER BY epoch_jd ASC",
                (norad,)).fetchall()
            if last is not None:
                rows = rows[-last:]
            out.extend(self._entry(norad, row) for row in rows)
        return out

    def find(self, text: str) -> List[CatalogEntry]:
        """Latest element set of every object whose name contains
        ``text`` (case-insensitive), NORAD-ordered."""
        pattern = "%" + text.strip().replace("%", r"\%") \
                                    .replace("_", r"\_") + "%"
        rows = self._conn.execute(
            "SELECT DISTINCT norad_id FROM elset "
            r"WHERE name LIKE ? ESCAPE '\' COLLATE NOCASE",
            (pattern,)).fetchall()
        return [self.get_object(r[0]) for r in sorted(rows)]

    def groups(self) -> Dict[str, int]:
        """Object count per (non-empty) ingest group."""
        rows = self._conn.execute(
            "SELECT grp, COUNT(DISTINCT norad_id) FROM elset "
            "WHERE grp != '' GROUP BY grp ORDER BY grp").fetchall()
        return {grp: count for grp, count in rows}

    def stats(self) -> DbStats:
        objects, element_sets, first, last = self._conn.execute(
            "SELECT COUNT(DISTINCT norad_id), COUNT(*), "
            "MIN(epoch_jd), MAX(epoch_jd) FROM elset").fetchone()
        return DbStats(objects=objects, element_sets=element_sets,
                       groups=self.groups(), first_epoch_jd=first,
                       last_epoch_jd=last)

    def __len__(self) -> int:
        return int(self._conn.execute(
            "SELECT COUNT(*) FROM elset").fetchone()[0])

    # ------------------------------------------------------------------
    def _object_ids(self) -> set:
        return {r[0] for r in self._conn.execute(
            "SELECT DISTINCT norad_id FROM elset")}

    @staticmethod
    def _entry(norad_id: int, row: tuple) -> CatalogEntry:
        from ..orbits.tle import parse_tle
        name, grp, line1, line2, _epoch_jd = row
        tle = parse_tle(line1, line2, name=name, validate_checksum=False)
        if tle.norad_id != norad_id:  # pragma: no cover - sanity
            raise TleNotFound(
                f"archived lines of object {norad_id} carry catalog "
                f"number {tle.norad_id}")
        return CatalogEntry(tle=tle, line1=line1, line2=line2,
                            lineno=0, group=grp)
