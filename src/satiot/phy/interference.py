"""Physics-derived capture probabilities for contended uplinks.

The MAC's capture table (`MacConfig.capture_probability`) is a
calibration constant by default.  This module derives those numbers
from the PHY instead: with ``k`` same-SF LoRa transmissions overlapping
at the satellite, the strongest survives if it exceeds the aggregate of
the others by the co-channel rejection threshold (~6 dB for same-SF
LoRa).  Received powers are log-normal because the contenders sit at
different ranges/elevations across the footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["CaptureModel"]


@dataclass(frozen=True)
class CaptureModel:
    """Monte-Carlo capture probability under log-normal power spread."""

    #: Same-SF co-channel rejection threshold (dB); Semtech quote ~6 dB.
    capture_threshold_db: float = 6.0
    #: Std-dev of received-power spread across footprint devices (dB).
    power_spread_db: float = 8.0
    samples: int = 20_000
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.capture_threshold_db < 0:
            raise ValueError("capture threshold must be non-negative")
        if self.power_spread_db < 0:
            raise ValueError("power spread must be non-negative")
        if self.samples <= 0:
            raise ValueError("need at least one sample")

    # ------------------------------------------------------------------
    def survival_probability(self, contenders: int) -> float:
        """Probability a *given* transmission survives a k-way overlap.

        The tagged signal survives when its power exceeds the linear sum
        of the other ``contenders - 1`` signals by the threshold.
        """
        if contenders <= 0:
            raise ValueError("need at least one transmitter")
        if contenders == 1:
            return 1.0
        rng = np.random.default_rng(self.seed + contenders)
        tagged_db = rng.normal(0.0, self.power_spread_db,
                               size=self.samples)
        others_db = rng.normal(0.0, self.power_spread_db,
                               size=(self.samples, contenders - 1))
        interference_mw = np.sum(10.0 ** (others_db / 10.0), axis=1)
        sir_db = tagged_db - 10.0 * np.log10(interference_mw)
        return float(np.mean(sir_db >= self.capture_threshold_db))

    def capture_table(self, max_contenders: int = 6) -> Dict[int, float]:
        """A `MacConfig.capture_probability`-shaped table.

        Entry ``k`` is the probability that any given one of ``k``
        simultaneous transmitters is decoded.
        """
        if max_contenders <= 0:
            raise ValueError("max contenders must be positive")
        return {k: self.survival_probability(k)
                for k in range(1, max_contenders + 1)}
