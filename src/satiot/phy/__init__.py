"""LoRa PHY substrate: modulation, antennas, link budget, channel."""

from .adaptation import (SfOperatingPoint, select_spreading_factor,
                         sf_trade_table)
from .antennas import (ANTENNAS_BY_NAME, DIPOLE, FIVE_EIGHTHS_WAVE,
                       QUARTER_WAVE, Antenna)
from .channel import (ChannelParams, DtSChannel, PacketSamples,
                      ar1_shadowing_db)
from .doppler_compensation import (CompensationErrorBudget,
                                   DopplerCompensator)
from .error_model import packet_error_rate, reception_probability
from .interference import CaptureModel
from .regulatory import (ETSI_433, ETSI_868_G1, BandPlan,
                         DutyCycleLimiter)
from .link_budget import (LinkBudget, elevation_excess_loss_db,
                          free_space_path_loss_db)
from .lora import (SNR_LIMIT_DB, LoRaModulation, noise_floor_dbm,
                   sensitivity_dbm)
from .nbiot import REPETITIONS, NbIotUplink

__all__ = [
    "SfOperatingPoint", "select_spreading_factor", "sf_trade_table",
    "Antenna", "DIPOLE", "QUARTER_WAVE", "FIVE_EIGHTHS_WAVE",
    "ANTENNAS_BY_NAME",
    "ChannelParams", "DtSChannel", "PacketSamples", "ar1_shadowing_db",
    "packet_error_rate", "reception_probability",
    "CaptureModel",
    "BandPlan", "DutyCycleLimiter", "ETSI_433", "ETSI_868_G1",
    "CompensationErrorBudget", "DopplerCompensator",
    "LinkBudget", "free_space_path_loss_db", "elevation_excess_loss_db",
    "LoRaModulation", "SNR_LIMIT_DB", "noise_floor_dbm", "sensitivity_dbm",
    "NbIotUplink", "REPETITIONS",
]
