"""NB-IoT as an alternative DtS physical layer.

The paper's introduction names two terrestrial technologies that reach
LEO altitudes directly: LoRa and NB-IoT (3GPP Release 13+, deployed for
satellite in Release 17 NTN).  This module models the NB-IoT uplink
(NPUSCH) well enough to compare it against the LoRa links the measured
constellations use: single-tone transmission, coverage extension by
repetition, and the coupling-loss budget.

The model follows the standard engineering abstractions (Wang et al.,
"A Primer on 3GPP Narrowband Internet of Things", cited by the paper):
a single-tone 15 kHz uplink delivers ~17 kbps at reference coverage and
trades data rate 1:1 for link budget through repetitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["NbIotUplink", "REPETITIONS"]

#: Valid NPUSCH repetition values (3GPP 36.211).
REPETITIONS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class NbIotUplink:
    """A single-tone NPUSCH uplink configuration."""

    repetitions: int = 1
    subcarrier_spacing_hz: float = 15_000.0
    #: Physical-layer rate of a single-tone transmission at one
    #: repetition (bits/s); ~16.9 kbps for 15 kHz, ~4.2 kbps for
    #: 3.75 kHz tones.
    base_rate_bps: float = 16_900.0
    #: SNR needed at one repetition for ~10 % BLER.
    base_snr_db: float = -2.0
    noise_figure_db: float = 5.0
    #: Protocol overhead per transport block (headers, CRC, DCI).
    overhead_bytes: int = 10

    def __post_init__(self) -> None:
        if self.repetitions not in REPETITIONS:
            raise ValueError(
                f"repetitions must be one of {REPETITIONS}")
        if self.subcarrier_spacing_hz not in (3750.0, 15_000.0):
            raise ValueError("NB-IoT tones are 3.75 or 15 kHz")
        if self.base_rate_bps <= 0:
            raise ValueError("base rate must be positive")

    # ------------------------------------------------------------------
    @property
    def effective_rate_bps(self) -> float:
        """Throughput after repetition (each block sent R times)."""
        return self.base_rate_bps / self.repetitions

    @property
    def required_snr_db(self) -> float:
        """SNR threshold; repetitions combine coherently-ish
        (10 log10 R gain, the standard planning figure)."""
        return self.base_snr_db - 10.0 * math.log10(self.repetitions)

    @property
    def noise_floor_dbm(self) -> float:
        return (-174.0
                + 10.0 * math.log10(self.subcarrier_spacing_hz)
                + self.noise_figure_db)

    @property
    def sensitivity_dbm(self) -> float:
        return self.noise_floor_dbm + self.required_snr_db

    # ------------------------------------------------------------------
    def airtime_s(self, payload_bytes: int) -> float:
        """Time on air for one reading, including overhead."""
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        bits = 8 * (payload_bytes + self.overhead_bytes)
        return bits / self.effective_rate_bps

    def tx_energy_j(self, payload_bytes: int,
                     tx_power_mw: float = 700.0) -> float:
        """Transmit energy in joules (23 dBm PA ≈ 700 mW DC draw)."""
        if tx_power_mw <= 0:
            raise ValueError("transmit power must be positive")
        return self.airtime_s(payload_bytes) * tx_power_mw / 1000.0

    def max_coupling_loss_db(self, eirp_dbm: float = 23.0) -> float:
        """Link budget: EIRP minus sensitivity."""
        return eirp_dbm - self.sensitivity_dbm

    @classmethod
    def for_coupling_loss(cls, target_mcl_db: float,
                          eirp_dbm: float = 23.0,
                          **kwargs) -> Optional["NbIotUplink"]:
        """Cheapest repetition level that closes a link budget."""
        for reps in REPETITIONS:
            uplink = cls(repetitions=reps, **kwargs)
            if uplink.max_coupling_loss_db(eirp_dbm) >= target_mcl_db:
                return uplink
        return None
