"""Predictive Doppler pre-compensation.

One of the paper's optimization directions: since TLEs predict a pass's
range-rate profile, a node (or satellite) can pre-shift its carrier so
the *residual* offset and drift at the receiver shrink by orders of
magnitude.  The residual is limited by ephemeris error and clock drift,
both modelled here, and feeds the same Doppler-rate penalty the channel
applies — so the benefit shows up directly in reception statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..orbits.doppler import doppler_shift_hz

__all__ = ["CompensationErrorBudget", "DopplerCompensator"]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class CompensationErrorBudget:
    """Imperfections limiting predictive compensation."""

    #: Along-track ephemeris error translates to a range-rate error.
    range_rate_error_km_s: float = 0.02
    #: Oscillator accuracy of the IoT node (parts per million).
    clock_ppm: float = 2.0
    #: Time-tag error when applying the predicted profile (s).
    timing_error_s: float = 0.5

    def __post_init__(self) -> None:
        if self.range_rate_error_km_s < 0 or self.clock_ppm < 0 \
                or self.timing_error_s < 0:
            raise ValueError("error-budget terms must be non-negative")


class DopplerCompensator:
    """Applies predicted Doppler profiles and reports residuals."""

    def __init__(self, carrier_hz: float,
                 budget: CompensationErrorBudget
                 = CompensationErrorBudget()) -> None:
        if carrier_hz <= 0:
            raise ValueError("carrier must be positive")
        self.carrier_hz = carrier_hz
        self.budget = budget

    # ------------------------------------------------------------------
    def residual_shift_hz(self, true_range_rate_km_s: ArrayLike,
                          ) -> ArrayLike:
        """Residual carrier offset after pre-compensation.

        The prediction removes the bulk shift; what remains is the
        ephemeris range-rate error plus the node's oscillator offset.
        """
        rr_err = self.budget.range_rate_error_km_s
        ephemeris_term = np.abs(
            doppler_shift_hz(rr_err, self.carrier_hz))
        clock_term = self.carrier_hz * self.budget.clock_ppm * 1e-6
        residual = ephemeris_term + clock_term
        shape = np.shape(true_range_rate_km_s)
        if shape == ():
            return float(residual)
        return np.full(shape, residual)

    def residual_rate_hz_s(self, true_rate_hz_s: ArrayLike) -> ArrayLike:
        """Residual Doppler *rate* after pre-compensation.

        The profile is applied with a small time-tag error, so a
        fraction of the true rate curvature survives: the residual rate
        is ``rate * timing_error / coherence`` — approximated here as
        the rate scaled by the timing error over one second.
        """
        rate = np.asarray(true_rate_hz_s, dtype=float)
        residual = np.abs(rate) * min(self.budget.timing_error_s, 1.0) \
            * self.budget.timing_error_s
        if np.ndim(true_rate_hz_s) == 0:
            return float(residual)
        return residual

    # ------------------------------------------------------------------
    def improvement_summary(self, range_rate_km_s: np.ndarray,
                            rate_hz_s: np.ndarray,
                            ) -> Tuple[float, float]:
        """(shift reduction factor, rate reduction factor) on a pass."""
        raw_shift = np.abs(doppler_shift_hz(range_rate_km_s,
                                            self.carrier_hz))
        res_shift = np.asarray(self.residual_shift_hz(range_rate_km_s))
        raw_rate = np.abs(np.asarray(rate_hz_s, dtype=float))
        res_rate = np.asarray(self.residual_rate_hz_s(rate_hz_s))
        shift_factor = float(np.mean(raw_shift)
                             / max(np.mean(res_shift), 1e-9))
        rate_factor = float(np.mean(raw_rate)
                            / max(np.mean(res_rate), 1e-9))
        return shift_factor, rate_factor
