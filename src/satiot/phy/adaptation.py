"""Spreading-factor trade-offs and adaptive selection.

DtS operators fix one spreading factor per fleet; the works the paper
cites (Spectrumize, ADR-style schemes) adapt it.  This module exposes
the whole trade surface — sensitivity vs airtime vs transmit energy vs
collision exposure — and a margin-based selector a node with a link
estimate could run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .lora import SNR_LIMIT_DB, LoRaModulation

__all__ = ["SfOperatingPoint", "sf_trade_table", "select_spreading_factor"]


@dataclass(frozen=True)
class SfOperatingPoint:
    """The cost/benefit of one spreading factor for a given payload."""

    spreading_factor: int
    snr_limit_db: float
    airtime_s: float
    tx_energy_j: float             # joules at the given PA power
    relative_sensitivity_db: float  # gain over SF7

    @property
    def collision_exposure(self) -> float:
        """Airtime normalised to SF7 — the contention-window multiplier."""
        return self.airtime_s / _sf7_airtime_cache[0] \
            if _sf7_airtime_cache else 1.0


_sf7_airtime_cache: List[float] = []


def sf_trade_table(payload_bytes: int = 20,
                   bandwidth_hz: float = 125_000.0,
                   tx_power_mw: float = 3586.0,
                   ) -> Dict[int, SfOperatingPoint]:
    """Operating points for SF7..SF12 at a payload size.

    ``tx_energy_j`` uses the DtS PA power so the table directly feeds
    the energy model (joules = mW·s / 1000).
    """
    if payload_bytes <= 0:
        raise ValueError("payload must be positive")
    if tx_power_mw <= 0:
        raise ValueError("transmit power must be positive")
    sf7_airtime = LoRaModulation(
        spreading_factor=7, bandwidth_hz=bandwidth_hz,
        low_data_rate_optimize=False).airtime_s(payload_bytes)
    _sf7_airtime_cache.clear()
    _sf7_airtime_cache.append(sf7_airtime)

    table: Dict[int, SfOperatingPoint] = {}
    for sf in range(7, 13):
        modulation = LoRaModulation(
            spreading_factor=sf, bandwidth_hz=bandwidth_hz,
            low_data_rate_optimize=sf >= 11)
        airtime = modulation.airtime_s(payload_bytes)
        table[sf] = SfOperatingPoint(
            spreading_factor=sf,
            snr_limit_db=SNR_LIMIT_DB[sf],
            airtime_s=airtime,
            tx_energy_j=airtime * tx_power_mw / 1000.0,
            relative_sensitivity_db=SNR_LIMIT_DB[7] - SNR_LIMIT_DB[sf],
        )
    return table


def select_spreading_factor(estimated_snr_sf7_db: float,
                            margin_db: float = 2.0,
                            payload_bytes: int = 20,
                            ) -> Optional[int]:
    """Lowest (cheapest) SF whose threshold the link clears with margin.

    ``estimated_snr_sf7_db`` is the link SNR in the 125 kHz channel (the
    SF does not change the SNR, only the demod threshold).  Returns
    ``None`` when even SF12 cannot close the link.
    """
    if margin_db < 0:
        raise ValueError("margin cannot be negative")
    for sf in range(7, 13):
        if estimated_snr_sf7_db >= SNR_LIMIT_DB[sf] + margin_db:
            return sf
    return None
