"""Ground antenna models.

The paper compares 1/4-wavelength and 5/8-wavelength whip antennas on
the Tianqi nodes (Figure 5b) and uses simple dipoles on TinyGS stations.
We model each as a peak gain plus a smooth elevation pattern; whips have
a null toward zenith and their maximum near mid elevations, which is the
behaviour that matters for DtS geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = ["Antenna", "DIPOLE", "QUARTER_WAVE", "FIVE_EIGHTHS_WAVE",
           "ANTENNAS_BY_NAME"]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class Antenna:
    """An antenna with an elevation-dependent gain pattern.

    ``gain_dbi(el)`` =  peak_gain_dbi - zenith_rolloff * sin^2(el)
                        - horizon_rolloff * (1 - sin(el))^2

    The two roll-off terms shape the classic monopole doughnut: whips
    lose gain straight up (zenith_rolloff) and every ground antenna
    suffers ground-plane/multipath loss right at the horizon
    (horizon_rolloff).
    """

    name: str
    peak_gain_dbi: float
    zenith_rolloff_db: float = 0.0
    horizon_rolloff_db: float = 0.0

    def gain_dbi(self, elevation_deg: ArrayLike) -> ArrayLike:
        el = np.radians(np.clip(np.asarray(elevation_deg, dtype=float),
                                0.0, 90.0))
        s = np.sin(el)
        gain = (self.peak_gain_dbi
                - self.zenith_rolloff_db * s * s
                - self.horizon_rolloff_db * (1.0 - s) ** 2)
        if np.ndim(elevation_deg) == 0:
            return float(gain)
        return gain


#: TinyGS-style half-wave dipole, fairly flat pattern.
DIPOLE = Antenna("dipole", peak_gain_dbi=2.15,
                 zenith_rolloff_db=1.5, horizon_rolloff_db=2.0)

#: 1/4-wave whip: modest gain, strong zenith null, poor near horizon.
QUARTER_WAVE = Antenna("quarter_wave", peak_gain_dbi=1.8,
                       zenith_rolloff_db=5.0, horizon_rolloff_db=3.5)

#: 5/8-wave whip: the paper's best performer — higher gain, flatter.
FIVE_EIGHTHS_WAVE = Antenna("five_eighths_wave", peak_gain_dbi=3.5,
                            zenith_rolloff_db=4.0, horizon_rolloff_db=2.0)

ANTENNAS_BY_NAME = {
    ant.name: ant for ant in (DIPOLE, QUARTER_WAVE, FIVE_EIGHTHS_WAVE)
}
