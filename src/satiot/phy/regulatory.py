"""ISM-band regulatory constraints.

The DtS links of every measured constellation run in sub-GHz unlicensed
ISM bands (paper Section 2.2), where regulators cap transmitter duty
cycle — ETSI allows 1 % (some sub-bands 10 %) in the 433 MHz band.
These caps bound how often a node may retransmit and how densely a
satellite may beacon, so the protocol layer consults this module before
keying the PA.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Tuple

__all__ = ["BandPlan", "ETSI_433", "ETSI_868_G1", "DutyCycleLimiter"]


@dataclass(frozen=True)
class BandPlan:
    """One regulatory sub-band."""

    name: str
    low_hz: float
    high_hz: float
    duty_cycle: float              # e.g. 0.01 for 1 %
    max_eirp_dbm: float

    def __post_init__(self) -> None:
        if self.high_hz <= self.low_hz:
            raise ValueError("band upper edge must exceed lower edge")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")

    def contains(self, frequency_hz: float) -> bool:
        return self.low_hz <= frequency_hz <= self.high_hz


#: ETSI EN 300 220: 433.05-434.79 MHz, 10 mW e.r.p., 1 % duty cycle
#: (the 436-438 MHz amateur-satellite allocations used by PICO/CSTP are
#: coordinated separately; the cap is a reasonable stand-in).
ETSI_433 = BandPlan("ETSI 433 MHz", 433.05e6, 434.79e6,
                    duty_cycle=0.01, max_eirp_dbm=10.0)

#: ETSI g1 sub-band at 868 MHz: 1 % duty, 25 mW.
ETSI_868_G1 = BandPlan("ETSI 868.0-868.6 MHz", 868.0e6, 868.6e6,
                       duty_cycle=0.01, max_eirp_dbm=14.0)


@dataclass
class DutyCycleLimiter:
    """Sliding-window duty-cycle accounting for one transmitter.

    Tracks airtime within a rolling window (regulators evaluate over an
    hour) and answers whether another transmission fits.
    """

    duty_cycle: float = 0.01
    window_s: float = 3600.0
    _history: Deque[Tuple[float, float]] = field(default_factory=deque)

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        if self.window_s <= 0:
            raise ValueError("window must be positive")

    # ------------------------------------------------------------------
    def _prune(self, now_s: float) -> None:
        # A transmission at t leaves the accounting window at exactly
        # t + window (closed-open interval), so prune on <=.
        cutoff = now_s - self.window_s
        while self._history and self._history[0][0] <= cutoff:
            self._history.popleft()

    def airtime_used_s(self, now_s: float) -> float:
        self._prune(now_s)
        return sum(duration for _t, duration in self._history)

    @property
    def budget_s(self) -> float:
        return self.duty_cycle * self.window_s

    def can_transmit(self, now_s: float, airtime_s: float) -> bool:
        """Would a transmission of this airtime stay within the cap?"""
        if airtime_s < 0:
            raise ValueError("airtime cannot be negative")
        return self.airtime_used_s(now_s) + airtime_s <= self.budget_s

    def record(self, now_s: float, airtime_s: float) -> None:
        """Account a transmission that was made."""
        if airtime_s < 0:
            raise ValueError("airtime cannot be negative")
        if self._history and now_s < self._history[-1][0]:
            raise ValueError("transmissions must be recorded in order")
        self._history.append((now_s, airtime_s))

    def next_allowed_s(self, now_s: float, airtime_s: float) -> float:
        """Earliest instant the transmission would fit the budget."""
        if self.can_transmit(now_s, airtime_s):
            return now_s
        self._prune(now_s)
        needed = (self.airtime_used_s(now_s) + airtime_s
                  - self.budget_s)
        freed = 0.0
        for start, duration in self._history:
            freed += duration
            if freed >= needed:
                return start + self.window_s
        return now_s + self.window_s
