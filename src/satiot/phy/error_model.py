"""Packet-error models for LoRa receptions.

The demodulator's packet success probability is modelled as a logistic
function of the SNR margin above the per-SF demodulation threshold — the
standard waterfall approximation to measured LoRa PER curves.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["reception_probability", "packet_error_rate"]

ArrayLike = Union[float, np.ndarray]


def reception_probability(snr_db: ArrayLike, snr_limit_db: float,
                          slope_db: float = 1.0) -> ArrayLike:
    """Probability that a packet at the given SNR is decoded.

    A logistic waterfall centred one slope above the demod threshold:
    ~12 % at the threshold itself, >98 % two slopes above, ~0 below.
    """
    if slope_db <= 0:
        raise ValueError("slope must be positive")
    snr = np.asarray(snr_db, dtype=float)
    margin = snr - (snr_limit_db + slope_db)
    p = 1.0 / (1.0 + np.exp(-margin / (0.5 * slope_db)))
    if np.ndim(snr_db) == 0:
        return float(p)
    return p


def packet_error_rate(snr_db: ArrayLike, snr_limit_db: float,
                      slope_db: float = 1.0) -> ArrayLike:
    """Complement of :func:`reception_probability`."""
    p = reception_probability(snr_db, snr_limit_db, slope_db)
    if np.ndim(snr_db) == 0:
        return 1.0 - float(p)
    return 1.0 - np.asarray(p)
