"""Stochastic DtS channel: shadowing, fast fading, Doppler impairment.

Combines the deterministic :class:`~satiot.phy.link_budget.LinkBudget`
with temporally-correlated log-normal shadowing (AR(1) / Gauss-Markov),
per-packet fast fading, and a Doppler-rate penalty, to produce the
per-packet RSSI/SNR samples and reception outcomes the campaigns record.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional, Union

import numpy as np

from .error_model import reception_probability
from .link_budget import LinkBudget
from .lora import LoRaModulation, noise_floor_dbm

__all__ = ["ChannelParams", "PacketSamples", "DtSChannel",
           "ar1_shadowing_db"]

ArrayLike = Union[float, np.ndarray]


def ar1_shadowing_db(times_s: np.ndarray, sigma_db: float,
                     correlation_time_s: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Correlated log-normal shadowing samples along a time series.

    Gauss-Markov process: consecutive samples at spacing ``dt`` have
    correlation ``exp(-dt / correlation_time_s)`` and stationary standard
    deviation ``sigma_db``.  Handles non-uniform spacing.
    """
    t = np.asarray(times_s, dtype=float)
    n = t.shape[0]
    out = np.empty(n)
    if n == 0:
        return out
    if sigma_db < 0 or correlation_time_s <= 0:
        raise ValueError("sigma must be >= 0 and correlation time > 0")
    out[0] = rng.normal(0.0, sigma_db)
    if n == 1:
        return out
    dt = np.diff(t)
    if np.any(dt < 0):
        raise ValueError("times must be non-decreasing")
    rho = np.exp(-dt / correlation_time_s)
    innov = rng.normal(0.0, 1.0, size=n - 1) * sigma_db * np.sqrt(1 - rho**2)
    for i in range(1, n):
        out[i] = rho[i - 1] * out[i - 1] + innov[i - 1]
    return out


@dataclass(frozen=True)
class ChannelParams:
    """Stochastic channel configuration (calibration knobs)."""

    shadowing_sigma_db: float = 3.0
    shadowing_correlation_s: float = 20.0
    #: Pass-scale shadowing: one draw per pass, modelling azimuth-dependent
    #: blockage (buildings, terrain) that makes entire passes deaf while
    #: leaving others clean — the dominant cause of zero-reception windows.
    pass_sigma_db: float = 7.0
    fast_fading_sigma_db: float = 2.0
    rain_extra_sigma_db: float = 1.5
    doppler_penalty_db_per_bin: float = 1.2
    max_doppler_penalty_db: float = 4.0
    per_slope_db: float = 1.0

    def __post_init__(self) -> None:
        if self.shadowing_sigma_db < 0 or self.fast_fading_sigma_db < 0:
            raise ValueError("fading sigmas must be non-negative")
        if self.shadowing_correlation_s <= 0:
            raise ValueError("shadowing correlation time must be positive")
        if self.per_slope_db <= 0:
            raise ValueError("PER slope must be positive")


@dataclass
class PacketSamples:
    """Vector of simulated packet receptions along a pass."""

    times_s: np.ndarray
    rssi_dbm: np.ndarray
    snr_db: np.ndarray
    received: np.ndarray          # bool
    doppler_shift_hz: np.ndarray

    def __len__(self) -> int:
        return len(self.times_s)

    @property
    def reception_rate(self) -> float:
        if len(self.times_s) == 0:
            return 0.0
        return float(np.mean(self.received))


class DtSChannel:
    """End-to-end stochastic channel for one direction of a DtS link.

    Parameters
    ----------
    budget:
        Deterministic link budget (EIRP, frequency, excess-loss shape).
    modulation:
        LoRa configuration; sets the noise floor and demod threshold.
    params:
        Stochastic knobs.
    """

    def __init__(self, budget: LinkBudget, modulation: LoRaModulation,
                 params: Optional[ChannelParams] = None) -> None:
        self.budget = budget
        self.modulation = modulation
        self.params = params or ChannelParams()
        self._noise_floor = noise_floor_dbm(modulation.bandwidth_hz)

    # ------------------------------------------------------------------
    def doppler_penalty_db(self, doppler_rate_hz_s: ArrayLike,
                           airtime_s: float) -> ArrayLike:
        """SNR penalty from intra-packet Doppler drift.

        Drift during a packet, measured in demodulator bins, degrades the
        chirp correlation peak.  Static offset is tolerated by the SX126x
        front end and is not penalised.
        """
        drift_bins = (np.abs(np.asarray(doppler_rate_hz_s, dtype=float))
                      * airtime_s / self.modulation.bin_width_hz)
        penalty = np.minimum(
            self.params.doppler_penalty_db_per_bin * drift_bins,
            self.params.max_doppler_penalty_db)
        if np.ndim(doppler_rate_hz_s) == 0:
            return float(penalty)
        return penalty

    # ------------------------------------------------------------------
    def simulate_packets(self,
                         times_s: np.ndarray,
                         elevation_deg: np.ndarray,
                         range_km: np.ndarray,
                         doppler_shift_hz: np.ndarray,
                         doppler_rate_hz_s: np.ndarray,
                         payload_bytes: int,
                         rng: np.random.Generator,
                         rx_gain_dbi: ArrayLike = None,
                         raining: ArrayLike = False,
                         pass_offset_db: Optional[float] = None,
                         ) -> PacketSamples:
        """Simulate reception of a train of packets along a pass.

        All array arguments share the same length N; returns per-packet
        RSSI/SNR and reception outcome.  ``pass_offset_db`` overrides
        the internally drawn pass-scale shadowing — co-located receivers
        experiencing the same geometry should share one draw.
        """
        times = np.asarray(times_s, dtype=float)
        n = len(times)
        if n == 0:
            empty = np.empty(0)
            return PacketSamples(empty, empty, empty,
                                 np.empty(0, dtype=bool), empty)

        mean_rssi = self.budget.mean_rssi_dbm(
            np.asarray(range_km, dtype=float),
            np.asarray(elevation_deg, dtype=float),
            rx_gain_dbi=rx_gain_dbi,
            raining=raining)

        sigma_extra = np.where(np.asarray(raining, dtype=bool),
                               self.params.rain_extra_sigma_db, 0.0)
        if pass_offset_db is not None:
            pass_offset = float(pass_offset_db)
        else:
            pass_offset = rng.normal(0.0, self.params.pass_sigma_db) \
                if self.params.pass_sigma_db > 0 else 0.0
        shadowing = pass_offset + ar1_shadowing_db(
            times, self.params.shadowing_sigma_db,
            self.params.shadowing_correlation_s, rng)
        fast = rng.normal(0.0, 1.0, size=n) * (
            self.params.fast_fading_sigma_db + sigma_extra)

        rssi = np.asarray(mean_rssi) + shadowing + fast
        airtime = self.modulation.airtime_s(payload_bytes)
        dop_pen = self.doppler_penalty_db(
            np.asarray(doppler_rate_hz_s, dtype=float), airtime)
        snr = rssi - self._noise_floor - dop_pen

        p_rx = reception_probability(snr, self.modulation.snr_limit_db,
                                     self.params.per_slope_db)
        received = rng.random(n) < p_rx
        return PacketSamples(times_s=times, rssi_dbm=rssi, snr_db=snr,
                             received=received,
                             doppler_shift_hz=np.asarray(doppler_shift_hz,
                                                         dtype=float))
