"""LoRa modulation model: airtime, data rate, and demodulation limits.

Implements the Semtech airtime formula (SX126x datasheet / AN1200.13)
and the canonical per-SF SNR demodulation thresholds that determine
receiver sensitivity.  Every DtS transmission in the simulator — beacons,
uplink data, ACKs — is costed through this module, which is also what
the energy model uses for radio-on durations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "LoRaModulation",
    "SNR_LIMIT_DB",
    "sensitivity_dbm",
    "noise_floor_dbm",
]

#: Minimum demodulation SNR (dB) per spreading factor (Semtech AN1200.22).
SNR_LIMIT_DB = {
    5: -2.5,
    6: -5.0,
    7: -7.5,
    8: -10.0,
    9: -12.5,
    10: -15.0,
    11: -17.5,
    12: -20.0,
}

#: Typical SX126x receiver noise figure (dB).
DEFAULT_NOISE_FIGURE_DB = 6.0

THERMAL_NOISE_DBM_HZ = -174.0


def noise_floor_dbm(bandwidth_hz: float,
                    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB) -> float:
    """Receiver noise floor (dBm) for the given bandwidth."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return THERMAL_NOISE_DBM_HZ + 10.0 * math.log10(bandwidth_hz) \
        + noise_figure_db


def sensitivity_dbm(spreading_factor: int, bandwidth_hz: float,
                    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB) -> float:
    """Packet sensitivity (dBm): noise floor plus the SF demod threshold."""
    if spreading_factor not in SNR_LIMIT_DB:
        raise ValueError(f"unsupported spreading factor {spreading_factor}")
    return noise_floor_dbm(bandwidth_hz, noise_figure_db) \
        + SNR_LIMIT_DB[spreading_factor]


@dataclass(frozen=True)
class LoRaModulation:
    """A concrete LoRa modulation configuration.

    ``coding_rate`` is the denominator of the 4/x code (5..8).
    """

    spreading_factor: int
    bandwidth_hz: float = 125_000.0
    coding_rate: int = 5
    preamble_symbols: int = 8
    explicit_header: bool = True
    low_data_rate_optimize: bool = True
    crc_enabled: bool = True

    def __post_init__(self) -> None:
        if self.spreading_factor not in SNR_LIMIT_DB:
            raise ValueError(
                f"unsupported spreading factor {self.spreading_factor}")
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        if not 5 <= self.coding_rate <= 8:
            raise ValueError("coding rate denominator must be in 5..8")
        if self.preamble_symbols < 4:
            raise ValueError("preamble must be at least 4 symbols")

    # ------------------------------------------------------------------
    @property
    def symbol_time_s(self) -> float:
        """Duration of one LoRa chirp symbol."""
        return (2 ** self.spreading_factor) / self.bandwidth_hz

    @property
    def snr_limit_db(self) -> float:
        return SNR_LIMIT_DB[self.spreading_factor]

    @property
    def bin_width_hz(self) -> float:
        """FFT bin width of the demodulator — the Doppler tolerance scale."""
        return self.bandwidth_hz / (2 ** self.spreading_factor)

    def sensitivity_dbm(self,
                        noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
                        ) -> float:
        return sensitivity_dbm(self.spreading_factor, self.bandwidth_hz,
                               noise_figure_db)

    # ------------------------------------------------------------------
    def payload_symbols(self, payload_bytes: int) -> int:
        """Number of payload symbols (Semtech airtime formula)."""
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        sf = self.spreading_factor
        de = 1 if self.low_data_rate_optimize else 0
        ih = 0 if self.explicit_header else 1
        crc = 1 if self.crc_enabled else 0
        cr = self.coding_rate - 4
        numerator = 8 * payload_bytes - 4 * sf + 28 + 16 * crc - 20 * ih
        n_extra = max(math.ceil(numerator / (4 * (sf - 2 * de))) * (cr + 4), 0)
        return 8 + n_extra

    def airtime_s(self, payload_bytes: int) -> float:
        """Total time-on-air of a packet with the given payload size."""
        t_preamble = (self.preamble_symbols + 4.25) * self.symbol_time_s
        t_payload = self.payload_symbols(payload_bytes) * self.symbol_time_s
        return t_preamble + t_payload

    def bitrate_bps(self) -> float:
        """Raw LoRa bit rate (bits/s) of this configuration."""
        sf = self.spreading_factor
        return sf * (4.0 / self.coding_rate) / self.symbol_time_s
