"""Deterministic link-budget arithmetic for DtS links.

Free-space path loss plus the deterministic excess terms (elevation-
dependent tropospheric/multipath loss, rain attenuation).  The stochastic
parts — shadowing and fast fading — live in :mod:`satiot.phy.channel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = [
    "free_space_path_loss_db",
    "elevation_excess_loss_db",
    "LinkBudget",
]

ArrayLike = Union[float, np.ndarray]


def free_space_path_loss_db(distance_km: ArrayLike,
                            frequency_hz: float) -> ArrayLike:
    """Free-space path loss (dB): 32.44 + 20 log10(d_km) + 20 log10(f_MHz)."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    d = np.asarray(distance_km, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distance must be positive")
    f_mhz = frequency_hz / 1e6
    loss = 32.44 + 20.0 * np.log10(d) + 20.0 * np.log10(f_mhz)
    if np.ndim(distance_km) == 0:
        return float(loss)
    return loss


def elevation_excess_loss_db(elevation_deg: ArrayLike,
                             horizon_loss_db: float = 12.0,
                             scale_deg: float = 10.0) -> ArrayLike:
    """Excess loss at low elevation angles.

    Models the combined effect of longer tropospheric paths, ground
    multipath, polarization mismatch and obstruction near the horizon —
    the paper's Appendix C attributes the high beacon losses at window
    edges to exactly this regime.  The loss decays exponentially with
    elevation: ``L = horizon_loss_db * exp(-el / scale_deg)``.
    """
    if scale_deg <= 0:
        raise ValueError("scale must be positive")
    el = np.clip(np.asarray(elevation_deg, dtype=float), 0.0, 90.0)
    loss = horizon_loss_db * np.exp(-el / scale_deg)
    if np.ndim(elevation_deg) == 0:
        return float(loss)
    return loss


@dataclass(frozen=True)
class LinkBudget:
    """Static link-budget configuration for one direction of a DtS link."""

    eirp_dbm: float
    rx_gain_peak_dbi: float = 0.0    # used when no antenna pattern is given
    frequency_hz: float = 400.45e6
    horizon_excess_db: float = 12.0
    excess_scale_deg: float = 8.0
    rain_attenuation_db: float = 3.0
    implementation_loss_db: float = 1.0

    def components(self, distance_km: ArrayLike,
                   elevation_deg: ArrayLike,
                   rx_gain_dbi: ArrayLike = None,
                   raining: ArrayLike = False) -> dict:
        """Per-term budget breakdown (dB / dBm), vectorized.

        Returns a dict with ``fspl_db``, ``excess_db``, ``rain_db``,
        ``rx_gain_dbi`` and the resulting ``rssi_dbm`` — the payload of
        the serving layer's ``/v1/link_budget`` endpoint.  The
        ``rssi_dbm`` entry is computed by the exact expression used by
        :meth:`mean_rssi_dbm` (which delegates here).
        """
        fspl = free_space_path_loss_db(distance_km, self.frequency_hz)
        excess = elevation_excess_loss_db(elevation_deg,
                                          self.horizon_excess_db,
                                          self.excess_scale_deg)
        gain = (self.rx_gain_peak_dbi if rx_gain_dbi is None
                else np.asarray(rx_gain_dbi, dtype=float))
        rain = np.where(np.asarray(raining, dtype=bool),
                        self.rain_attenuation_db, 0.0)
        rssi = (self.eirp_dbm + gain - fspl - excess - rain
                - self.implementation_loss_db)
        return {
            "eirp_dbm": self.eirp_dbm,
            "rx_gain_dbi": gain,
            "fspl_db": fspl,
            "excess_db": excess,
            "rain_db": rain,
            "implementation_loss_db": self.implementation_loss_db,
            "rssi_dbm": rssi,
        }

    def mean_rssi_dbm(self, distance_km: ArrayLike,
                      elevation_deg: ArrayLike,
                      rx_gain_dbi: ArrayLike = None,
                      raining: ArrayLike = False) -> ArrayLike:
        """Median received power (dBm) before stochastic fading."""
        rssi = self.components(distance_km, elevation_deg,
                               rx_gain_dbi, raining)["rssi_dbm"]
        if np.ndim(rssi) == 0:
            return float(rssi)
        return rssi
