"""Battery lifetime estimation (paper Figure 6d).

The paper quotes a "5,000 Ampere-hour battery" lasting 718 days on the
terrestrial node and 48 days on the Tianqi node.  Taken literally with
the measured mode powers, those numbers are mutually inconsistent (see
DESIGN.md), so we treat the battery's usable energy as the calibration
constant: the default capacity is chosen so the terrestrial node's
simulated duty cycle reaches the paper's 718 days, and the satellite
node's lifetime then *emerges* from its own simulated duty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from .accounting import EnergyBreakdown

__all__ = ["Battery", "DEFAULT_BATTERY_MWH"]

#: Usable pack energy (mWh) calibrated so the terrestrial node's
#: ~19.8 mW average draw lasts the paper's 718 days.
DEFAULT_BATTERY_MWH = 341_000.0


@dataclass(frozen=True)
class Battery:
    """An ideal battery: fixed usable energy, no ageing or rate effects."""

    capacity_mwh: float = DEFAULT_BATTERY_MWH

    def __post_init__(self) -> None:
        if self.capacity_mwh <= 0:
            raise ValueError("battery capacity must be positive")

    def lifetime_days(self, average_power_mw: float) -> float:
        """Days of operation at the given average draw."""
        if average_power_mw <= 0:
            raise ValueError("average power must be positive")
        return self.capacity_mwh / average_power_mw / 24.0

    def lifetime_days_from_breakdown(self,
                                     breakdown: EnergyBreakdown) -> float:
        return self.lifetime_days(breakdown.average_power_mw)
