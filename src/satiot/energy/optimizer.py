"""Receiver duty-cycle optimization.

The paper identifies the always-on monitoring receiver as the dominant
battery drain of DtS nodes and "calls for optimization of DtS
communications".  This module implements the obvious fix a node with a
TLE catalog can apply: wake the receiver only for *selected* predicted
passes, chosen to respect an application latency budget while minimizing
receiver-on time.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import List, Sequence


from ..orbits.passes import ContactWindow

__all__ = ["WakePlan", "plan_wake_windows"]


@dataclass
class WakePlan:
    """A receiver wake schedule over a span."""

    span_s: float
    selected: List[ContactWindow]
    guard_s: float

    @property
    def rx_on_s(self) -> float:
        """Total receiver-on time, including per-pass guard margins."""
        return sum(w.duration_s + 2 * self.guard_s for w in self.selected)

    @property
    def rx_duty_cycle(self) -> float:
        if self.span_s <= 0:
            return float("nan")
        return min(self.rx_on_s / self.span_s, 1.0)

    def worst_gap_s(self) -> float:
        """Longest stretch without a selected contact (data latency
        bound for buffered readings)."""
        if not self.selected:
            return self.span_s
        gaps = [self.selected[0].rise_s]
        for a, b in zip(self.selected, self.selected[1:]):
            gaps.append(b.rise_s - a.set_s)
        gaps.append(self.span_s - self.selected[-1].set_s)
        return max(gaps)


def plan_wake_windows(windows: Sequence[ContactWindow], span_s: float,
                      latency_budget_s: float,
                      min_max_elevation_deg: float = 10.0,
                      guard_s: float = 60.0) -> WakePlan:
    """Choose passes to wake for, respecting a latency budget.

    Strategy: discard hopeless low-elevation passes, then keep the
    highest-elevation pass in each latency-budget-sized stretch —
    greedy, but within a few percent of optimal for the pass densities
    LEO IoT constellations produce.

    Parameters
    ----------
    windows:
        Predicted contact windows over ``[0, span_s]`` (any satellite).
    latency_budget_s:
        Maximum tolerated stretch without a wake (readings buffer in
        the meantime — the store-and-forward trade).
    min_max_elevation_deg:
        Passes peaking below this are never worth waking for (the
        campaign measured near-zero reception there).
    guard_s:
        Receiver warm-up margin added on both sides of each pass.
    """
    if span_s <= 0:
        raise ValueError("span must be positive")
    if latency_budget_s <= 0:
        raise ValueError("latency budget must be positive")
    if guard_s < 0:
        raise ValueError("guard must be non-negative")

    usable = sorted((w for w in windows
                     if w.max_elevation_deg >= min_max_elevation_deg),
                    key=lambda w: w.rise_s)
    selected: List[ContactWindow] = []
    cursor = 0.0
    while cursor < span_s:
        horizon = cursor + latency_budget_s
        # Candidates that start within the budget from the cursor.
        candidates = [w for w in usable
                      if cursor <= w.rise_s <= horizon]
        if not candidates:
            # Nothing in this stretch: jump to the next usable pass.
            later = [w for w in usable if w.rise_s > cursor]
            if not later:
                break
            chosen = later[0]
        else:
            # Minimise wake count: push the cursor as far as possible,
            # preferring elevation among the late-rising candidates
            # (the classic interval-cover greedy with a quality
            # tie-break over the last 40 % of the feasible stretch).
            latest_rise = max(w.rise_s for w in candidates)
            threshold = cursor + 0.6 * (latest_rise - cursor)
            late = [w for w in candidates if w.rise_s >= threshold]
            chosen = max(late, key=lambda w: (w.max_elevation_deg,
                                              w.set_s))
        if selected and chosen is selected[-1]:
            break
        selected.append(chosen)
        cursor = chosen.set_s
    return WakePlan(span_s=span_s, selected=selected, guard_s=guard_s)
