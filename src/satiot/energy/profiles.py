"""Radio operating modes and per-mode power profiles.

The terrestrial profile carries the paper's measured values verbatim
(Figure 10: Tx 1,630 mW, Rx 265 mW, Standby 146 mW, Sleep 19.1 mW).
The Tianqi node profile is calibrated to the paper's reported ratios:
2.2x the terrestrial Tx power for DtS transmission, and an Rx front end
whose long monitoring duty cycle produces the ~15x overall battery-drain
gap (Figure 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

__all__ = ["RadioMode", "PowerProfile", "TERRESTRIAL_NODE_PROFILE",
           "TIANQI_NODE_PROFILE"]


class RadioMode(enum.Enum):
    """Operating modes of an IoT node's radio/MCU complex."""

    SLEEP = "sleep"
    STANDBY = "standby"
    RX = "rx"
    TX = "tx"


@dataclass(frozen=True)
class PowerProfile:
    """Power draw (mW) of a node in each operating mode."""

    name: str
    sleep_mw: float
    standby_mw: float
    rx_mw: float
    tx_mw: float

    def __post_init__(self) -> None:
        draws = (self.sleep_mw, self.standby_mw, self.rx_mw, self.tx_mw)
        if any(p <= 0 for p in draws):
            raise ValueError("all mode powers must be positive")
        if not self.sleep_mw <= self.standby_mw <= self.rx_mw <= self.tx_mw:
            raise ValueError(
                "expected sleep <= standby <= rx <= tx power ordering")

    def power_mw(self, mode: RadioMode) -> float:
        return {
            RadioMode.SLEEP: self.sleep_mw,
            RadioMode.STANDBY: self.standby_mw,
            RadioMode.RX: self.rx_mw,
            RadioMode.TX: self.tx_mw,
        }[mode]

    def as_dict(self) -> Dict[str, float]:
        return {mode.value: self.power_mw(mode) for mode in RadioMode}


#: Paper Figure 10, measured on the deployed LoRaWAN nodes.
TERRESTRIAL_NODE_PROFILE = PowerProfile(
    name="terrestrial LoRaWAN node",
    sleep_mw=19.1, standby_mw=146.0, rx_mw=265.0, tx_mw=1630.0)

#: Tianqi DtS node: same MCU sleep floor; hotter Rx front end
#: (continuous satellite monitoring) and a 2.2x stronger PA for DtS
#: uplink (paper Section 3.2).
TIANQI_NODE_PROFILE = PowerProfile(
    name="Tianqi satellite IoT node",
    sleep_mw=19.1, standby_mw=146.0, rx_mw=370.0, tx_mw=3586.0)
