"""Energy substrate: mode profiles, accounting, batteries, behaviors."""

from .accounting import EnergyBreakdown, ModeTimeline
from .battery import DEFAULT_BATTERY_MWH, Battery
from .behavior import TerrestrialBehavior, TianqiBehavior
from .optimizer import WakePlan, plan_wake_windows
from .profiles import (TERRESTRIAL_NODE_PROFILE, TIANQI_NODE_PROFILE,
                       PowerProfile, RadioMode)

__all__ = [
    "EnergyBreakdown", "ModeTimeline",
    "Battery", "DEFAULT_BATTERY_MWH",
    "TerrestrialBehavior", "TianqiBehavior",
    "WakePlan", "plan_wake_windows",
    "PowerProfile", "RadioMode",
    "TERRESTRIAL_NODE_PROFILE", "TIANQI_NODE_PROFILE",
]
