"""Duty-cycle builders: protocol activity → mode timelines.

Translates what each system actually did during the campaign (packets
sent, retransmissions, satellite monitoring) into per-mode radio time.

Terrestrial LoRaWAN (Class A): wake to standby, transmit, open two
1-second receive windows, sleep — 95 % of life asleep (paper Fig. 11).

Tianqi DtS node: keeps its receiver on while a constellation satellite
is predicted overhead so it can catch beacons and switch to transmit
quickly (paper Section 3.2's explanation of the extended Rx hang-on
time), transmits with the high-power DtS PA, sleeps otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple


from ..phy.lora import LoRaModulation
from .accounting import ModeTimeline
from .profiles import (TERRESTRIAL_NODE_PROFILE, TIANQI_NODE_PROFILE,
                       PowerProfile, RadioMode)

__all__ = ["TerrestrialBehavior", "TianqiBehavior"]


@dataclass(frozen=True)
class TerrestrialBehavior:
    """Class-A LoRaWAN duty cycle."""

    profile: PowerProfile = TERRESTRIAL_NODE_PROFILE
    modulation: LoRaModulation = LoRaModulation(
        spreading_factor=9, bandwidth_hz=125_000.0,
        low_data_rate_optimize=False)
    standby_per_packet_s: float = 2.0     # wake, sense, encode
    rx_window_s: float = 2.0              # RX1 + RX2

    def timeline(self, duration_s: float,
                 payload_sizes: Iterable[int]) -> ModeTimeline:
        """Mode timeline for a span in which the given packets were sent."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        tl = ModeTimeline(self.profile)
        active = 0.0
        for payload in payload_sizes:
            airtime = self.modulation.airtime_s(payload)
            tl.add(RadioMode.STANDBY, self.standby_per_packet_s)
            tl.add(RadioMode.TX, airtime)
            tl.add(RadioMode.RX, self.rx_window_s)
            active += self.standby_per_packet_s + airtime + self.rx_window_s
        if active > duration_s:
            raise ValueError("activity exceeds the span duration")
        tl.add(RadioMode.SLEEP, duration_s - active)
        return tl


@dataclass(frozen=True)
class TianqiBehavior:
    """Tianqi DtS node duty cycle."""

    profile: PowerProfile = TIANQI_NODE_PROFILE
    modulation: LoRaModulation = LoRaModulation(
        spreading_factor=10, bandwidth_hz=125_000.0)
    standby_per_packet_s: float = 2.0

    def timeline(self, duration_s: float,
                 monitoring_rx_s: float,
                 attempts: Sequence[Tuple[float, int]],
                 ) -> ModeTimeline:
        """Mode timeline of a Tianqi node.

        Parameters
        ----------
        duration_s:
            Campaign span.
        monitoring_rx_s:
            Total receiver-on time spent monitoring for satellite
            beacons (time with a constellation satellite predicted
            overhead).
        attempts:
            ``(time_s, payload_bytes)`` of every DtS transmission
            attempt, including retransmissions.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if monitoring_rx_s < 0 or monitoring_rx_s > duration_s:
            raise ValueError("monitoring time must fit inside the span")
        tl = ModeTimeline(self.profile)
        tx_time = 0.0
        standby_time = 0.0
        for _t, payload in attempts:
            tx_time += self.modulation.airtime_s(payload)
            standby_time += self.standby_per_packet_s
        # Transmissions happen while the radio would otherwise be in
        # monitoring Rx, so carve Tx/standby out of the Rx budget first.
        rx_time = max(monitoring_rx_s - tx_time - standby_time, 0.0)
        active = rx_time + tx_time + standby_time
        if active > duration_s:
            raise ValueError("activity exceeds the span duration")
        tl.add(RadioMode.TX, tx_time)
        tl.add(RadioMode.STANDBY, standby_time)
        tl.add(RadioMode.RX, rx_time)
        tl.add(RadioMode.SLEEP, duration_s - active)
        return tl
