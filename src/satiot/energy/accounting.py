"""Mode-timeline energy accounting.

A :class:`ModeTimeline` accumulates how long a node spent in each radio
mode over a campaign and converts that to energy through a
:class:`~satiot.energy.profiles.PowerProfile` — exactly the quantity the
paper's power meter integrated (Figures 6 and 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Dict

from .profiles import PowerProfile, RadioMode

__all__ = ["ModeTimeline", "EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-mode time, energy, and their shares."""

    time_s: Dict[RadioMode, float]
    energy_mwh: Dict[RadioMode, float]

    @property
    def total_time_s(self) -> float:
        return sum(self.time_s.values())

    @property
    def total_energy_mwh(self) -> float:
        return sum(self.energy_mwh.values())

    @property
    def average_power_mw(self) -> float:
        total_time = self.total_time_s
        if total_time <= 0:
            return float("nan")
        return self.total_energy_mwh * 3600.0 * 1000.0 / (total_time * 1000.0)

    def time_fraction(self, mode: RadioMode) -> float:
        total = self.total_time_s
        return self.time_s[mode] / total if total > 0 else float("nan")

    def energy_fraction(self, mode: RadioMode) -> float:
        total = self.total_energy_mwh
        return self.energy_mwh[mode] / total if total > 0 else float("nan")


class ModeTimeline:
    """Accumulates (mode, duration) segments for one node."""

    def __init__(self, profile: PowerProfile) -> None:
        self.profile = profile
        self._time_s: Dict[RadioMode, float] = {m: 0.0 for m in RadioMode}

    def add(self, mode: RadioMode, duration_s: float) -> None:
        if duration_s < 0:
            raise ValueError("durations cannot be negative")
        self._time_s[mode] += duration_s

    def time_in(self, mode: RadioMode) -> float:
        return self._time_s[mode]

    @property
    def total_time_s(self) -> float:
        return sum(self._time_s.values())

    def breakdown(self) -> EnergyBreakdown:
        energy = {
            mode: self.profile.power_mw(mode) * seconds / 3600.0
            for mode, seconds in self._time_s.items()
        }
        return EnergyBreakdown(time_s=dict(self._time_s), energy_mwh=energy)
