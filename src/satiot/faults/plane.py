"""Seeded, deterministic fault-injection plane.

The paper's headline finding is that satellite IoT availability is
dominated by *failure modes* — missed passes, lost beacons, dead
uplinks.  This module gives the system layers the same treatment: a
:class:`FaultPlane` holds a schedule of named **injection sites** that
production code consults at the seams it already owns (disk-cache
reads/writes, shard worker execution, serving connection handling,
micro-batch flushes).  When a consult "fires", the seam injects a
realistic failure — a corrupted ``.npz`` entry, a raised worker
exception, a ``SIGKILL``-ed pool worker, a dropped client connection —
and the seam's *hardening* (checksums + quarantine, retry + serial
fallback, batch re-dispatch) must absorb it.

The capstone contract, enforced by ``tests/chaos``: any campaign or
serving run under any fault schedule that the system survives produces
**byte-identical** trace columns / response payloads to the clean run.
Faults may cost time and telemetry, never output.

Schedules are configured with a compact spec string (environment
variable ``SATIOT_FAULTS`` or CLI ``--faults``)::

    seed=7;cache.disk_read=p0.5;executor.task=n1;serving.connection=@3

Per-site rules:

``pX``
    fire each consult independently with probability ``X`` (seeded,
    per-site RNG stream — reproducible across runs);
``nK`` (or a bare integer ``K``)
    fire on the first ``K`` consults of the site;
``@K``
    fire on exactly the ``K``-th consult (1-based) — "crash once,
    mid-run";
``off`` / ``0``
    disabled (useful to mask one site of a longer spec).

Determinism: probability rules draw from a per-site
``random.Random`` stream seeded by ``(seed, site)``, and count rules
advance per-site consult counters, so a given spec replays the same
firing pattern in the same process.  Worker processes rebuild their
plane from ``SATIOT_FAULTS`` and keep independent counters — the
*output* determinism contract never depends on which process a fault
fires in, only on every seam degrading gracefully.
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["FAULTS_ENV", "SITES", "FaultInjected", "FaultRule",
           "FaultPlane", "fault_fires", "get_default_plane",
           "install_plane", "reset_default_plane"]

#: Environment variable holding the process-default fault spec.
FAULTS_ENV = "SATIOT_FAULTS"

#: Injection-site catalog: every seam production code consults.
SITES: Dict[str, str] = {
    "cache.disk_read":
        "corrupt the on-disk .npz entry before the cache reads it "
        "(detected by checksum, quarantined as *.bad, treated as a miss)",
    "cache.disk_write":
        "fail the disk-cache write with an OSError "
        "(counted, warned once, memory tier unaffected)",
    "executor.task":
        "raise FaultInjected inside the shard worker task "
        "(retried with capped exponential backoff, then per-shard "
        "serial fallback in the parent)",
    "executor.worker_kill":
        "SIGKILL the pool worker mid-shard (pool-child processes only; "
        "the broken pool degrades to per-shard serial fallback)",
    "serving.handler":
        "raise FaultInjected inside a micro-batch handler "
        "(the batch is re-dispatched up to max_retries, then each "
        "request gets a contained 500)",
    "serving.connection":
        "drop the client connection before the response is written "
        "(counted; the accept loop survives)",
    "serving.worker_kill":
        "SIGKILL the serving worker process as it accepts a connection "
        "(fleet workers only; the supervisor restarts the worker and "
        "retrying clients land on a live sibling with byte-identical "
        "payloads)",
    "batcher.flush":
        "defer a micro-batch flush by one coalescing window "
        "(costs latency, never output)",
    "stream.shard_write":
        "tear a spilled trace-shard write (half the bytes land); the "
        "writer's readback checksum detects it and rewrites, so the "
        "archive stays byte-identical",
    "twin.extend":
        "abandon the incremental ephemeris extension fast path for one "
        "grid request (falls back to a cold full-range propagation — "
        "costs compute, output stays bit-identical)",
}


class FaultInjected(RuntimeError):
    """An injected fault (carries its injection site)."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at site {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultRule:
    """One site's firing schedule (exactly one mode is active)."""

    site: str
    probability: float = 0.0   # pX: independent per-consult probability
    count: int = 0             # nK: fire on the first K consults
    at: int = 0                # @K: fire on exactly the K-th consult

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(sorted(SITES))}")
        modes = sum([self.probability > 0, self.count > 0, self.at > 0])
        if modes > 1:
            raise ValueError(
                f"fault rule for {self.site!r} must use exactly one of "
                f"p/n/@")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability for {self.site!r} must be in "
                f"[0, 1], got {self.probability}")
        if self.count < 0 or self.at < 0:
            raise ValueError(
                f"fault counts for {self.site!r} must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.probability > 0 or self.count > 0 or self.at > 0

    def token(self) -> str:
        """The spec-string token this rule round-trips to."""
        if self.probability > 0:
            return f"p{self.probability:g}"
        if self.at > 0:
            return f"@{self.at}"
        if self.count > 0:
            return f"n{self.count}"
        return "off"

    @classmethod
    def parse(cls, site: str, token: str) -> "FaultRule":
        token = token.strip().lower()
        if token in ("off", "0", ""):
            return cls(site=site)
        try:
            if token.startswith("p"):
                return cls(site=site, probability=float(token[1:]))
            if token.startswith("@"):
                return cls(site=site, at=int(token[1:]))
            if token.startswith("n"):
                return cls(site=site, count=int(token[1:]))
            return cls(site=site, count=int(token))
        except ValueError as exc:
            # Re-raise our own validation messages verbatim; wrap raw
            # int()/float() parse failures with the grammar hint.
            if "fault" in str(exc):
                raise
            raise ValueError(
                f"bad fault rule {token!r} for site {site!r} "
                f"(expected pFLOAT, nINT, @INT, INT or off)") from exc


class FaultPlane:
    """A seeded schedule of injection rules, consulted by name.

    Thread-safe: the serving layer consults from both the event loop
    and its handler worker thread.
    """

    def __init__(self, rules: Dict[str, FaultRule], seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: Dict[str, FaultRule] = {
            site: rule for site, rule in rules.items() if rule.enabled}
        for site in self.rules:
            if site not in SITES:
                raise ValueError(f"unknown fault site {site!r}")
        #: Per-site consult counters (every consult, firing or not).
        self.consults: Dict[str, int] = {}
        #: Per-site fired counters (telemetry).
        self.fired: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlane":
        """Parse a ``seed=K;site=rule;...`` spec string."""
        seed = 0
        rules: Dict[str, FaultRule] = {}
        for entry in spec.replace(",", ";").split(";"):
            entry = entry.strip()
            if not entry:
                continue
            name, sep, token = entry.partition("=")
            name = name.strip().lower()
            if not sep:
                raise ValueError(
                    f"bad fault spec entry {entry!r} "
                    f"(expected site=rule or seed=INT)")
            if name == "seed":
                try:
                    seed = int(token)
                except ValueError as exc:
                    raise ValueError(
                        f"bad fault seed {token!r}") from exc
                continue
            rules[name] = FaultRule.parse(name, token)
        return cls(rules, seed=seed)

    def to_spec(self) -> str:
        """The canonical spec string (``from_spec`` round-trips it)."""
        parts = [f"seed={self.seed}"]
        parts.extend(f"{site}={rule.token()}"
                     for site, rule in sorted(self.rules.items()))
        return ";".join(parts)

    # ------------------------------------------------------------------
    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}/{site}".encode("utf-8")).hexdigest()
            rng = random.Random(int(digest[:16], 16))
            self._rngs[site] = rng
        return rng

    def should_fire(self, site: str) -> bool:
        """Consult ``site`` once; True when the schedule fires.

        Every consult advances the site's counter, so count-based rules
        (``nK``/``@K``) are a deterministic function of consult order
        within one process.
        """
        with self._lock:
            k = self.consults.get(site, 0) + 1
            self.consults[site] = k
            rule = self.rules.get(site)
            if rule is None:
                return False
            if rule.at > 0:
                fire = k == rule.at
            elif rule.count > 0:
                fire = k <= rule.count
            else:
                fire = self._rng(site).random() < rule.probability
            if fire:
                self.fired[site] = self.fired.get(site, 0) + 1
            return fire

    def summary(self) -> dict:
        """Telemetry view: per-site rule, consult and fired counts."""
        with self._lock:
            sites = sorted(set(self.rules) | set(self.consults))
            return {
                "seed": self.seed,
                "spec": self.to_spec(),
                "sites": {
                    site: {
                        "rule": (self.rules[site].token()
                                 if site in self.rules else "off"),
                        "consults": self.consults.get(site, 0),
                        "fired": self.fired.get(site, 0),
                    }
                    for site in sites
                },
            }


# ----------------------------------------------------------------------
# Process-default plane
# ----------------------------------------------------------------------
_installed: Optional[FaultPlane] = None
_env_plane: Optional[Tuple[str, FaultPlane]] = None


def install_plane(plane: Optional[FaultPlane]) -> None:
    """Install an explicit process-wide plane (overrides the env spec).

    Pass ``None`` to uninstall (the env spec becomes authoritative
    again).  Worker processes do **not** see an installed plane — export
    ``SATIOT_FAULTS`` (the CLI's ``--faults`` does both) when faults
    must reach a shard pool.
    """
    global _installed
    _installed = plane


def get_default_plane() -> Optional[FaultPlane]:
    """The process-default plane, or ``None`` when no faults are armed.

    Resolution order: an :func:`install_plane`-ed plane, then the
    ``SATIOT_FAULTS`` environment spec (parsed once per distinct
    value).  Worker processes rebuild from the environment, so an
    exported spec reaches the whole shard pool.
    """
    global _env_plane
    if _installed is not None:
        return _installed
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    if _env_plane is None or _env_plane[0] != spec:
        _env_plane = (spec, FaultPlane.from_spec(spec))
    return _env_plane[1]


def reset_default_plane() -> None:
    """Forget installed and env-derived planes (mainly for tests)."""
    global _installed, _env_plane
    _installed = None
    _env_plane = None


def fault_fires(site: str) -> bool:
    """Cheap production-code consult: False when no plane is armed."""
    plane = get_default_plane()
    return plane is not None and plane.should_fire(site)
