"""satiot.faults — seeded, deterministic fault-injection plane.

See :mod:`satiot.faults.plane` for the spec-string grammar, the
injection-site catalog and the chaos determinism contract, and
``docs/faults.md`` for the operator guide.
"""

from .plane import (FAULTS_ENV, SITES, FaultInjected, FaultPlane,
                    FaultRule, fault_fires, get_default_plane,
                    install_plane, reset_default_plane)

__all__ = ["FAULTS_ENV", "SITES", "FaultInjected", "FaultPlane",
           "FaultRule", "fault_fires", "get_default_plane",
           "install_plane", "reset_default_plane"]
