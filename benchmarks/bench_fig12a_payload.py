"""Figure 12a — end-to-end reliability vs payload size.

Paper Appendix E: smaller payloads are more reliable; 10-byte and
60-byte transmissions reach 90 % reliability far more often than
120-byte ones.
"""

from satiot.core.report import format_table
from satiot.network.server import reliability_report

from conftest import write_output


def compute(sweep):
    return {payload: reliability_report(result.all_satellite_records())
            for payload, result in sweep.items()}


def test_fig12a_payload_sweep(benchmark, active_payload_sweep):
    reports = benchmark(compute, active_payload_sweep)
    rows = [[payload, report.generated, report.reliability]
            for payload, report in sorted(reports.items())]
    table = format_table(
        ["Payload (bytes)", "#packets", "e2e reliability"],
        rows, precision=3,
        title="Figure 12a: reliability vs payload size "
              "(paper: smaller payloads more reliable)")
    write_output("fig12a_payload", table)

    # Shape: reliability does not improve as payloads grow.
    assert reports[10].reliability >= reports[120].reliability - 0.02
    for report in reports.values():
        assert report.reliability > 0.7
