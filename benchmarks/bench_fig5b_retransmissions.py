"""Figure 5b — DtS retransmission counts under different weather and
antenna conditions.

Paper: the 5/8-wave antenna on sunny days performs best; ~50 % of
packets go through without any DtS retransmission, and the excess
retransmissions are driven by lost ACKs.
"""

import numpy as np

from satiot.core.performance import retransmission_histogram
from satiot.core.report import format_table

from conftest import write_output


def split_by_weather(result):
    """Retransmission counts of packets split by weather at first Tx."""
    sunny, rainy = [], []
    for record in result.all_satellite_records():
        if not record.attempts:
            continue
        t = record.attempts[0].time_s
        (rainy if result.weather.is_raining(t) else sunny).append(
            record.retransmissions)
    return sunny, rainy


def compute(active_default, active_quarter_wave):
    return {
        "5/8 wave": split_by_weather(active_default),
        "1/4 wave": split_by_weather(active_quarter_wave),
    }


def test_fig5b_retransmissions(benchmark, active_default,
                               active_quarter_wave):
    split = benchmark(compute, active_default, active_quarter_wave)
    rows = []
    for antenna, (sunny, rainy) in split.items():
        for weather, counts in (("sunny", sunny), ("rainy", rainy)):
            if not counts:
                continue
            rows.append([
                antenna, weather, len(counts),
                float(np.mean(counts)),
                float(np.mean([c == 0 for c in counts])),
            ])
    table = format_table(
        ["Antenna", "Weather", "#packets", "mean retx",
         "frac needing none"],
        rows, precision=2,
        title="Figure 5b: DtS retransmissions by antenna and weather "
              "(paper: 5/8-wave sunny best; ~50 % need none)")
    write_output("fig5b_retransmissions", table)

    # Robust paper shapes: around half the packets need no DtS
    # retransmission even though end-to-end reliability exceeds 90 %
    # (the ACK-loss asymmetry), and retransmission counts are bounded.
    hist = retransmission_histogram(
        active_default.all_satellite_records())
    assert 0.3 < hist[0] < 0.8
    for _antenna, (sunny, rainy) in split.items():
        for counts in (sunny, rainy):
            if counts:
                assert 0.0 <= np.mean(counts) <= 5.0
    # The antenna ordering itself is a selection-dominated second-order
    # effect here (see EXPERIMENTS.md): the 5/8-wave hears marginal
    # passes the 1/4-wave never transmits in, so its *mean* retx count
    # can exceed the 1/4-wave's despite its stronger links.
