"""Optimization study — predictive Doppler pre-compensation.

Paper Appendix C names Doppler as a beacon-loss factor; its conclusion
calls for DtS optimization.  This bench propagates a real Tianqi pass,
computes the raw Doppler profile, and quantifies the residual after
TLE-based pre-compensation together with the SNR penalty both imply.
"""

import numpy as np

from satiot.constellations.catalog import build_constellation
from satiot.core.active import YUNNAN_PLANTATION
from satiot.core.report import format_table
from satiot.orbits.doppler import doppler_rate_hz_s, doppler_shift_hz
from satiot.orbits.passes import PassPredictor
from satiot.phy.channel import DtSChannel
from satiot.phy.doppler_compensation import (CompensationErrorBudget,
                                             DopplerCompensator)
from satiot.phy.link_budget import LinkBudget
from satiot.phy.lora import LoRaModulation

from conftest import SEED, write_output


def compute():
    constellation = build_constellation("tianqi", seed=SEED)
    satellite = constellation.satellites[0]
    epoch = satellite.tle.epoch
    predictor = PassPredictor(satellite.propagator, YUNNAN_PLANTATION)
    windows = predictor.find_passes(epoch, 86400.0)
    window = max(windows, key=lambda w: w.max_elevation_deg)

    times = np.arange(window.rise_s, window.set_s, 5.0)
    look = predictor.look_angles_at(epoch, times)
    freq = satellite.radio.frequency_hz
    shift = np.asarray(doppler_shift_hz(look.range_rate_km_s, freq))
    rate = doppler_rate_hz_s(np.asarray(look.range_rate_km_s), 5.0, freq)

    modulation = LoRaModulation(spreading_factor=10)
    channel = DtSChannel(LinkBudget(eirp_dbm=10.5, frequency_hz=freq),
                         modulation)
    airtime = modulation.airtime_s(20)
    raw_penalty = np.asarray(channel.doppler_penalty_db(rate, airtime))

    rows = {}
    rows["uncompensated"] = (float(np.abs(shift).max()),
                             float(np.abs(rate).max()),
                             float(raw_penalty.mean()))
    for label, budget in (
            ("TLE-compensated, 2 ppm clock", CompensationErrorBudget()),
            ("TLE-compensated, TCXO 0.5 ppm",
             CompensationErrorBudget(clock_ppm=0.5,
                                     timing_error_s=0.1))):
        comp = DopplerCompensator(freq, budget)
        res_shift = np.asarray(comp.residual_shift_hz(
            look.range_rate_km_s))
        res_rate = np.asarray(comp.residual_rate_hz_s(rate))
        res_penalty = np.asarray(channel.doppler_penalty_db(res_rate,
                                                            airtime))
        rows[label] = (float(res_shift.max()), float(res_rate.max()),
                       float(res_penalty.mean()))
    return rows


def test_optimization_doppler(benchmark):
    rows_data = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[name, shift, rate, penalty]
            for name, (shift, rate, penalty) in rows_data.items()]
    table = format_table(
        ["Configuration", "max |shift| (Hz)", "max |rate| (Hz/s)",
         "mean SNR penalty (dB)"],
        rows, precision=2,
        title="Optimization: predictive Doppler compensation on the "
              "best Tianqi pass")
    write_output("optimization_doppler", table)

    raw = rows_data["uncompensated"]
    tcxo = rows_data["TLE-compensated, TCXO 0.5 ppm"]
    assert tcxo[0] < raw[0]       # residual offset shrinks
    assert tcxo[2] <= raw[2]      # and so does the demod penalty
    # Raw Doppler at 400 MHz LEO is kHz-scale (paper Appendix C).
    assert 3_000.0 < raw[0] < 15_000.0
