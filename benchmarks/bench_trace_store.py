"""Trace store — row-object lists vs the columnar data plane.

Measures the four costs the PR 2 refactor targets, at campaign scale
(1e4 – 1e6 traces, shrunk to 1e4 by ``SATIOT_BENCH_TINY=1``):

* **build**   — turning per-pass receiver output into dataset pieces
  (row path: one ``BeaconTrace`` allocation per beacon; columnar path:
  ``TraceColumns.from_arrays`` straight from the sample arrays);
* **IPC**     — pickling the per-pass pieces, the serialisation a shard
  result pays to cross the worker-pool process boundary;
* **merge**   — what ``PassiveCampaign`` pays to assemble the campaign
  dataset from shard results: unpickling the shard payload and
  concatenating the pieces (row path: object unpickling + list extend;
  columnar path: array unpickling + one canonical block ``concat``);
* **filter**  — the standard analysis query: site + constellation +
  time-window cut, then extract the RSSI column (row path: chained
  predicate scans and a per-trace attribute comprehension, exactly the
  pre-columnar ``TraceDataset`` replicated inline below; columnar
  path: interned-code masks combined into one boolean gather of a
  single column).

It also archives the merged dataset through CSV / JSONL / NPZ and
records the file sizes.

Asserted contracts (the ISSUE acceptance numbers):

* at 1e5 traces the columnar merge+filter path is >= 5x faster than the
  row baseline (only checked when a >= 1e5 size is measured, i.e. not
  in tiny mode — tiny mode asserts the columnar path merely wins);
* the NPZ archive is >= 3x smaller than the CSV archive at every size.

Metrics land in ``benchmarks/output/trace_store.json`` for the CI
artifact, next to the human-readable table.
"""

from __future__ import annotations

import gc
import os
import pickle
import time

import numpy as np

from satiot.core.report import format_table
from satiot.groundstation.traces import (BeaconTrace, TraceColumns,
                                         TraceDataset)

from conftest import OUTPUT_DIR, SEED, write_json, write_output

TINY = os.environ.get("SATIOT_BENCH_TINY", "").strip() in ("1", "true")

SIZES = (10_000,) if TINY else (10_000, 100_000, 1_000_000)
BEACONS_PER_PASS = 600
SITES = ("HK", "SYD")
CONSTELLATIONS = ("Tianqi", "FOSSA")


# ---------------------------------------------------------------------------
# Synthetic per-pass receiver output (arrays, as the PHY layer emits them)

def _synthesize_passes(n_traces: int):
    """Yield per-pass dicts of sample arrays, realistic and quantized."""
    rng = np.random.default_rng(SEED)
    passes = []
    produced = 0
    index = 0
    while produced < n_traces:
        n = min(BEACONS_PER_PASS, n_traces - produced)
        site = SITES[index % len(SITES)]
        constellation = CONSTELLATIONS[index % len(CONSTELLATIONS)]
        norad = 44100 + (index % 7)
        t0 = 86400.0 * (index // len(SITES))
        passes.append(dict(
            n=n,
            time_s=np.round(t0 + np.cumsum(rng.uniform(0.8, 1.2, n)), 3),
            station_id=f"{site}-1", site=site,
            constellation=constellation,
            satellite=f"{constellation}-{norad}",
            norad_id=norad, frequency_hz=400.45e6,
            rssi_dbm=np.round(rng.uniform(-140.0, -115.0, n) * 2) / 2,
            snr_db=np.round(rng.uniform(-20.0, 5.0, n) * 4) / 4,
            elevation_deg=np.round(rng.uniform(10.0, 80.0, n), 1),
            azimuth_deg=np.round(rng.uniform(0.0, 360.0, n), 1),
            range_km=np.round(rng.uniform(500.0, 2500.0, n), 1),
            doppler_hz=np.round(rng.uniform(-9000.0, 9000.0, n)),
            raining=bool(index % 5 == 0),
            pass_id=f"{site}-{norad}-{index}",
        ))
        produced += n
        index += 1
    return passes


# ---------------------------------------------------------------------------
# Row baseline: the pre-columnar representation, replicated verbatim
# (a list of dataclass rows with predicate-scan query helpers — this is
# what ``satiot.groundstation.traces.TraceDataset`` was before PR 2).

class _RowDataset:
    def __init__(self, traces=None):
        self._traces = list(traces or [])

    def extend(self, traces):
        self._traces.extend(traces)

    def __len__(self):
        return len(self._traces)

    def __iter__(self):
        return iter(self._traces)

    def filter(self, predicate):
        return _RowDataset(t for t in self._traces if predicate(t))

    def by_constellation(self, name):
        name = name.lower()
        return self.filter(lambda t: t.constellation.lower() == name)

    def by_site(self, site):
        return self.filter(lambda t: t.site == site)


def _build_rows(passes) -> list:
    pieces = []
    for p in passes:
        pieces.append([
            BeaconTrace(
                time_s=float(p["time_s"][i]), station_id=p["station_id"],
                site=p["site"], constellation=p["constellation"],
                satellite=p["satellite"], norad_id=p["norad_id"],
                frequency_hz=p["frequency_hz"],
                rssi_dbm=float(p["rssi_dbm"][i]),
                snr_db=float(p["snr_db"][i]),
                elevation_deg=float(p["elevation_deg"][i]),
                azimuth_deg=float(p["azimuth_deg"][i]),
                range_km=float(p["range_km"][i]),
                doppler_hz=float(p["doppler_hz"][i]),
                raining=p["raining"], pass_id=p["pass_id"])
            for i in range(p["n"])])
    return pieces


def _merge_rows(pieces) -> _RowDataset:
    merged = _RowDataset()
    for piece in pieces:
        merged.extend(piece)
    return merged


def _filter_rows(rows: _RowDataset, t_lo, t_hi) -> np.ndarray:
    sub = rows.by_site("HK").by_constellation("tianqi") \
        .filter(lambda t: t_lo <= t.time_s < t_hi)
    return np.asarray([t.rssi_dbm for t in sub])


# ---------------------------------------------------------------------------
# Columnar path

def _build_blocks(passes):
    return [TraceColumns.from_arrays(**p) for p in passes]


def _merge_blocks(blob) -> TraceDataset:
    ds = TraceDataset()
    for block in pickle.loads(blob):
        ds.extend(block)
    ds.columns          # force consolidation so merge cost is measured
    return ds


def _filter_columns(ds: TraceDataset, t_lo, t_hi) -> np.ndarray:
    cols = ds.columns
    times = cols.column("time_s")
    mask = (cols.string_column("site").mask_eq("HK")
            & cols.string_column("constellation").mask_eq(
                "tianqi", casefold=True)
            & (times >= t_lo) & (times < t_hi))
    return cols.column("rssi_dbm")[mask]


# ---------------------------------------------------------------------------

def _timeit(fn, *args, repeats: int = 1):
    """Best-of-``repeats`` wall time (GC paused so a collection of the
    row-object heap doesn't land inside a timed columnar op)."""
    result, best = None, None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn(*args)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _merge_rows_blob(blob) -> _RowDataset:
    return _merge_rows(pickle.loads(blob))


def _measure(n_traces: int) -> dict:
    passes = _synthesize_passes(n_traces)
    t_lo, t_hi = 0.0, float(np.median(
        np.concatenate([p["time_s"] for p in passes])))
    repeats = 3 if n_traces <= 100_000 else 1
    def dumps(payload):
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    row_pieces, row_build = _timeit(_build_rows, passes)
    row_blob, row_ipc = _timeit(dumps, row_pieces)
    rows, row_merge = _timeit(_merge_rows_blob, row_blob,
                              repeats=repeats)
    row_hits, row_filter = _timeit(_filter_rows, rows, t_lo, t_hi,
                                   repeats=repeats)

    col_pieces, col_build = _timeit(_build_blocks, passes)
    col_blob, col_ipc = _timeit(dumps, col_pieces)
    dataset, col_merge = _timeit(_merge_blocks, col_blob,
                                 repeats=repeats)
    col_hits, col_filter = _timeit(_filter_columns, dataset, t_lo, t_hi,
                                   repeats=repeats)

    # Both representations agree before we quote any speedups.
    assert len(rows) == len(dataset) == n_traces
    assert np.array_equal(row_hits, col_hits)
    assert list(rows)[:50] == list(dataset[:50])

    OUTPUT_DIR.mkdir(exist_ok=True)
    sizes = {}
    for fmt in ("csv", "jsonl", "npz"):
        path = OUTPUT_DIR / f"trace_store_probe.{fmt}"
        dataset.save(path, trace_format=fmt)
        sizes[fmt] = path.stat().st_size
        path.unlink()

    return {
        "traces": n_traces, "passes": len(passes),
        "filter_hits": int(col_hits.size),
        "row": {"build_s": row_build, "merge_s": row_merge,
                "filter_s": row_filter, "pickle_s": row_ipc,
                "pickle_bytes": len(row_blob)},
        "columnar": {"build_s": col_build, "merge_s": col_merge,
                     "filter_s": col_filter, "pickle_s": col_ipc,
                     "pickle_bytes": len(col_blob),
                     "resident_bytes": dataset.nbytes},
        "merge_filter_speedup":
            (row_merge + row_filter) / max(col_merge + col_filter, 1e-9),
        "archive_bytes": sizes,
        "csv_over_npz": sizes["csv"] / max(sizes["npz"], 1),
    }


def test_trace_store(benchmark):
    results = benchmark.pedantic(
        lambda: [_measure(n) for n in SIZES], rounds=1, iterations=1)

    for res in results:
        assert res["csv_over_npz"] >= 3.0, \
            (f"NPZ not >=3x smaller than CSV at {res['traces']} traces "
             f"(ratio {res['csv_over_npz']:.2f}x)")

    checked = [r for r in results if r["traces"] >= 100_000]
    for res in checked:
        assert res["merge_filter_speedup"] >= 5.0, \
            (f"merge+filter speedup {res['merge_filter_speedup']:.1f}x "
             f"< 5x at {res['traces']} traces")
    if not checked:   # tiny mode: the columnar path must still win
        assert all(r["merge_filter_speedup"] > 1.0 for r in results)

    rows = []
    for res in results:
        row, col = res["row"], res["columnar"]
        rows.append([
            res["traces"],
            f"{row['build_s'] / max(col['build_s'], 1e-9):.1f}x",
            f"{row['merge_s'] / max(col['merge_s'], 1e-9):.1f}x",
            f"{row['filter_s'] / max(col['filter_s'], 1e-9):.1f}x",
            f"{res['merge_filter_speedup']:.1f}x",
            f"{row['pickle_s'] / max(col['pickle_s'], 1e-9):.1f}x",
            f"{row['pickle_bytes'] / max(col['pickle_bytes'], 1):.1f}x",
            f"{res['csv_over_npz']:.1f}x",
        ])
    table = format_table(
        ["Traces", "build", "merge", "filter", "merge+filter",
         "pickle", "IPC bytes", "CSV/NPZ"], rows,
        title="Trace store — columnar speedup over row objects "
              "(higher is better)")
    write_output("trace_store", table)
    write_json("trace_store", {"tiny": TINY, "sizes": results})
