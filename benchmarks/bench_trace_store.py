"""Trace store — row-object lists vs the columnar data plane.

Measures the four costs the PR 2 refactor targets, at campaign scale
(1e4 – 1e6 traces, shrunk to 1e4 by ``SATIOT_BENCH_TINY=1``):

* **build**   — turning per-pass receiver output into dataset pieces
  (row path: one ``BeaconTrace`` allocation per beacon; columnar path:
  ``TraceColumns.from_arrays`` straight from the sample arrays);
* **IPC**     — pickling the per-pass pieces, the serialisation a shard
  result pays to cross the worker-pool process boundary;
* **merge**   — what ``PassiveCampaign`` pays to assemble the campaign
  dataset from shard results: unpickling the shard payload and
  concatenating the pieces (row path: object unpickling + list extend;
  columnar path: array unpickling + one canonical block ``concat``);
* **filter**  — the standard analysis query: site + constellation +
  time-window cut, then extract the RSSI column (row path: chained
  predicate scans and a per-trace attribute comprehension, exactly the
  pre-columnar ``TraceDataset`` replicated inline below; columnar
  path: interned-code masks combined into one boolean gather of a
  single column).

It also archives the merged dataset through CSV / JSONL / NPZ and
records the file sizes.

The **streaming tier** (``test_trace_store_streaming``, also runnable
standalone via ``python bench_trace_store.py --smoke``) spills a
campaign through :mod:`satiot.streams` in a child process and measures
the child's *peak RSS* (``resource.getrusage``): out-of-core memory
must stay within a fixed budget that does not grow with trace count,
while the streaming KPI reducers reproduce the in-RAM numbers exactly.
The spilled shard manifest is copied into ``benchmarks/output/`` for
the CI artifact.

Asserted contracts (the ISSUE acceptance numbers):

* at 1e5 traces the columnar merge+filter path is >= 5x faster than the
  row baseline (only checked when a >= 1e5 size is measured, i.e. not
  in tiny mode — tiny mode asserts the columnar path merely wins);
* the NPZ archive is >= 3x smaller than the CSV archive at every size;
* the streaming tier's child peak RSS stays under
  :data:`STREAM_RSS_BUDGET_MIB` at every size (1e7 traces in full
  mode), and its KPIs are bit-identical to the in-RAM fold (checked
  directly up to 1e6; via shard-partitioning invariance at 1e7).

Metrics land in ``benchmarks/output/trace_store.json`` and
``trace_store_streaming.json`` for the CI artifact, next to the
human-readable tables.
"""

from __future__ import annotations

import gc
import json
import os
import pickle
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import satiot
from satiot.core.report import format_table
from satiot.groundstation.traces import (BeaconTrace, TraceColumns,
                                         TraceDataset)

from conftest import OUTPUT_DIR, SEED, write_json, write_output

TINY = os.environ.get("SATIOT_BENCH_TINY", "").strip() in ("1", "true")

SIZES = (10_000,) if TINY else (10_000, 100_000, 1_000_000)
BEACONS_PER_PASS = 600
SITES = ("HK", "SYD")
CONSTELLATIONS = ("Tianqi", "FOSSA")

#: Streaming tier sizes: smoke keeps CI in seconds; full mode proves
#: the 1e7-trace acceptance bound.
STREAM_SIZES = (100_000,) if TINY else (1_000_000, 10_000_000)
STREAM_ROWS_PER_SHARD = 200_000
#: Peak-RSS ceiling for the spilling child process.  Fixed — it must
#: NOT scale with the trace count: interpreter + NumPy baseline plus
#: one shard buffer and O(passes) reducer state.  An in-RAM 1e7-trace
#: dataset alone is ~0.9 GiB resident, transiently doubled while the
#: campaign consolidates its blocks.
STREAM_RSS_BUDGET_MIB = 600.0
#: Largest size whose in-RAM reference fold is computed directly in
#: the parent; beyond it the equality is established by shard-
#: partitioning invariance (two children, different shard sizes).
STREAM_IN_RAM_CHECK_MAX = 1_000_000

_SRC_DIR = str(Path(satiot.__file__).resolve().parent.parent)


# ---------------------------------------------------------------------------
# Synthetic per-pass receiver output (arrays, as the PHY layer emits them)

def _iter_passes(n_traces: int):
    """Yield per-pass dicts of sample arrays, realistic and quantized.

    A generator so the streaming tier can spill a campaign that never
    exists in memory at once; the emitted stream is a deterministic
    function of ``(SEED, n_traces)``.
    """
    rng = np.random.default_rng(SEED)
    produced = 0
    index = 0
    while produced < n_traces:
        n = min(BEACONS_PER_PASS, n_traces - produced)
        site = SITES[index % len(SITES)]
        constellation = CONSTELLATIONS[index % len(CONSTELLATIONS)]
        norad = 44100 + (index % 7)
        t0 = 86400.0 * (index // len(SITES))
        yield dict(
            n=n,
            time_s=np.round(t0 + np.cumsum(rng.uniform(0.8, 1.2, n)), 3),
            station_id=f"{site}-1", site=site,
            constellation=constellation,
            satellite=f"{constellation}-{norad}",
            norad_id=norad, frequency_hz=400.45e6,
            rssi_dbm=np.round(rng.uniform(-140.0, -115.0, n) * 2) / 2,
            snr_db=np.round(rng.uniform(-20.0, 5.0, n) * 4) / 4,
            elevation_deg=np.round(rng.uniform(10.0, 80.0, n), 1),
            azimuth_deg=np.round(rng.uniform(0.0, 360.0, n), 1),
            range_km=np.round(rng.uniform(500.0, 2500.0, n), 1),
            doppler_hz=np.round(rng.uniform(-9000.0, 9000.0, n)),
            raining=bool(index % 5 == 0),
            pass_id=f"{site}-{norad}-{index}",
        )
        produced += n
        index += 1


def _synthesize_passes(n_traces: int):
    return list(_iter_passes(n_traces))


# ---------------------------------------------------------------------------
# Row baseline: the pre-columnar representation, replicated verbatim
# (a list of dataclass rows with predicate-scan query helpers — this is
# what ``satiot.groundstation.traces.TraceDataset`` was before PR 2).

class _RowDataset:
    def __init__(self, traces=None):
        self._traces = list(traces or [])

    def extend(self, traces):
        self._traces.extend(traces)

    def __len__(self):
        return len(self._traces)

    def __iter__(self):
        return iter(self._traces)

    def filter(self, predicate):
        return _RowDataset(t for t in self._traces if predicate(t))

    def by_constellation(self, name):
        name = name.lower()
        return self.filter(lambda t: t.constellation.lower() == name)

    def by_site(self, site):
        return self.filter(lambda t: t.site == site)


def _build_rows(passes) -> list:
    pieces = []
    for p in passes:
        pieces.append([
            BeaconTrace(
                time_s=float(p["time_s"][i]), station_id=p["station_id"],
                site=p["site"], constellation=p["constellation"],
                satellite=p["satellite"], norad_id=p["norad_id"],
                frequency_hz=p["frequency_hz"],
                rssi_dbm=float(p["rssi_dbm"][i]),
                snr_db=float(p["snr_db"][i]),
                elevation_deg=float(p["elevation_deg"][i]),
                azimuth_deg=float(p["azimuth_deg"][i]),
                range_km=float(p["range_km"][i]),
                doppler_hz=float(p["doppler_hz"][i]),
                raining=p["raining"], pass_id=p["pass_id"])
            for i in range(p["n"])])
    return pieces


def _merge_rows(pieces) -> _RowDataset:
    merged = _RowDataset()
    for piece in pieces:
        merged.extend(piece)
    return merged


def _filter_rows(rows: _RowDataset, t_lo, t_hi) -> np.ndarray:
    sub = rows.by_site("HK").by_constellation("tianqi") \
        .filter(lambda t: t_lo <= t.time_s < t_hi)
    return np.asarray([t.rssi_dbm for t in sub])


# ---------------------------------------------------------------------------
# Columnar path

def _build_blocks(passes):
    return [TraceColumns.from_arrays(**p) for p in passes]


def _merge_blocks(blob) -> TraceDataset:
    ds = TraceDataset()
    for block in pickle.loads(blob):
        ds.extend(block)
    ds.columns          # force consolidation so merge cost is measured
    return ds


def _filter_columns(ds: TraceDataset, t_lo, t_hi) -> np.ndarray:
    cols = ds.columns
    times = cols.column("time_s")
    mask = (cols.string_column("site").mask_eq("HK")
            & cols.string_column("constellation").mask_eq(
                "tianqi", casefold=True)
            & (times >= t_lo) & (times < t_hi))
    return cols.column("rssi_dbm")[mask]


# ---------------------------------------------------------------------------

def _timeit(fn, *args, repeats: int = 1):
    """Best-of-``repeats`` wall time (GC paused so a collection of the
    row-object heap doesn't land inside a timed columnar op)."""
    result, best = None, None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = fn(*args)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _merge_rows_blob(blob) -> _RowDataset:
    return _merge_rows(pickle.loads(blob))


def _measure(n_traces: int) -> dict:
    passes = _synthesize_passes(n_traces)
    t_lo, t_hi = 0.0, float(np.median(
        np.concatenate([p["time_s"] for p in passes])))
    repeats = 3 if n_traces <= 100_000 else 1
    def dumps(payload):
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    row_pieces, row_build = _timeit(_build_rows, passes)
    row_blob, row_ipc = _timeit(dumps, row_pieces)
    rows, row_merge = _timeit(_merge_rows_blob, row_blob,
                              repeats=repeats)
    row_hits, row_filter = _timeit(_filter_rows, rows, t_lo, t_hi,
                                   repeats=repeats)

    col_pieces, col_build = _timeit(_build_blocks, passes)
    col_blob, col_ipc = _timeit(dumps, col_pieces)
    dataset, col_merge = _timeit(_merge_blocks, col_blob,
                                 repeats=repeats)
    col_hits, col_filter = _timeit(_filter_columns, dataset, t_lo, t_hi,
                                   repeats=repeats)

    # Both representations agree before we quote any speedups.
    assert len(rows) == len(dataset) == n_traces
    assert np.array_equal(row_hits, col_hits)
    assert list(rows)[:50] == list(dataset[:50])

    OUTPUT_DIR.mkdir(exist_ok=True)
    sizes = {}
    for fmt in ("csv", "jsonl", "npz"):
        path = OUTPUT_DIR / f"trace_store_probe.{fmt}"
        dataset.save(path, trace_format=fmt)
        sizes[fmt] = path.stat().st_size
        path.unlink()

    return {
        "traces": n_traces, "passes": len(passes),
        "filter_hits": int(col_hits.size),
        "row": {"build_s": row_build, "merge_s": row_merge,
                "filter_s": row_filter, "pickle_s": row_ipc,
                "pickle_bytes": len(row_blob)},
        "columnar": {"build_s": col_build, "merge_s": col_merge,
                     "filter_s": col_filter, "pickle_s": col_ipc,
                     "pickle_bytes": len(col_blob),
                     "resident_bytes": dataset.nbytes},
        "merge_filter_speedup":
            (row_merge + row_filter) / max(col_merge + col_filter, 1e-9),
        "archive_bytes": sizes,
        "csv_over_npz": sizes["csv"] / max(sizes["npz"], 1),
    }


def test_trace_store(benchmark):
    results = benchmark.pedantic(
        lambda: [_measure(n) for n in SIZES], rounds=1, iterations=1)

    for res in results:
        assert res["csv_over_npz"] >= 3.0, \
            (f"NPZ not >=3x smaller than CSV at {res['traces']} traces "
             f"(ratio {res['csv_over_npz']:.2f}x)")

    checked = [r for r in results if r["traces"] >= 100_000]
    for res in checked:
        assert res["merge_filter_speedup"] >= 5.0, \
            (f"merge+filter speedup {res['merge_filter_speedup']:.1f}x "
             f"< 5x at {res['traces']} traces")
    if not checked:   # tiny mode: the columnar path must still win
        assert all(r["merge_filter_speedup"] > 1.0 for r in results)

    rows = []
    for res in results:
        row, col = res["row"], res["columnar"]
        rows.append([
            res["traces"],
            f"{row['build_s'] / max(col['build_s'], 1e-9):.1f}x",
            f"{row['merge_s'] / max(col['merge_s'], 1e-9):.1f}x",
            f"{row['filter_s'] / max(col['filter_s'], 1e-9):.1f}x",
            f"{res['merge_filter_speedup']:.1f}x",
            f"{row['pickle_s'] / max(col['pickle_s'], 1e-9):.1f}x",
            f"{row['pickle_bytes'] / max(col['pickle_bytes'], 1):.1f}x",
            f"{res['csv_over_npz']:.1f}x",
        ])
    table = format_table(
        ["Traces", "build", "merge", "filter", "merge+filter",
         "pickle", "IPC bytes", "CSV/NPZ"], rows,
        title="Trace store — columnar speedup over row objects "
              "(higher is better)")
    write_output("trace_store", table)
    write_json("trace_store", {"tiny": TINY, "sizes": results})


# ---------------------------------------------------------------------------
# Streaming tier: out-of-core spill in a child process, peak RSS asserted

def _kpis_json(kpis) -> str:
    """Canonical text form of a reducer's finalized KPIs.

    NaN survives ``json.dumps``/``loads`` and float repr round-trips
    float64 exactly, so string equality here is bit equality of every
    KPI value.
    """
    return json.dumps({"/".join(subject): values
                       for subject, values in kpis.items()},
                      sort_keys=True)


def _stream_child(spec: dict) -> None:
    """Child-process body: synthesize, spill, fold — never hold the
    campaign in memory.  Emits one JSON line on stdout."""
    import resource

    from satiot.streams.reducers import StreamingKpiReducer
    from satiot.streams.spill import ShardSpillWriter

    n_traces = spec["n_traces"]
    writer = ShardSpillWriter(
        spec["spill_dir"], rows_per_shard=spec["rows_per_shard"],
        fingerprint=f"bench-trace-store-{n_traces}")
    reducer = StreamingKpiReducer()
    t_max = 0.0
    start = time.perf_counter()
    for p in _iter_passes(n_traces):
        block = TraceColumns.from_arrays(**p)
        t_max = max(t_max, float(p["time_s"][-1]))
        writer.write(block)
        reducer.update(block)
    manifest = writer.finalize(meta={"engine": "bench_trace_store"})
    span_s = t_max + 1.0
    kpis = reducer.finalize(span_s)
    print(json.dumps({
        "maxrss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "rows": manifest["total_rows"],
        "shards": len(manifest["shards"]),
        "span_s": span_s,
        "wall_s": time.perf_counter() - start,
        "kpis_json": _kpis_json(kpis),
    }))


def _run_stream_child(n_traces: int, rows_per_shard: int,
                      spill_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    spec = json.dumps({"n_traces": n_traces,
                       "rows_per_shard": rows_per_shard,
                       "spill_dir": str(spill_dir)})
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--stream-child", spec],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"stream child failed (rc {proc.returncode}):\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def _in_ram_kpis_json(n_traces: int) -> str:
    """Reference fold with the whole campaign materialized at once."""
    from satiot.streams.reducers import StreamingKpiReducer

    blocks = [TraceColumns.from_arrays(**p)
              for p in _iter_passes(n_traces)]
    whole = TraceColumns.concat(blocks)
    t_max = float(whole.column("time_s").max())
    reducer = StreamingKpiReducer()
    reducer.update(whole)
    return _kpis_json(reducer.finalize(t_max + 1.0))


def _bytes_per_row_estimate() -> float:
    probe = TraceDataset()
    for p in _iter_passes(6_000):
        probe.extend(TraceColumns.from_arrays(**p))
    return probe.nbytes / len(probe)


def _measure_streaming(n_traces: int) -> dict:
    # Clamp so even smoke sizes cut several shards.
    rows_per_shard = min(STREAM_ROWS_PER_SHARD,
                         max(10_000, n_traces // 4))
    with tempfile.TemporaryDirectory(prefix="satiot-bench-spill-") as tmp:
        spill_dir = Path(tmp) / "spill"
        child = _run_stream_child(n_traces, rows_per_shard, spill_dir)
        manifest = json.loads(
            (spill_dir / "manifest.json").read_text())

        assert child["rows"] == n_traces
        maxrss_mib = child["maxrss_kib"] / 1024.0
        assert maxrss_mib <= STREAM_RSS_BUDGET_MIB, \
            (f"streaming child peaked at {maxrss_mib:.0f} MiB "
             f"(> {STREAM_RSS_BUDGET_MIB:.0f} MiB budget) "
             f"at {n_traces} traces")

        # Streaming KPIs must reproduce the in-RAM fold exactly.  Up
        # to STREAM_IN_RAM_CHECK_MAX the reference is computed here in
        # one consolidated block; past it the campaign no longer fits
        # comfortably, so a second child with a different shard size
        # must agree bit-for-bit (partition invariance — the one-block
        # fold is just the coarsest partition).
        if n_traces <= STREAM_IN_RAM_CHECK_MAX:
            reference, check = _in_ram_kpis_json(n_traces), "in-ram"
        else:
            with tempfile.TemporaryDirectory(
                    prefix="satiot-bench-spill-alt-") as alt:
                sibling = _run_stream_child(
                    n_traces, int(rows_per_shard * 0.65),
                    Path(alt) / "spill")
            reference, check = sibling["kpis_json"], "repartition"
        assert child["kpis_json"] == reference, \
            f"streaming KPIs diverged from {check} fold at {n_traces}"

    return {
        "traces": n_traces,
        "rows_per_shard": rows_per_shard,
        "shards": child["shards"],
        "wall_s": child["wall_s"],
        "maxrss_mib": maxrss_mib,
        "rss_budget_mib": STREAM_RSS_BUDGET_MIB,
        "in_ram_bytes_est": int(n_traces * _BYTES_PER_ROW),
        "kpi_check": check,
        "manifest": manifest,
    }


_BYTES_PER_ROW = None


def _run_streaming_tier(sizes) -> list:
    global _BYTES_PER_ROW
    if _BYTES_PER_ROW is None:
        _BYTES_PER_ROW = _bytes_per_row_estimate()
    results = [_measure_streaming(n) for n in sizes]

    rows = []
    for res in results:
        rows.append([
            res["traces"], res["shards"],
            f"{res['maxrss_mib']:.0f} MiB",
            f"{res['rss_budget_mib']:.0f} MiB",
            f"{res['in_ram_bytes_est'] / 2**20:.0f} MiB",
            f"{res['wall_s']:.1f} s",
            res["kpi_check"],
        ])
    table = format_table(
        ["Traces", "shards", "peak RSS", "budget", "in-RAM est",
         "wall", "KPI check"], rows,
        title="Trace store — streaming spill tier (child-process "
              "peak RSS vs fixed budget)")
    write_output("trace_store_streaming", table)
    write_json("trace_store_streaming", {
        "tiny": TINY,
        "sizes": [{k: v for k, v in r.items() if k != "manifest"}
                  for r in results],
    })
    # CI artifact: the shard manifest of the largest spilled archive.
    write_json("trace_store_stream_manifest", results[-1]["manifest"])
    return results


def test_trace_store_streaming(benchmark):
    benchmark.pedantic(lambda: _run_streaming_tier(STREAM_SIZES),
                       rounds=1, iterations=1)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="trace-store streaming benchmark tier")
    parser.add_argument("--smoke", action="store_true",
                        help="smoke sizes regardless of "
                             "SATIOT_BENCH_TINY")
    parser.add_argument("--stream-child", metavar="SPEC",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.stream_child:
        _stream_child(json.loads(args.stream_child))
        return 0
    sizes = (100_000,) if args.smoke else STREAM_SIZES
    results = _run_streaming_tier(sizes)
    for res in results:
        print(f"{res['traces']} traces -> {res['shards']} shards, "
              f"peak RSS {res['maxrss_mib']:.0f} MiB "
              f"(budget {res['rss_budget_mib']:.0f} MiB), "
              f"KPI check: {res['kpi_check']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
