"""Figure 3a — daily presence duration per constellation and location.

Paper reference points: FOSSA 1.1-3.0 h, PICO 5.7 h, Tianqi (22 sats)
19.1 h, stable across the four continent sites.

Driven by the committed spec ``scenarios/fig3a_presence.json``
(kind ``presence`` over the four continent sites).
"""

from satiot.core.references import PRESENCE_HOURS_PER_DAY
from satiot.core.report import format_table
from satiot.core.sites import CONTINENT_SITES

from conftest import run_bench_scenario, write_output


def compute():
    return run_bench_scenario("fig3a_presence")


def test_fig3a_daily_presence(benchmark):
    run = benchmark.pedantic(compute, rounds=1, iterations=1)
    store = run.store
    cell = store.cells()[0]
    satellites = store.subject_values("satellites", cell)
    rows = []
    for name in sorted(satellites):
        row = [name, int(satellites[name])]
        row += [store.value(cell, "presence_h_day", f"{name}@{code}")
                for code in CONTINENT_SITES]
        row.append(PRESENCE_HOURS_PER_DAY.get(name))
        rows.append(row)
    table = format_table(
        ["Constellation", "#SATs"] + [f"{c} (h/day)"
                                      for c in CONTINENT_SITES]
        + ["paper (h/day)"],
        rows, precision=1,
        title="Figure 3a: theoretical daily presence per constellation")
    write_output("fig3a_presence", table)

    by_name = {row[0]: row for row in rows}
    # Shape: bigger constellations are present longer; Tianqi ~19 h.
    hk = CONTINENT_SITES.index("HK") + 2
    assert by_name["Tianqi"][hk] > by_name["PICO"][hk] \
        > by_name["FOSSA"][hk]
    assert 13.0 < by_name["Tianqi"][hk] < 22.0
    # Availability is roughly stable across the four sites.
    for row in rows:
        values = row[2:6]
        assert max(values) - min(values) < 0.8 * max(values) + 1.0
