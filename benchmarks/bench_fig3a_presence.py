"""Figure 3a — daily presence duration per constellation and location.

Paper reference points: FOSSA 1.1-3.0 h, PICO 5.7 h, Tianqi (22 sats)
19.1 h, stable across the four continent sites.
"""

from satiot.core.availability import presence_by_site
from satiot.core.report import format_table
from satiot.core.sites import CONTINENT_SITES, SITES

from conftest import write_output

PAPER_REFERENCE = {"Tianqi": 19.1, "PICO": 5.7, "FOSSA": 2.0,
                   "CSTP": None}


def compute_presence(result):
    locations = {code: SITES[code].location for code in CONTINENT_SITES}
    epoch = result.epoch
    return presence_by_site(result.constellations, locations, epoch,
                            days=1.0)


def test_fig3a_daily_presence(benchmark, passive_continent):
    presence = benchmark(compute_presence, passive_continent)
    rows = []
    for con_name, per_site in sorted(presence.items()):
        constellation = passive_continent.constellations[con_name]
        row = [constellation.name, len(constellation)]
        row += [per_site[code] for code in CONTINENT_SITES]
        row.append(PAPER_REFERENCE.get(constellation.name))
        rows.append(row)
    table = format_table(
        ["Constellation", "#SATs"] + [f"{c} (h/day)"
                                      for c in CONTINENT_SITES]
        + ["paper (h/day)"],
        rows, precision=1,
        title="Figure 3a: theoretical daily presence per constellation")
    write_output("fig3a_presence", table)

    by_name = {row[0]: row for row in rows}
    # Shape: bigger constellations are present longer; Tianqi ~19 h.
    hk = CONTINENT_SITES.index("HK") + 2
    assert by_name["Tianqi"][hk] > by_name["PICO"][hk] \
        > by_name["FOSSA"][hk]
    assert 13.0 < by_name["Tianqi"][hk] < 22.0
    # Availability is roughly stable across the four sites.
    for row in rows:
        values = row[2:6]
        assert max(values) - min(values) < 0.8 * max(values) + 1.0
