"""Ablation — constellation size vs service continuity.

Extends paper Figure 3a beyond today's fleets: how many satellites are
needed before a spot's theoretical coverage approaches 24 h and the
worst contact gap drops below a store-and-forward-friendly bound?

Driven by the committed spec
``scenarios/ablation_constellation_size.json`` (kind ``presence``,
sweeping Walker-synth ``constellation.walker.count``).
"""

from satiot.core.report import format_table

from conftest import run_bench_scenario, write_output

AXIS = "constellation.walker.count"


def compute():
    return run_bench_scenario("ablation_constellation_size")


def test_ablation_constellation_size(benchmark):
    run = benchmark.pedantic(compute, rounds=1, iterations=1)
    store = run.store
    by_size = {run.cell_params(cell)[AXIS]: cell
               for cell in store.cells()}
    rows = [[size,
             store.value(cell, "presence_h_day", f"ABL-{size}@HK"),
             store.value(cell, "max_contact_gap_min", f"ABL-{size}@HK")]
            for size, cell in by_size.items()]
    table = format_table(
        ["#SATs @600 km SSO", "presence (h/day)", "max gap (min)"],
        rows, precision=1,
        title="Ablation: constellation size vs coverage continuity "
              "(HK)")
    write_output("ablation_constellation_size", table)

    sizes = sorted(by_size)
    hours = [store.value(by_size[s], "presence_h_day", f"ABL-{s}@HK")
             for s in sizes]
    assert hours == sorted(hours)  # more satellites, more presence
    assert store.value(by_size[32], "max_contact_gap_min", "ABL-32@HK") \
        < store.value(by_size[4], "max_contact_gap_min", "ABL-4@HK")
