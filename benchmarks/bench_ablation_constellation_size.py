"""Ablation — constellation size vs service continuity.

Extends paper Figure 3a beyond today's fleets: how many satellites are
needed before a spot's theoretical coverage approaches 24 h and the
worst contact gap drops below a store-and-forward-friendly bound?
"""

from satiot.constellations.catalog import (ConstellationSpec,
                                           DtSRadioProfile,
                                           build_constellation)
from satiot.constellations.shells import ShellSpec
from satiot.core.availability import daily_presence_hours
from satiot.core.report import format_table
from satiot.core.sites import SITES
from satiot.core.stats import interval_gaps, merge_intervals
from satiot.orbits.passes import PassPredictor

from conftest import SEED, write_output

SIZES = (4, 8, 16, 32)


def run_size(count: int):
    spec = ConstellationSpec(
        name=f"ABL-{count}", operator_region="ablation",
        shells=(ShellSpec(f"A{count}", count=count,
                          altitude_min_km=590.0, altitude_max_km=610.0,
                          inclination_deg=97.5),),
        radio=DtSRadioProfile(frequency_hz=400.45e6),
        norad_base=80000 + count)
    constellation = build_constellation(spec.name, seed=SEED, spec=spec)
    epoch = constellation.satellites[0].tle.epoch
    location = SITES["HK"].location
    hours = daily_presence_hours(constellation, location, epoch)
    spans = []
    for satellite in constellation:
        predictor = PassPredictor(satellite.propagator, location)
        for window in predictor.find_passes(epoch, 86400.0):
            spans.append((window.rise_s, window.set_s))
    gaps = interval_gaps(merge_intervals(spans), 0.0, 86400.0)
    max_gap_min = max(gaps) / 60.0 if gaps else 0.0
    return hours, max_gap_min


def compute():
    return {size: run_size(size) for size in SIZES}


def test_ablation_constellation_size(benchmark):
    sweep = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[size, hours, gap] for size, (hours, gap) in sweep.items()]
    table = format_table(
        ["#SATs @600 km SSO", "presence (h/day)", "max gap (min)"],
        rows, precision=1,
        title="Ablation: constellation size vs coverage continuity "
              "(HK)")
    write_output("ablation_constellation_size", table)

    hours = [sweep[s][0] for s in SIZES]
    assert hours == sorted(hours)  # more satellites, more presence
    assert sweep[32][1] < sweep[4][1]  # and shorter worst gaps
