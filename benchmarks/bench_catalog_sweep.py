"""Catalog-scale fleet sweep: 5 000 satellites through the full stack.

Exercises the PR 6 tentpole end to end against the committed fixture
(``tests/fixtures/megaconst_5k.3le.gz`` — the five-shell ``MEGA``
constellation):

* **ingest** — strict 3LE parse (checksums verified) of all 5 000
  element sets into an in-memory :class:`~satiot.catalog.db.TleDb`
  with name-derived shell groups;
* **select** — materializing the whole catalog into a
  :class:`~satiot.catalog.bridge.FleetSelection` (rows → verbatim-line
  parses → 5 000 ``SGP4`` propagators + the joint fleet fingerprint);
* **sweep** — one :func:`~satiot.catalog.bridge.fleet_passes` call,
  5 000 satellites x a multi-site observer set, flowing through
  ``SGP4Batch`` / ``find_passes_fleet``; per-shell pass statistics are
  reduced from the result.

Asserted contract, checked in the timed run: a sampled subset of
satellites (spread across all five shells) produces windows **equal
field-for-field** to per-satellite ``PassPredictor.find_passes`` — the
catalog path inherits the batch layer's bit-identity guarantee.

Metrics land in ``benchmarks/output/catalog_sweep.json`` (CI artifact)
next to the human-readable table.  ``--smoke`` shortens the horizon
and observer set but still sweeps all 5 000 satellites.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from satiot.catalog import (TleDb, fleet_passes, select_fleet,
                            shell_groups)
from satiot.orbits.frames import GeodeticPoint
from satiot.orbits.passes import PassPredictor

from conftest import write_json, write_output

FIXTURE = (Path(__file__).parent.parent
           / "tests" / "fixtures" / "megaconst_5k.3le.gz")

MIN_ELEVATION_DEG = 10.0

#: Observer sets: a paper-style site triplet for smoke, plus extra
#: coverage sites for the full run.
SMOKE_SITES = [GeodeticPoint(22.3, 114.2, 0.0),    # Hong Kong
               GeodeticPoint(51.5, -0.1, 0.0),     # London
               GeodeticPoint(-33.9, 151.2, 0.0)]   # Sydney
FULL_SITES = SMOKE_SITES + [GeodeticPoint(64.1, -21.9, 0.0),   # Reykjavik
                            GeodeticPoint(1.35, 103.8, 0.0)]   # Singapore


def _verify_sampled_identity(selection, observers, duration_s: float,
                             coarse_step_s: float,
                             results, sample_per_shell: int = 1) -> int:
    """Sampled windows must equal the per-satellite scalar path."""
    verified = 0
    for group, indices in shell_groups(selection).items():
        stride = max(1, len(indices) // sample_per_shell)
        for index in indices[::stride][:sample_per_shell]:
            prop = selection.propagators[index]
            for m, obs in enumerate(observers):
                reference = PassPredictor(
                    prop, obs,
                    min_elevation_deg=MIN_ELEVATION_DEG).find_passes(
                        selection.epoch, duration_s,
                        coarse_step_s=coarse_step_s, refine="interp")
                assert list(results[index][m]) == reference, (
                    f"windows diverged from per-satellite path at "
                    f"{group} member {index}, observer {m}")
                verified += 1
    return verified


def _shell_stats(selection, observers, results) -> List[dict]:
    rows = []
    for group, indices in shell_groups(selection).items():
        windows = [w for i in indices for m in range(len(observers))
                   for w in results[i][m]]
        count = len(windows)
        rows.append({
            "shell": group,
            "satellites": len(indices),
            "windows": count,
            "mean_duration_s": round(
                sum(w.duration_s for w in windows) / count, 3)
            if count else 0.0,
            "mean_max_elevation_deg": round(
                sum(w.max_elevation_deg for w in windows) / count, 3)
            if count else 0.0,
        })
    return rows


def run_benchmark(smoke: bool) -> dict:
    duration_s = (2.0 if smoke else 24.0) * 3600.0
    coarse_step_s = 60.0
    observers = SMOKE_SITES if smoke else FULL_SITES

    t0 = time.perf_counter()
    db = TleDb(":memory:")
    stats = db.insert_file(FIXTURE, group_from_name=True)
    ingest_s = time.perf_counter() - t0
    assert stats.inserted == 5000, f"fixture ingest: {stats}"

    t0 = time.perf_counter()
    selection = select_fleet(db)
    n_props = len(selection.propagators)   # forces the lazy build
    fingerprint = selection.fingerprint
    select_s = time.perf_counter() - t0
    assert n_props == 5000

    t0 = time.perf_counter()
    results = fleet_passes(selection, observers, duration_s,
                           cache=False, coarse_step_s=coarse_step_s,
                           min_elevation_deg=MIN_ELEVATION_DEG)
    sweep_s = time.perf_counter() - t0

    verified = _verify_sampled_identity(selection, observers,
                                        duration_s, coarse_step_s,
                                        results)
    shells = _shell_stats(selection, observers, results)
    total_windows = sum(row["windows"] for row in shells)

    payload = {
        "benchmark": "catalog_sweep",
        "smoke": smoke,
        "fixture": FIXTURE.name,
        "fingerprint": fingerprint,
        "n_sats": n_props,
        "n_obs": len(observers),
        "duration_s": duration_s,
        "coarse_step_s": coarse_step_s,
        "min_elevation_deg": MIN_ELEVATION_DEG,
        "ingest_s": round(ingest_s, 6),
        "select_s": round(select_s, 6),
        "sweep_s": round(sweep_s, 6),
        "sats_per_s": round(n_props / sweep_s, 1),
        "windows": total_windows,
        "identity_checks": verified,
        "shells": shells,
    }
    write_json("catalog_sweep", payload)

    lines = [f"Catalog sweep — 5 000-satellite MEGA fixture "
             f"({'smoke' if smoke else 'full'}, "
             f"{duration_s / 3600.0:.0f} h @ {coarse_step_s:.0f} s, "
             f"{len(observers)} sites)",
             f"  ingest {ingest_s:6.2f} s   select {select_s:6.2f} s   "
             f"sweep {sweep_s:6.2f} s ({payload['sats_per_s']:.0f} "
             f"sats/s)   {total_windows} windows"]
    for row in shells:
        lines.append(
            f"  {row['shell']:14s} {row['satellites']:5d} sats  "
            f"{row['windows']:6d} windows  "
            f"mean {row['mean_duration_s']:6.1f} s @ "
            f"{row['mean_max_elevation_deg']:5.1f} deg max el")
    lines.append(f"  bit-identity: {verified} sampled "
                 f"(satellite, observer) pass lists equal the "
                 f"per-satellite scalar path")
    write_output("catalog_sweep", "\n".join(lines))
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="catalog-scale 5k-satellite fleet sweep benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (2 h horizon, 3 sites; "
                             "still all 5 000 satellites)")
    args = parser.parse_args(argv)
    run_benchmark(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
