"""Optimization study — constellation-aware MAC policies.

The paper's Section 3.1 takeaway: "The intermittent characteristics of
satellite connections necessitate collision management and congestion
control strategies for satellite IoTs."  This bench compares the
measured ALOHA behaviour against the policies of
:mod:`satiot.network.policies` on a denser (six-node) deployment.
"""

import numpy as np

from satiot.network.mac import MacConfig
from satiot.network.policies import (BackpressurePolicy,
                                     ElevationGatePolicy, SlottedPolicy)
from satiot.core.report import format_table
from satiot.network.server import (latency_decomposition_minutes,
                                   reliability_report)

from conftest import run_active, write_output

POLICIES = {
    "ALOHA (measured)": None,
    "slotted (6 slots)": SlottedPolicy(
        slot_count=6,
        slot_map={f"TQ-node-{i + 1}": i for i in range(6)}),
    "elevation gate": ElevationGatePolicy(min_p_uplink=0.93),
    "backpressure p=1/6": BackpressurePolicy(expected_contenders=6),
}


def run_policy(shared_segment, policy):
    mac_config = MacConfig(transmit_policy=policy)
    result = run_active(shared_segment, node_count=6,
                        mac_config=mac_config)
    records = result.all_satellite_records()
    report = reliability_report(records)
    lat = latency_decomposition_minutes(records)
    attempts = [a for r in records for a in r.attempts]
    collided = (np.mean([a.collided for a in attempts])
                if attempts else 0.0)
    concurrency = (np.mean([a.n_concurrent for a in attempts])
                   if attempts else 0.0)
    return (report.reliability, lat["total_min"], float(collided),
            float(concurrency))


def compute(shared_segment):
    return {name: run_policy(shared_segment, policy)
            for name, policy in POLICIES.items()}


def test_optimization_mac_policies(benchmark, shared_ground_segment):
    sweep = benchmark.pedantic(compute, args=(shared_ground_segment,),
                               rounds=1, iterations=1)
    rows = [[name, rel, lat, coll, conc]
            for name, (rel, lat, coll, conc) in sweep.items()]
    table = format_table(
        ["Policy", "reliability", "latency (min)", "collision frac",
         "mean concurrency"],
        rows, precision=3,
        title="Optimization: MAC policies under a 6-node deployment")
    write_output("optimization_mac_policies", table)

    aloha = sweep["ALOHA (measured)"]
    slotted = sweep["slotted (6 slots)"]
    # Slotting removes same-beacon collisions entirely.
    assert slotted[2] == 0.0
    assert slotted[3] <= 1.0 + 1e-9
    # All policies keep reliability in the usable band.
    for rel, _lat, _coll, _conc in sweep.values():
        assert rel > 0.8
    # ALOHA has the most concurrent transmissions.
    assert aloha[3] >= max(v[3] for v in sweep.values()) - 1e-9
