"""Figures 6a-6c — Tianqi node power, hang-on time and battery drain
across operating modes, versus the terrestrial node.

Paper: 2.2x Tx power; extended Rx hang-on while waiting for passes;
Rx dominates the satellite node's battery drain.
"""

from satiot.core.energy_analysis import compare_energy, mode_table
from satiot.core.report import format_table
from satiot.energy.profiles import (TERRESTRIAL_NODE_PROFILE,
                                    TIANQI_NODE_PROFILE)

from conftest import write_output


def compute(result):
    tianqi = next(iter(result.tianqi_energy.values()))
    terrestrial = next(iter(result.terrestrial_energy.values()))
    return (mode_table(tianqi), mode_table(terrestrial),
            compare_energy(tianqi, terrestrial))


def test_fig6_energy_modes(benchmark, active_default):
    tianqi_modes, terrestrial_modes, comparison = benchmark(
        compute, active_default)
    rows = []
    for mode in ("sleep", "standby", "rx", "tx"):
        tq = tianqi_modes[mode]
        te = terrestrial_modes[mode]
        rows.append([
            mode,
            TIANQI_NODE_PROFILE.as_dict()[mode], tq["time_h"],
            tq["energy_share"],
            TERRESTRIAL_NODE_PROFILE.as_dict()[mode], te["time_h"],
            te["energy_share"],
        ])
    table = format_table(
        ["Mode", "TQ power (mW)", "TQ time (h)", "TQ energy share",
         "Terr power (mW)", "Terr time (h)", "Terr energy share"],
        rows, precision=2,
        title="Figures 6a-6c: per-mode power / hang-on time / drain")
    table += (f"\nTx power ratio: {comparison.tx_power_ratio:.1f}x "
              f"(paper 2.2x); Rx time ratio: "
              f"{comparison.rx_time_ratio:.0f}x; drain ratio: "
              f"{comparison.drain_ratio:.1f}x (paper 14.9x)")
    write_output("fig6_energy_modes", table)

    assert comparison.tx_power_ratio > 2.0
    assert comparison.rx_energy_share_tianqi > 0.5
    assert tianqi_modes["rx"]["time_h"] > terrestrial_modes["rx"]["time_h"]
