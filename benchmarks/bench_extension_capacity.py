"""Extension — regional uplink capacity from measured contact time.

Closes the loop on the paper's framing question ("can a space-based
infrastructure deliver network performance that fulfills IoT
requirements?"): the *effective* contact hours the campaign measures,
divided by packet airtime and MAC efficiency, bound how many
paper-profile sensors (48 × 20 B/day) each constellation can actually
serve per region.
"""

from satiot.core.capacity import estimate_regional_capacity
from satiot.core.contacts import analyze_contacts
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    out = {}
    for name, constellation in result.constellations.items():
        stats = analyze_contacts(result.receptions("HK", name),
                                 result.duration_s)
        eff_s = stats.effective_daily_hours * 3600.0
        aloha = estimate_regional_capacity(eff_s)
        slotted = estimate_regional_capacity(eff_s,
                                             aloha_efficiency=0.9)
        out[constellation.name] = (stats.effective_daily_hours, aloha,
                                   slotted)
    return out


def test_extension_capacity(benchmark, passive_continent):
    estimates = benchmark(compute, passive_continent)
    rows = []
    for name, (eff_h, aloha, slotted) in sorted(estimates.items()):
        rows.append([
            name, eff_h, aloha.packets_per_day,
            aloha.supported_devices, slotted.supported_devices,
        ])
    table = format_table(
        ["Constellation", "eff contact (h/day)", "ALOHA pkts/day",
         "devices @ALOHA", "devices @coordinated"],
        rows, precision=1,
        title="Extension: regional capacity for 48x20B/day sensors "
              "(HK, from measured effective contact)")
    write_output("extension_capacity", table)

    tianqi = estimates["Tianqi"]
    # Tianqi's effective hours support at most hundreds of ALOHA
    # sensors per region — the capacity pressure of Section 3.1.
    assert tianqi[1].supported_devices < 1000.0
    # A coordinated MAC multiplies capacity by the efficiency ratio.
    assert tianqi[2].supported_devices \
        > 4 * tianqi[1].supported_devices
    # Bigger fleets carry more.
    assert estimates["Tianqi"][1].packets_per_day \
        > estimates["FOSSA"][1].packets_per_day
