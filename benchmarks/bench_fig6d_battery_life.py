"""Figure 6d — battery lifetime of terrestrial vs satellite nodes.

Paper: the same battery powers a Tianqi node for 48 days and a
terrestrial node for 718 days (~15x).
"""

from satiot.core.energy_analysis import compare_energy
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    tianqi = next(iter(result.tianqi_energy.values()))
    terrestrial = next(iter(result.terrestrial_energy.values()))
    return compare_energy(tianqi, terrestrial)


def test_fig6d_battery_lifetime(benchmark, active_default):
    comparison = benchmark(compute, active_default)
    rows = [
        ["Tianqi satellite node", comparison.tianqi_avg_power_mw,
         comparison.tianqi_battery_days, 48.0],
        ["Terrestrial node", comparison.terrestrial_avg_power_mw,
         comparison.terrestrial_battery_days, 718.0],
        ["drain ratio (x)", comparison.drain_ratio, None, 14.9],
    ]
    table = format_table(
        ["Node", "avg power (mW)", "measured lifetime (days)",
         "paper (days / x)"],
        rows, precision=1,
        title="Figure 6d: battery lifetime comparison")
    write_output("fig6d_battery_life", table)

    assert 25.0 < comparison.tianqi_battery_days < 90.0
    assert 500.0 < comparison.terrestrial_battery_days < 900.0
    assert 8.0 < comparison.drain_ratio < 25.0
