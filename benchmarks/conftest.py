"""Shared campaign fixtures for the benchmark suite.

Campaign simulation is the expensive part, so each distinct campaign is
run once per benchmark session and shared; the benchmarked (timed)
callables are the analyses that regenerate each paper table/figure.

All campaign inputs are built through the scenario compiler
(:mod:`satiot.scenarios`): fixtures lower inline scenario documents,
and the converted benchmarks run committed spec files from
``benchmarks/scenarios/`` through :func:`run_bench_scenario` — one
shared harness instead of per-script setup code.

Every benchmark writes its reproduced table to ``benchmarks/output/`` so
the regenerated numbers are inspectable after a captured pytest run.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import pytest

from satiot.core.active import ActiveCampaign
from satiot.core.campaign import PassiveCampaign
from satiot.constellations.catalog import build_constellation
from satiot.network.store_forward import (TIANQI_GROUND_STATIONS,
                                          GroundSegment)
from satiot.runtime.ephemeris_cache import EphemerisCache
from satiot.scenarios import (SCENARIO_FORMAT, ScenarioRun,
                              compile_cells, load_scenario,
                              parse_scenario, run_scenario)

SEED = 42
PASSIVE_DAYS = 2.0
ACTIVE_DAYS = 4.0

OUTPUT_DIR = Path(__file__).parent / "output"

#: Committed scenario specs driven by :func:`run_bench_scenario`.
SCENARIO_DIR = Path(__file__).parent / "scenarios"

#: Disk-backed ephemeris cache shared by every benchmark invocation (and
#: restored between CI runs via actions/cache) — warm runs skip all SGP4
#: propagation and pass refinement.  Override the location with
#: SATIOT_EPHEMERIS_CACHE_DIR; disable with SATIOT_EPHEMERIS_CACHE=0.
CACHE_DIR = Path(os.environ.get("SATIOT_EPHEMERIS_CACHE_DIR")
                 or Path(__file__).parent / ".ephemeris-cache")

_bench_cache = None


def bench_ephemeris_cache() -> EphemerisCache:
    """The session-wide disk-backed ephemeris cache."""
    global _bench_cache
    if _bench_cache is None:
        _bench_cache = EphemerisCache(disk_dir=CACHE_DIR)
    return _bench_cache


def compile_single(document: dict):
    """Lower an inline single-cell scenario document to its cell."""
    cells = compile_cells(parse_scenario(document))
    if len(cells) != 1:
        raise ValueError(f"expected a single cell, got {len(cells)}")
    return cells[0]


_scenario_runs: dict = {}


def run_bench_scenario(name: str) -> ScenarioRun:
    """Run a committed ``benchmarks/scenarios/<name>.json`` spec.

    The run is memoized for the benchmark session (matching the old
    session-scoped campaign fixtures) and executes on the shared
    ephemeris cache, with workers taken from ``SATIOT_WORKERS``.
    """
    if name not in _scenario_runs:
        spec = load_scenario(SCENARIO_DIR / f"{name}.json")
        _scenario_runs[name] = run_scenario(
            spec, ephemeris_cache=bench_ephemeris_cache())
    return _scenario_runs[name]


def run_passive(config):
    """Run a passive campaign on the shared cache, workers from env."""
    return PassiveCampaign(
        config, ephemeris_cache=bench_ephemeris_cache()).run()


def write_output(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/output."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


def write_json(name: str, payload) -> None:
    """Persist machine-readable benchmark metrics (CI uploads these)."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _passive_document(name: str, sites, days: float) -> dict:
    return {
        "format": SCENARIO_FORMAT, "name": name, "kind": "passive",
        "seed": SEED,
        "constellation": {"names": ["tianqi", "fossa", "pico", "cstp"]},
        "sites": list(sites),
        "duration": {"days": days},
    }


@pytest.fixture(scope="session")
def passive_continent():
    """Passive campaign over the four continent sites (Sec. 3.1)."""
    cell = compile_single(_passive_document(
        "passive-continent", ("HK", "SYD", "LDN", "PGH"), PASSIVE_DAYS))
    return run_passive(cell.config)


@pytest.fixture(scope="session")
def passive_all_sites():
    """Short passive campaign over all eight sites (Table 1)."""
    cell = compile_single(_passive_document(
        "passive-all-sites",
        sorted({"HK", "SYD", "LDN", "PGH", "SH", "GZ", "NC", "YC"}),
        1.0))
    return run_passive(cell.config)


@pytest.fixture(scope="session")
def shared_ground_segment():
    """One operator ground segment reused by every active-campaign run."""
    constellation = build_constellation("tianqi", seed=SEED)
    epoch = constellation.satellites[0].tle.epoch
    return GroundSegment(constellation, epoch, ACTIVE_DAYS * 86400.0,
                         TIANQI_GROUND_STATIONS)


def run_active(shared_segment, **overrides):
    """Run an active campaign variant, lowered through the compiler.

    Scalar overrides are expressed as scenario-document sections and go
    through spec validation; richer objects with no JSON spelling (a
    full ``MacConfig``) are applied onto the compiled config directly.
    """
    document: dict = {
        "format": SCENARIO_FORMAT, "name": "active-bench",
        "kind": "active", "seed": SEED,
        "duration": {"days": ACTIVE_DAYS},
    }
    traffic = {key: overrides.pop(key)
               for key in ("node_count", "payload_bytes",
                           "reading_interval_s")
               if key in overrides}
    if traffic:
        document["traffic"] = traffic
    if "max_retransmissions" in overrides:
        document["mac"] = {
            "max_retransmissions": overrides.pop("max_retransmissions")}
    if "antenna_name" in overrides:
        document["antenna"] = overrides.pop("antenna_name")
    config = compile_single(document).config
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return ActiveCampaign(config, ground_segment=shared_segment).run()


@pytest.fixture(scope="session")
def active_default(shared_ground_segment):
    """The paper's deployment: 20 B / 30 min, 5 retransmissions."""
    return run_active(shared_ground_segment)


@pytest.fixture(scope="session")
def active_no_retx(shared_ground_segment):
    """Retransmissions disabled (paper Fig. 5a left bars)."""
    return run_active(shared_ground_segment, max_retransmissions=0)


@pytest.fixture(scope="session")
def active_quarter_wave(shared_ground_segment):
    """1/4-wavelength antenna variant (paper Fig. 5b)."""
    return run_active(shared_ground_segment,
                      antenna_name="quarter_wave")


@pytest.fixture(scope="session")
def active_payload_sweep(shared_ground_segment):
    """Payload sizes 10/60/120 bytes (paper Fig. 12a).

    Retransmissions are disabled so the sweep isolates the DtS link's
    payload sensitivity (with the full retry budget the protocol masks
    most of the single-attempt difference).
    """
    return {
        payload: run_active(shared_ground_segment, payload_bytes=payload,
                            max_retransmissions=0)
        for payload in (10, 60, 120)
    }
