"""Extension — LoRa vs NB-IoT as the DtS physical layer.

The paper's introduction names both technologies as DtS-capable; the
measured constellations all chose LoRa.  This bench compares the two at
the same DtS link budgets: who closes the link, at what airtime, and at
what transmit energy per 20-byte reading.
"""

from satiot.core.report import format_table
from satiot.phy.adaptation import sf_trade_table
from satiot.phy.link_budget import free_space_path_loss_db
from satiot.phy.lora import SNR_LIMIT_DB, noise_floor_dbm
from satiot.phy.nbiot import NbIotUplink

from conftest import write_output

#: Representative DtS coupling-loss stack at three pass geometries.
SCENARIOS = {
    "overhead (900 km)": free_space_path_loss_db(900.0, 400.45e6) + 6.0,
    "mid-pass (1,400 km)": free_space_path_loss_db(1400.0, 400.45e6)
    + 10.0,
    "low pass (2,800 km)": free_space_path_loss_db(2800.0, 400.45e6)
    + 16.0,
}

LORA_EIRP_DBM = 22.0
NBIOT_EIRP_DBM = 23.0


def lora_operating_point(coupling_loss_db: float):
    """Cheapest SF that closes the budget, or None."""
    table = sf_trade_table(payload_bytes=20, tx_power_mw=3586.0)
    rx_dbm = LORA_EIRP_DBM - coupling_loss_db
    snr = rx_dbm - noise_floor_dbm(125_000.0)
    for sf in sorted(table):
        if snr >= SNR_LIMIT_DB[sf] + 1.0:
            return table[sf]
    return None


def compute():
    rows = []
    for name, loss in SCENARIOS.items():
        lora = lora_operating_point(loss)
        nbiot = NbIotUplink.for_coupling_loss(loss,
                                              eirp_dbm=NBIOT_EIRP_DBM)
        rows.append([
            name, loss,
            f"SF{lora.spreading_factor}" if lora else "no",
            lora.airtime_s * 1000.0 if lora else None,
            lora.tx_energy_j if lora else None,
            f"R={nbiot.repetitions}" if nbiot else "no",
            nbiot.airtime_s(20) * 1000.0 if nbiot else None,
            nbiot.tx_energy_j(20) if nbiot else None,
        ])
    return rows


def test_extension_nbiot(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        ["Geometry", "coupling loss (dB)", "LoRa mode",
         "LoRa airtime (ms)", "LoRa energy (J)", "NB-IoT mode",
         "NB-IoT airtime (ms)", "NB-IoT energy (J)"],
        rows, precision=1,
        title="Extension: LoRa vs NB-IoT at DtS link budgets "
              "(20-byte reading)")
    write_output("extension_nbiot", table)

    by_name = {row[0]: row for row in rows}
    overhead = by_name["overhead (900 km)"]
    low = by_name["low pass (2,800 km)"]
    # Both PHYs close the easy geometry; NB-IoT does it faster.
    assert overhead[2] != "no" and overhead[5] != "no"
    assert overhead[6] < overhead[3]
    # The hard geometry pushes both into their slow protection modes
    # (high SF / high repetition) or out of budget entirely.
    if low[2] != "no":
        assert low[3] > overhead[3]
    if low[5] != "no":
        assert low[6] > overhead[6]
