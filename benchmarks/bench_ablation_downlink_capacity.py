"""Ablation — satellite downlink capacity vs fleet load.

The paper warns that "bursty concurrent communications from numerous
devices ... imposes pressure on the processing capacity and capabilities
of the satellite".  This ablation loads a satellite buffer with
fleet-scale backlogs and measures how many ground-station contacts are
needed to drain them at different downlink rates.

Driven by the committed spec
``scenarios/ablation_downlink_capacity.json`` (kind ``downlink``,
sweeping ``downlink.rate_bytes_s`` × ``downlink.fleet_size``).
"""

from satiot.core.report import format_table

from conftest import run_bench_scenario, write_output

RATE_AXIS = "downlink.rate_bytes_s"
FLEET_AXIS = "downlink.fleet_size"


def compute():
    return run_bench_scenario("ablation_downlink_capacity")


def test_ablation_downlink_capacity(benchmark):
    run = benchmark.pedantic(compute, rounds=1, iterations=1)
    store = run.store
    cells = {(run.cell_params(cell)[RATE_AXIS],
              run.cell_params(cell)[FLEET_AXIS]): cell
             for cell in store.cells()}
    rows = [[rate / 1000.0, fleet,
             int(store.value(cell, "contacts_to_drain")),
             int(store.value(cell, "drained_one_contact"))]
            for (rate, fleet), cell in cells.items()]
    table = format_table(
        ["Downlink (kB/s)", "fleet size", "contacts to drain",
         "drained in one contact"],
        rows, precision=0,
        title="Ablation: downlink capacity vs fleet backlog "
              "(420 s contact, 2 pkts/node)")
    write_output("ablation_downlink_capacity", table)

    rates = sorted({rate for rate, _fleet in cells})
    fleets = sorted({fleet for _rate, fleet in cells})
    # A faster link needs no more contacts for the same backlog.
    for fleet in fleets:
        sessions = [store.value(cells[(rate, fleet)],
                                "contacts_to_drain")
                    for rate in rates]
        assert sessions == sorted(sessions, reverse=True)
    # Congestion regime exists: the biggest fleet at the slowest rate
    # needs multiple contacts.
    assert store.value(cells[(rates[0], fleets[-1])],
                       "contacts_to_drain") > 1
