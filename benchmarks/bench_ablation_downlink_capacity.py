"""Ablation — satellite downlink capacity vs fleet load.

The paper warns that "bursty concurrent communications from numerous
devices ... imposes pressure on the processing capacity and capabilities
of the satellite".  This ablation loads a satellite buffer with
fleet-scale backlogs and measures how many ground-station contacts are
needed to drain them at different downlink rates.
"""

from satiot.core.report import format_table
from satiot.network.downlink import DownlinkConfig, DownlinkSimulator
from satiot.network.store_forward import BufferedPacket, SatelliteBuffer

from conftest import write_output

FLEET_SIZES = (100, 1_000, 10_000, 50_000)
RATES_BYTES_S = (1_000.0, 4_000.0, 16_000.0)
WINDOW_S = 420.0          # a typical high-elevation GS contact
PACKETS_PER_NODE = 2      # backlog accumulated between contacts


def compute():
    out = {}
    for rate in RATES_BYTES_S:
        sim = DownlinkSimulator(DownlinkConfig(throughput_bytes_s=rate))
        for fleet in FLEET_SIZES:
            backlog = fleet * PACKETS_PER_NODE
            sessions = sim.sessions_to_empty(backlog, 20, WINDOW_S)
            buffer = SatelliteBuffer(44100, capacity_packets=10**7)
            for seq in range(min(backlog, 120_000)):
                buffer.store(BufferedPacket("fleet", seq, 0.0, 20))
            drained = sim.run_session(buffer, (0.0, WINDOW_S))
            out[(rate, fleet)] = (sessions, drained.drained_count)
    return out


def test_ablation_downlink_capacity(benchmark):
    sweep = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[rate / 1000.0, fleet, sessions, drained]
            for (rate, fleet), (sessions, drained) in sweep.items()]
    table = format_table(
        ["Downlink (kB/s)", "fleet size", "contacts to drain",
         "drained in one contact"],
        rows, precision=0,
        title="Ablation: downlink capacity vs fleet backlog "
              "(420 s contact, 2 pkts/node)")
    write_output("ablation_downlink_capacity", table)

    # A faster link needs no more contacts for the same backlog.
    for fleet in FLEET_SIZES:
        sessions = [sweep[(rate, fleet)][0] for rate in RATES_BYTES_S]
        assert sessions == sorted(sessions, reverse=True)
    # Congestion regime exists: the biggest fleet at the slowest rate
    # needs multiple contacts.
    assert sweep[(RATES_BYTES_S[0], FLEET_SIZES[-1])][0] > 1
