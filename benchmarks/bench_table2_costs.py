"""Table 2 — system expenditure comparison."""

import pytest

from satiot.core.report import format_table
from satiot.econ.comparison import expenditure_table, tco_crossover_months

from conftest import write_output


def test_table2_expenditures(benchmark):
    rows_obj = benchmark(expenditure_table, 48.0, 20)
    rows = [[r.network, r.device_cost_usd, r.infrastructure_cost_usd or "-",
             r.operational_usd_per_month] for r in rows_obj]
    flips, month = tco_crossover_months()
    table = format_table(
        ["Network", "Device cost ($/unit)", "Infrastructure ($)",
         "Operational ($/month)"],
        rows, title="Table 2: system expenditure comparison")
    table += (f"\nTCO crossover (1 node): terrestrial becomes cheaper "
              f"after {month:.0f} months" if flips else
              "\nno TCO crossover within horizon")
    write_output("table2_costs", table)

    by_net = {r.network: r for r in rows_obj}
    assert by_net["Satellite IoT"].operational_usd_per_month \
        == pytest.approx(23.76)
    assert by_net["Terrestrial IoT"].operational_usd_per_month \
        == pytest.approx(4.9)
