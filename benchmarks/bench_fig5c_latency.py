"""Figure 5c — end-to-end latency: terrestrial vs satellite.

Paper: Tianqi averages 135.2 minutes, 643.6x the terrestrial system's
0.2 minutes.
"""

from satiot.core.performance import compare_systems
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    return compare_systems(result.all_satellite_records(),
                           result.all_terrestrial_records())


def test_fig5c_latency(benchmark, active_default):
    comparison = benchmark(compute, active_default)
    rows = [
        ["Terrestrial LoRaWAN", comparison.terrestrial_latency_min, 0.2],
        ["Tianqi satellite IoT", comparison.satellite_latency_min, 135.2],
        ["ratio (x)", comparison.latency_ratio, 643.6],
    ]
    table = format_table(
        ["System", "measured latency (min)", "paper (min)"],
        rows, precision=1,
        title="Figure 5c: end-to-end latency")
    write_output("fig5c_latency", table)

    assert comparison.terrestrial_latency_min < 1.0
    assert comparison.satellite_latency_min > 30.0
    assert comparison.latency_ratio > 100.0
