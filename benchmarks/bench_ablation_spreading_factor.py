"""Ablation — the fleet's spreading-factor choice.

The measured constellations fix SF10/SF11 fleet-wide; this ablation
exposes what that choice buys and costs: each SF step doubles airtime
(collision exposure and Tx energy) for ~2.5 dB of sensitivity.  The
link-closure column evaluates the calibrated Tianqi downlink margin at
a representative mid-pass geometry.
"""

from satiot.core.report import format_table
from satiot.phy.adaptation import sf_trade_table
from satiot.phy.link_budget import LinkBudget
from satiot.phy.lora import SNR_LIMIT_DB, noise_floor_dbm

from conftest import write_output

# Representative mid-pass geometry of the Tianqi main shell.
RANGE_KM = 1400.0
ELEVATION_DEG = 35.0


def compute():
    table = sf_trade_table(payload_bytes=20)
    budget = LinkBudget(eirp_dbm=10.5, frequency_hz=400.45e6)
    rssi = budget.mean_rssi_dbm(RANGE_KM, ELEVATION_DEG, rx_gain_dbi=2.0)
    snr = rssi - noise_floor_dbm(125_000.0)
    return table, snr


def test_ablation_spreading_factor(benchmark):
    table, snr = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for sf, point in sorted(table.items()):
        margin = snr - SNR_LIMIT_DB[sf]
        rows.append([
            sf, point.snr_limit_db, point.airtime_s * 1000.0,
            point.tx_energy_j, point.collision_exposure,
            margin, "yes" if margin > 0 else "no",
        ])
    table_text = format_table(
        ["SF", "demod SNR (dB)", "airtime 20B (ms)", "Tx energy (J)",
         "collision exposure", "mid-pass margin (dB)", "link closes"],
        rows, precision=2,
        title="Ablation: spreading factor at the Tianqi mid-pass "
              f"geometry (SNR {snr:.1f} dB)")
    write_output("ablation_spreading_factor", table_text)

    closes = [sf for sf, p in table.items()
              if snr - SNR_LIMIT_DB[sf] > 0]
    # The calibrated link needs the high-SF regime — exactly why the
    # measured fleets run SF10/SF11 and pay seconds of airtime.
    assert min(closes) >= 9
    energies = [table[sf].tx_energy_j for sf in sorted(table)]
    assert energies == sorted(energies)
