"""Ablation — the fleet's spreading-factor choice.

The measured constellations fix SF10/SF11 fleet-wide; this ablation
exposes what that choice buys and costs: each SF step doubles airtime
(collision exposure and Tx energy) for ~2.5 dB of sensitivity.  The
link-closure column evaluates the calibrated Tianqi downlink margin at
a representative mid-pass geometry.

Driven by the committed spec
``scenarios/ablation_spreading_factor.json`` (kind ``phy``).
"""

from satiot.core.report import format_table

from conftest import run_bench_scenario, write_output


def compute():
    return run_bench_scenario("ablation_spreading_factor")


def test_ablation_spreading_factor(benchmark):
    run = benchmark.pedantic(compute, rounds=1, iterations=1)
    store = run.store
    cell = store.cells()[0]
    snr = store.value(cell, "snr_db")
    sfs = sorted(int(subject[2:])
                 for subject in store.subject_values("margin_db", cell))
    rows = []
    for sf in sfs:
        subject = f"SF{sf}"
        margin = store.value(cell, "margin_db", subject)
        rows.append([
            sf, store.value(cell, "snr_limit_db", subject),
            store.value(cell, "airtime_s", subject) * 1000.0,
            store.value(cell, "tx_energy_j", subject),
            store.value(cell, "collision_exposure", subject),
            margin, "yes" if margin > 0 else "no",
        ])
    table_text = format_table(
        ["SF", "demod SNR (dB)", "airtime 20B (ms)", "Tx energy (J)",
         "collision exposure", "mid-pass margin (dB)", "link closes"],
        rows, precision=2,
        title="Ablation: spreading factor at the Tianqi mid-pass "
              f"geometry (SNR {snr:.1f} dB)")
    write_output("ablation_spreading_factor", table_text)

    closes = [sf for sf in sfs
              if store.value(cell, "margin_db", f"SF{sf}") > 0]
    # The calibrated link needs the high-SF regime — exactly why the
    # measured fleets run SF10/SF11 and pay seconds of airtime.
    assert min(closes) >= 9
    energies = [store.value(cell, "tx_energy_j", f"SF{sf}")
                for sf in sfs]
    assert energies == sorted(energies)
