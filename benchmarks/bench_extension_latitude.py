"""Extension — availability as a function of latitude.

The paper's sites span 22°S..52°N; this extension sweeps the full
latitude range, showing how each constellation's inclination mix shapes
who gets service: Tianqi's 50°-inclined main shell abandons the poles,
while the sun-synchronous fleets concentrate their coverage there.
"""

from satiot.constellations.catalog import build_all_constellations
from satiot.core.availability import daily_presence_hours
from satiot.core.report import format_table
from satiot.orbits.frames import GeodeticPoint

from conftest import SEED, write_output

LATITUDES = (0.0, 22.3, 45.0, 70.0, 85.0)


def compute():
    constellations = build_all_constellations(seed=SEED)
    out = {}
    for name, constellation in constellations.items():
        epoch = constellation.satellites[0].tle.epoch
        out[name] = [
            daily_presence_hours(constellation,
                                 GeodeticPoint(lat, 114.0), epoch)
            for lat in LATITUDES]
    return out


def test_extension_latitude(benchmark):
    presence = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for name, hours in sorted(presence.items()):
        rows.append([name] + hours)
    table = format_table(
        ["Constellation"] + [f"{lat:g}N (h/day)" for lat in LATITUDES],
        rows, precision=1,
        title="Extension: daily presence vs latitude")
    write_output("extension_latitude", table)

    # Tianqi (49.97 deg main shell) loses the high latitudes...
    assert presence["tianqi"][-1] < presence["tianqi"][1]
    # ...while sun-synchronous PICO peaks near the poles.
    assert presence["pico"][-1] > presence["pico"][0]
