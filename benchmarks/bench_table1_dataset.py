"""Table 1 — dataset overview: city, #GS, deployment, trace counts.

The paper collected 121,744 traces over up to seven months; we simulate
one day per site and scale by each site's deployment length, so the
*relative* per-site yields (which vary by two orders of magnitude due to
local RF environments) are the comparison target.
"""

from satiot.core.report import format_table
from satiot.core.sites import SITES

from conftest import write_output


def build_table1(result):
    rows = []
    for code, site_result in sorted(result.site_results.items()):
        site = SITES[code]
        per_day = site_result.trace_count / result.config.days
        projected = per_day * 30.0 * site.deployment_months
        rows.append([
            site.code, site.station_count,
            f"{site.start_year}/{site.start_month:02d}",
            site_result.trace_count,
            int(projected), site.paper_trace_count,
        ])
    return rows


def test_table1_dataset_overview(benchmark, passive_all_sites):
    rows = benchmark(build_table1, passive_all_sites)
    total_projected = sum(r[4] for r in rows)
    table = format_table(
        ["City", "#GS", "Start", "sim traces/day-run",
         "projected traces", "paper traces"],
        rows,
        title="Table 1: dataset overview (simulated vs paper)")
    table += (f"\nprojected total: {total_projected}   "
              f"paper total: 121744")
    write_output("table1_dataset", table)

    assert sum(r[1] for r in rows) == 27
    assert total_projected > 10_000
