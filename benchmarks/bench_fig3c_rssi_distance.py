"""Figure 3c — Tianqi signal strength versus communication distance."""

from satiot.core.availability import rssi_vs_distance
from satiot.core.report import format_table

from conftest import write_output

BIN_EDGES_KM = [500, 1000, 1500, 2000, 2500, 3000, 3500, 4000]


def compute(result):
    receptions = [r for code in result.site_results
                  for r in result.receptions(code, "tianqi")]
    return rssi_vs_distance(receptions, BIN_EDGES_KM)


def test_fig3c_rssi_vs_distance(benchmark, passive_continent):
    bins = benchmark(compute, passive_continent)
    rows = [[f"{center:.0f}", median, count]
            for center, median, count in bins]
    table = format_table(
        ["Distance bin centre (km)", "median RSSI (dBm)", "#traces"],
        rows, precision=1,
        title="Figure 3c: Tianqi RSSI vs slant range "
              "(paper: falls with distance, 1,100-3,500 km band)")
    write_output("fig3c_rssi_distance", table)

    assert len(bins) >= 3
    # Signal strength declines with distance (allowing survivor-bias
    # flattening in the last sparse bin).
    assert bins[0][1] > bins[-1][1]
