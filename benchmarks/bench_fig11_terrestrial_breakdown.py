"""Figure 11 — terrestrial node time and energy breakdown by mode.

Paper: 95 % of operational time in sleep/standby, yet >70 % of battery
consumption in the Tx/Rx communication modes.
"""

from satiot.core.energy_analysis import mode_table
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    terrestrial = next(iter(result.terrestrial_energy.values()))
    return mode_table(terrestrial)


def test_fig11_terrestrial_breakdown(benchmark, active_default):
    table_data = benchmark(compute, active_default)
    rows = [[mode, row["time_h"], row["time_share"], row["energy_mwh"],
             row["energy_share"]]
            for mode, row in table_data.items()]
    low_power_time = (table_data["sleep"]["time_share"]
                      + table_data["standby"]["time_share"])
    radio_energy = (table_data["tx"]["energy_share"]
                    + table_data["rx"]["energy_share"])
    table = format_table(
        ["Mode", "time (h)", "time share", "energy (mWh)",
         "energy share"],
        rows, precision=3,
        title="Figure 11: terrestrial node time/energy breakdown")
    table += (f"\nsleep+standby time share: {low_power_time:.1%} "
              f"(paper ~95%); Tx+Rx energy share: {radio_energy:.1%} "
              f"(paper >70%)")
    write_output("fig11_terrestrial_breakdown", table)

    assert low_power_time > 0.95
    # Radio modes take a disproportionate energy share versus time.
    radio_time = (table_data["tx"]["time_share"]
                  + table_data["rx"]["time_share"])
    assert radio_energy > 5 * radio_time
