"""Figure 8 — DtS communication distance CDF.

Paper: 80 % of links span 600-2,000 km for the ~500 km constellations;
Tianqi (higher orbits) receives from 1,100-3,500 km.
"""

import numpy as np

from satiot.core.contacts import trace_distances_km
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    out = {}
    for name in result.constellations:
        receptions = [r for code in result.site_results
                      for r in result.receptions(code, name)]
        out[name] = trace_distances_km(receptions)
    return out


def test_fig8_distances(benchmark, passive_continent):
    distances = benchmark(compute, passive_continent)
    rows = []
    for name, d in sorted(distances.items()):
        if len(d) == 0:
            continue
        rows.append([
            passive_continent.constellations[name].name, len(d),
            float(np.percentile(d, 10)), float(np.percentile(d, 50)),
            float(np.percentile(d, 90)),
        ])
    table = format_table(
        ["Constellation", "#traces", "p10 (km)", "p50 (km)", "p90 (km)"],
        rows, precision=0,
        title="Figure 8: DtS communication distances "
              "(paper: 600-2,000 km; Tianqi 1,100-3,500 km)")
    write_output("fig8_distances", table)

    tianqi = distances["tianqi"]
    low_alt = np.concatenate([d for n, d in distances.items()
                              if n != "tianqi" and len(d)])
    # Tianqi's higher orbits put its receptions farther away.
    assert np.median(tianqi) > np.median(low_alt)
    assert 700.0 < np.percentile(tianqi, 10)
    assert np.percentile(tianqi, 90) < 3600.0
