"""Batched SGP4 fleet pass search vs the per-satellite scalar loop.

Benchmarks the PR 4 tentpole at three fleet sizes x two observer-grid
sizes (10 / 39 / 200 satellites x 8 / 27 sites):

* **coarse phase** — producing the ECEF coarse grid every pass search
  starts from.  Scalar baseline: one ``SGP4.propagate`` plus one
  ``teme_to_ecef`` rotation per (satellite, observer) pair — exactly
  what per-site ``PassPredictor`` calls used to cost across a site
  sweep with no cross-site sharing.  Batched path: one
  ``SGP4Batch`` propagation of the ``(N, T, 3)`` stack plus one
  rotation with GMST derived once.
* **full pipeline** — complete window prediction with interp
  refinement: nested per-(satellite, observer) ``find_passes`` vs one
  ``find_passes_fleet``.

Asserted contracts (the ISSUE acceptance numbers), checked in the same
run that is timed:

* batched ``(r, v)`` rows are **bit-identical** (``np.array_equal``)
  to the scalar propagator's output for every satellite;
* fleet pass lists equal the nested scalar pass lists window for
  window, field for field;
* the coarse phase is >= 5x faster at 39 satellites x 27 sites.

Metrics land in ``benchmarks/output/orbit_batch.json`` (CI artifact)
next to the human-readable table.  ``--smoke`` shrinks the horizon and
drops the 200-satellite fleet for CI.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from satiot.constellations.catalog import build_all_constellations
from satiot.constellations.shells import ShellSpec, generate_shell_tles
from satiot.core.sites import SITES
from satiot.orbits.frames import GeodeticPoint, teme_to_ecef
from satiot.orbits.passes import PassPredictor, find_passes_fleet
from satiot.orbits.sgp4 import SGP4
from satiot.orbits.sgp4_batch import SGP4Batch

from conftest import SEED, write_json, write_output

COARSE_STEP_S = 30.0
MIN_ELEVATION_DEG = 10.0
#: acceptance floor: coarse-grid phase at 39 sats x 27 sites
SPEEDUP_FLOOR = 5.0
ANCHOR = (39, 27)


# ---------------------------------------------------------------------------
# Workload construction (deterministic)

def _study_fleet(seed: int) -> List[SGP4]:
    """The paper's 39-satellite Table-3 catalog."""
    constellations = build_all_constellations(seed=seed)
    return [sat.propagator for con in constellations.values()
            for sat in con]


def _shell_fleet(count: int, seed: int) -> List[SGP4]:
    """A synthetic Walker-style shell for beyond-catalog sizes."""
    tles = generate_shell_tles(
        ShellSpec(name="bench", count=count, altitude_min_km=500.0,
                  altitude_max_km=620.0, inclination_deg=97.5),
        epochyr=24, epochdays=250.5, norad_base=90000, seed=seed)
    return [SGP4(tle) for tle in tles]


def _fleet(n_sats: int, seed: int) -> List[SGP4]:
    study = _study_fleet(seed)
    if n_sats <= len(study):
        return study[:n_sats]
    return _shell_fleet(n_sats, seed)


def _observers(n_obs: int) -> List[GeodeticPoint]:
    if n_obs <= len(SITES):
        return [site.location for site in list(SITES.values())[:n_obs]]
    # 3 latitude bands x 9 longitudes = 27 coverage sites.
    observers = []
    for lat in (-45.0, 0.0, 45.0):
        for k in range(9):
            observers.append(GeodeticPoint(lat, -180.0 + 40.0 * k, 0.0))
    return observers[:n_obs]


# ---------------------------------------------------------------------------
# Timed phases

def _time_best(fn, repeats: int) -> Tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _coarse_scalar(props: Sequence[SGP4], observers, epoch,
                   offsets: np.ndarray):
    """Per-(satellite, observer) propagation + rotation baseline."""
    jd = epoch.offset_jd(offsets)
    out = []
    for prop in props:
        delta = float(epoch - prop.tle.epoch)
        per_obs = []
        for _ in observers:
            r, v = prop.propagate(delta + offsets)
            per_obs.append(teme_to_ecef(r, jd))
        out.append(per_obs)
    return out


def _coarse_batched(props: Sequence[SGP4], epoch, offsets: np.ndarray):
    """One stacked propagation, one rotation for the whole fleet."""
    batch = SGP4Batch.from_propagators(props)
    r, v = batch.propagate_offsets(epoch, offsets)
    jd = epoch.offset_jd(offsets)
    return r, v, teme_to_ecef(r, jd)


def _passes_scalar(props: Sequence[SGP4], observers, epoch,
                   duration_s: float):
    return [[PassPredictor(prop, obs,
                           min_elevation_deg=MIN_ELEVATION_DEG)
             .find_passes(epoch, duration_s,
                          coarse_step_s=COARSE_STEP_S, refine="interp")
             for obs in observers]
            for prop in props]


def _passes_fleet(props: Sequence[SGP4], observers, epoch,
                  duration_s: float):
    return find_passes_fleet(
        props, observers, epoch, duration_s,
        coarse_step_s=COARSE_STEP_S,
        min_elevation_deg=MIN_ELEVATION_DEG, refine="interp")


# ---------------------------------------------------------------------------
def _run_scenario(n_sats: int, n_obs: int, duration_s: float,
                  seed: int, repeats: int) -> dict:
    props = _fleet(n_sats, seed)
    observers = _observers(n_obs)
    epoch = props[0].tle.epoch
    offsets = PassPredictor.coarse_offsets(duration_s, COARSE_STEP_S)

    scalar_coarse_s, scalar_grids = _time_best(
        lambda: _coarse_scalar(props, observers, epoch, offsets),
        repeats)
    batch_coarse_s, (r_batch, v_batch, _) = _time_best(
        lambda: _coarse_batched(props, epoch, offsets), repeats)

    # Bit-identity of the stacked states against the scalar kernel.
    for i, prop in enumerate(props):
        tsince = float(epoch - prop.tle.epoch) + offsets
        r_ref, v_ref = prop.propagate(tsince)
        assert np.array_equal(r_batch[i], r_ref), \
            f"r diverged for satellite {prop.tle.norad_id}"
        assert np.array_equal(v_batch[i], v_ref), \
            f"v diverged for satellite {prop.tle.norad_id}"
    del scalar_grids

    scalar_full_s, scalar_passes = _time_best(
        lambda: _passes_scalar(props, observers, epoch, duration_s), 1)
    fleet_full_s, fleet_passes = _time_best(
        lambda: _passes_fleet(props, observers, epoch, duration_s), 1)

    # Identical pass lists, window for window.
    windows = 0
    for n in range(len(props)):
        for m in range(len(observers)):
            assert list(fleet_passes[n][m]) == scalar_passes[n][m], \
                f"pass list diverged at satellite {n}, observer {m}"
            windows += len(scalar_passes[n][m])

    return {
        "n_sats": n_sats,
        "n_obs": n_obs,
        "duration_s": duration_s,
        "grid_points": int(offsets.size),
        "windows": windows,
        "coarse_scalar_s": round(scalar_coarse_s, 6),
        "coarse_batched_s": round(batch_coarse_s, 6),
        "coarse_speedup": round(scalar_coarse_s / batch_coarse_s, 2),
        "full_scalar_s": round(scalar_full_s, 6),
        "full_fleet_s": round(fleet_full_s, 6),
        "full_speedup": round(scalar_full_s / fleet_full_s, 2),
    }


def run_benchmark(smoke: bool, seed: int = SEED) -> dict:
    duration_s = (6.0 if smoke else 24.0) * 3600.0
    repeats = 2 if smoke else 3
    scenarios = [(10, 8), (39, 8), (39, 27)]
    if not smoke:
        scenarios += [(200, 8), (200, 27)]

    rows = [_run_scenario(n_sats, n_obs, duration_s, seed, repeats)
            for n_sats, n_obs in scenarios]

    anchor = next(r for r in rows
                  if (r["n_sats"], r["n_obs"]) == ANCHOR)
    payload = {
        "benchmark": "orbit_batch",
        "smoke": smoke,
        "coarse_step_s": COARSE_STEP_S,
        "min_elevation_deg": MIN_ELEVATION_DEG,
        "refine": "interp",
        "speedup_floor": SPEEDUP_FLOOR,
        "anchor": {"n_sats": ANCHOR[0], "n_obs": ANCHOR[1],
                   "coarse_speedup": anchor["coarse_speedup"],
                   "full_speedup": anchor["full_speedup"]},
        "scenarios": rows,
    }
    write_json("orbit_batch", payload)

    lines = [f"Fleet pass search — SGP4Batch vs per-satellite loop "
             f"({'smoke' if smoke else 'full'}, "
             f"{duration_s / 3600.0:.0f} h @ {COARSE_STEP_S:.0f} s)"]
    for row in rows:
        lines.append(
            f"  {row['n_sats']:4d} sats x {row['n_obs']:2d} sites  "
            f"coarse {row['coarse_scalar_s'] * 1e3:9.1f} -> "
            f"{row['coarse_batched_s'] * 1e3:8.1f} ms "
            f"({row['coarse_speedup']:6.1f}x)   "
            f"full {row['full_scalar_s']:7.2f} -> "
            f"{row['full_fleet_s']:6.2f} s "
            f"({row['full_speedup']:5.1f}x)   "
            f"{row['windows']:5d} windows")
    lines.append(
        f"  bit-identity: (r, v) rows and all pass lists verified "
        f"in-run; floor {SPEEDUP_FLOOR:.0f}x coarse at "
        f"{ANCHOR[0]}x{ANCHOR[1]}")
    write_output("orbit_batch", "\n".join(lines))

    assert anchor["coarse_speedup"] >= SPEEDUP_FLOOR, (
        f"coarse-grid speedup only {anchor['coarse_speedup']:.2f}x at "
        f"{ANCHOR[0]} sats x {ANCHOR[1]} sites "
        f"(need >= {SPEEDUP_FLOOR}x)")
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="batched SGP4 fleet pass-search benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (6 h horizon, no "
                             "200-satellite fleet)")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)
    run_benchmark(smoke=args.smoke, seed=args.seed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
