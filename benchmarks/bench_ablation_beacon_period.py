"""Ablation — satellite beacon period.

Beacons gate every uplink in the DtS protocol, so their cadence is a key
operator design choice: denser beacons give nodes more transmit
opportunities (shorter waits) at the cost of satellite downlink airtime.
This ablation reruns the passive reception pipeline at several periods.

Driven by the committed spec ``scenarios/ablation_beacon_period.json``
(kind ``reception``, sweeping
``constellation.overrides.beacon_period_s``).
"""

from satiot.core.report import format_table

from conftest import run_bench_scenario, write_output

AXIS = "constellation.overrides.beacon_period_s"


def compute():
    return run_bench_scenario("ablation_beacon_period")


def test_ablation_beacon_period(benchmark):
    run = benchmark.pedantic(compute, rounds=1, iterations=1)
    store = run.store
    by_period = {run.cell_params(cell)[AXIS]: cell
                 for cell in store.cells()}
    rows = [[period,
             int(store.value(cell, "beacons_received")),
             store.value(cell, "windows_heard_frac"),
             store.value(cell, "median_rx_gap_s")]
            for period, cell in by_period.items()]
    table = format_table(
        ["Beacon period (s)", "beacons received (12 h)",
         "windows heard", "median rx gap (s)"],
        rows, precision=2,
        title="Ablation: beacon cadence vs transmit opportunities "
              "(Tianqi @ HK)")
    write_output("ablation_beacon_period", table)

    received = [store.value(cell, "beacons_received")
                for cell in store.cells()]
    assert received == sorted(received, reverse=True)
