"""Ablation — satellite beacon period.

Beacons gate every uplink in the DtS protocol, so their cadence is a key
operator design choice: denser beacons give nodes more transmit
opportunities (shorter waits) at the cost of satellite downlink airtime.
This ablation reruns the passive reception pipeline at several periods.
"""

import numpy as np

from dataclasses import replace

from satiot.constellations.catalog import CONSTELLATION_SPECS, \
    build_constellation
from satiot.core.report import format_table
from satiot.groundstation.receiver import BeaconReceiver
from satiot.groundstation.scheduler import Scheduler
from satiot.groundstation.station import GroundStation
from satiot.core.sites import SITES
from satiot.sim.rng import RngStreams

from conftest import SEED, write_output

PERIODS_S = (2.0, 5.0, 15.0, 30.0)


def run_period(period_s: float):
    base = CONSTELLATION_SPECS["tianqi"]
    spec = replace(base, radio=replace(base.radio,
                                       beacon_period_s=period_s))
    constellation = build_constellation("tianqi", seed=SEED, spec=spec)
    epoch = constellation.satellites[0].tle.epoch
    site = SITES["HK"]
    stations = [GroundStation(f"HK-{i}", "HK", site.location)
                for i in range(6)]
    schedule = Scheduler(stations).build_schedule(
        list(constellation), epoch, 43200.0)
    receiver = BeaconReceiver()
    streams = RngStreams(SEED)
    receptions = [receiver.receive_pass(sp, epoch, f"HK-{i}",
                                        streams.get(f"p{period_s}/{i}"))
                  for i, sp in enumerate(schedule.assigned)]
    received = sum(r.beacons_received for r in receptions)
    heard_windows = np.mean([r.heard_anything for r in receptions])
    time_blocks = [r.traces.column("time_s") for r in receptions
                   if len(r.traces)]
    times = np.sort(np.concatenate(time_blocks)) if time_blocks \
        else np.empty(0)
    gaps = np.diff(times) if times.size > 1 else np.array([np.inf])
    return received, float(heard_windows), float(np.median(gaps))


def compute():
    return {p: run_period(p) for p in PERIODS_S}


def test_ablation_beacon_period(benchmark):
    sweep = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[p, rec, heard, gap]
            for p, (rec, heard, gap) in sweep.items()]
    table = format_table(
        ["Beacon period (s)", "beacons received (12 h)",
         "windows heard", "median rx gap (s)"],
        rows, precision=2,
        title="Ablation: beacon cadence vs transmit opportunities "
              "(Tianqi @ HK)")
    write_output("ablation_beacon_period", table)

    received = [sweep[p][0] for p in PERIODS_S]
    assert received == sorted(received, reverse=True)
