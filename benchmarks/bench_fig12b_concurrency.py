"""Figure 12b — reliability under simultaneous transmissions.

Paper Appendix E: 94 % for single-node transmissions, 92 % with two
nodes, 89 % with three nodes transmitting simultaneously.
"""

from satiot.core.performance import reliability_by_concurrency
from satiot.core.references import CONCURRENCY_RELIABILITY as PAPER
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    return reliability_by_concurrency(result.all_satellite_records())


def test_fig12b_concurrency(benchmark, active_default):
    groups = benchmark(compute, active_default)
    rows = [[k, count, rel, PAPER.get(k)]
            for k, (rel, count) in sorted(groups.items())]
    table = format_table(
        ["Concurrent transmitters", "#packets", "measured reliability",
         "paper"],
        rows, precision=3,
        title="Figure 12b: reliability vs simultaneous transmissions")
    write_output("fig12b_concurrency", table)

    assert 1 in groups
    rel_single, _ = groups[1]
    assert rel_single > 0.8
    # Higher concurrency never helps.
    if 3 in groups and groups[3][1] >= 20:
        assert groups[3][0] <= rel_single + 0.05
