"""Extension — longitudinal stability of the headline findings.

The paper's passive measurements span seven months; this bench samples
one day per week over six weeks (each propagated to its true epoch, so
nodal precession reshuffles the geometry) and checks that the headline
shrinkage statistic is a stable property of the system, not of one
lucky week.
"""


from satiot.core.longitudinal import LongitudinalCampaign
from satiot.core.report import format_table

from conftest import SEED, write_output

WEEKS = 6


def compute():
    campaign = LongitudinalCampaign(weeks=WEEKS, site="HK",
                                    sample_days=1.0, period_days=7.0,
                                    seed=SEED,
                                    constellations=("tianqi",))
    return campaign.run()


def test_extension_longitudinal(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for sample in result.samples:
        stats = sample.stats_by_constellation["tianqi"]
        rows.append([
            sample.week, sample.traces,
            stats.theoretical_daily_hours,
            stats.effective_daily_hours,
            100.0 * stats.duration_shrinkage,
        ])
    spread = 100.0 * result.shrinkage_stability("tianqi")
    table = format_table(
        ["Week", "traces/day", "theo (h/day)", "eff (h/day)",
         "shrink (%)"],
        rows, precision=1,
        title="Extension: weekly samples over six weeks (Tianqi @ HK); "
              f"shrinkage spread {spread:.1f} pp")
    write_output("extension_longitudinal", table)

    series = result.shrinkage_series("tianqi")
    assert all(0.7 < s < 1.0 for s in series)
    assert result.shrinkage_stability("tianqi") < 0.15
    theo = [s.stats_by_constellation["tianqi"].theoretical_daily_hours
            for s in result.samples]
    # Theoretical presence is set by orbital geometry: very stable.
    assert max(theo) - min(theo) < 3.0
