"""Extension — longitudinal stability of the headline findings.

The paper's passive measurements span seven months; this bench samples
one day per week over six weeks (each propagated to its true epoch, so
nodal precession reshuffles the geometry) and checks that the headline
shrinkage statistic is a stable property of the system, not of one
lucky week.

Driven by the committed spec ``scenarios/extension_longitudinal.json``
(kind ``longitudinal``, six weekly samples).
"""

from satiot.core.report import format_table

from conftest import run_bench_scenario, write_output


def compute():
    return run_bench_scenario("extension_longitudinal")


def test_extension_longitudinal(benchmark):
    run = benchmark.pedantic(compute, rounds=1, iterations=1)
    store = run.store
    cell = store.cells()[0]
    traces = store.subject_values("traces", cell)
    weeks = sorted(int(subject[4:]) for subject in traces)
    rows = []
    for week in weeks:
        subject = f"tianqi@week{week}"
        rows.append([
            week, int(traces[f"week{week}"]),
            store.value(cell, "theoretical_daily_hours", subject),
            store.value(cell, "effective_daily_hours", subject),
            100.0 * store.value(cell, "duration_shrinkage", subject),
        ])
    spread = 100.0 * store.value(cell, "shrinkage_stability", "tianqi")
    table = format_table(
        ["Week", "traces/day", "theo (h/day)", "eff (h/day)",
         "shrink (%)"],
        rows, precision=1,
        title="Extension: weekly samples over six weeks (Tianqi @ HK); "
              f"shrinkage spread {spread:.1f} pp")
    write_output("extension_longitudinal", table)

    series = [store.value(cell, "duration_shrinkage",
                          f"tianqi@week{week}") for week in weeks]
    assert all(0.7 < s < 1.0 for s in series)
    assert store.value(cell, "shrinkage_stability", "tianqi") < 0.15
    theo = [store.value(cell, "theoretical_daily_hours",
                        f"tianqi@week{week}") for week in weeks]
    # Theoretical presence is set by orbital geometry: very stable.
    assert max(theo) - min(theo) < 3.0
