"""Figure 5a — end-to-end reliability: terrestrial vs Tianqi,
without and with DtS retransmissions.

Paper: terrestrial ~100 %; Tianqi 91 % without retransmissions, up to
96 % with a maximum of five.
"""

import numpy as np

from satiot.core.report import format_table
from satiot.network.server import reliability_report

from conftest import write_output


def compute(active_default, active_no_retx):
    with_retx = reliability_report(active_default.all_satellite_records())
    without = reliability_report(active_no_retx.all_satellite_records())
    terr = active_default.all_terrestrial_records()
    terr_rel = float(np.mean([r.delivered for r in terr]))
    return with_retx, without, terr_rel


def test_fig5a_reliability(benchmark, active_default, active_no_retx):
    with_retx, without, terr_rel = benchmark(
        compute, active_default, active_no_retx)
    rows = [
        ["Terrestrial LoRaWAN", terr_rel, 1.00],
        ["Tianqi (no retx)", without.reliability, 0.91],
        ["Tianqi (max 5 retx)", with_retx.reliability, 0.96],
    ]
    table = format_table(
        ["System", "measured reliability", "paper"],
        rows, precision=3,
        title="Figure 5a: end-to-end packet reliability")
    write_output("fig5a_reliability", table)

    assert terr_rel > 0.99
    assert without.reliability > 0.80
    assert with_retx.reliability >= without.reliability
    assert with_retx.reliability > 0.90
