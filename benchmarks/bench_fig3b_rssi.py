"""Figure 3b — signal strength distribution per constellation.

Paper: beacons arrive at roughly -140 to -110 dBm across constellations.
"""

from satiot.core.availability import rssi_stats
from satiot.core.report import format_table

from conftest import write_output


def compute_rssi(result):
    out = {}
    for name in result.constellations:
        receptions = [r for code in result.site_results
                      for r in result.receptions(code, name)]
        out[name] = rssi_stats(receptions)
    return out


def test_fig3b_rssi_distributions(benchmark, passive_continent):
    stats = benchmark(compute_rssi, passive_continent)
    rows = [[result_name, s.count, s.p10_dbm, s.median_dbm, s.p90_dbm]
            for result_name, s in sorted(stats.items())]
    table = format_table(
        ["Constellation", "#traces", "p10 (dBm)", "median (dBm)",
         "p90 (dBm)"],
        rows, precision=1,
        title="Figure 3b: received beacon RSSI per constellation "
              "(paper: -140..-110 dBm)")
    write_output("fig3b_rssi", table)

    for _name, s in stats.items():
        if s.count:
            assert -150.0 < s.median_dbm < -100.0
