"""Ablation — elevation mask of the theoretical contact definition.

DESIGN.md calls out the elevation mask as a free methodological choice
(the paper's Table 3 footprints mix 0-5 degree masks).  This ablation
shows how the headline shrinkage statistic depends on it: a higher mask
shortens the *theoretical* windows, so the same receptions look less
catastrophic — the paper's 85-92 % figure is tied to a horizon mask.

Driven by the committed spec ``scenarios/ablation_elevation_mask.json``
(kind ``passive``, sweeping ``ground.min_elevation_deg``).
"""

from satiot.core.report import format_table

from conftest import run_bench_scenario, write_output

AXIS = "ground.min_elevation_deg"
SUBJECT = "Tianqi@HK"


def compute():
    return run_bench_scenario("ablation_elevation_mask")


def test_ablation_elevation_mask(benchmark):
    run = benchmark.pedantic(compute, rounds=1, iterations=1)
    store = run.store
    by_mask = {run.cell_params(cell)[AXIS]: cell
               for cell in store.cells()}
    rows = [[mask,
             store.value(cell, "theoretical_daily_hours", SUBJECT),
             store.value(cell, "effective_daily_hours", SUBJECT),
             100.0 * store.value(cell, "duration_shrinkage", SUBJECT)]
            for mask, cell in by_mask.items()]
    table = format_table(
        ["Elevation mask (deg)", "theo daily (h)", "eff daily (h)",
         "shrinkage (%)"],
        rows, precision=1,
        title="Ablation: elevation mask vs contact-window shrinkage "
              "(Tianqi @ HK)")
    write_output("ablation_elevation_mask", table)

    theo = {mask: store.value(cell, "theoretical_daily_hours", SUBJECT)
            for mask, cell in by_mask.items()}
    shrink = {mask: store.value(cell, "duration_shrinkage", SUBJECT)
              for mask, cell in by_mask.items()}
    # Higher masks shrink the theoretical baseline ...
    assert theo[10.0] < theo[0.0]
    # ... which softens the apparent shrinkage.
    assert shrink[10.0] < shrink[0.0] + 1e-9
