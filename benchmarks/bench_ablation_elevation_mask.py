"""Ablation — elevation mask of the theoretical contact definition.

DESIGN.md calls out the elevation mask as a free methodological choice
(the paper's Table 3 footprints mix 0-5 degree masks).  This ablation
shows how the headline shrinkage statistic depends on it: a higher mask
shortens the *theoretical* windows, so the same receptions look less
catastrophic — the paper's 85-92 % figure is tied to a horizon mask.
"""

from satiot.core.campaign import PassiveCampaign, PassiveCampaignConfig
from satiot.core.contacts import analyze_contacts
from satiot.core.report import format_table

from conftest import SEED, write_output

MASKS_DEG = (0.0, 5.0, 10.0)


def run_mask(mask_deg: float):
    config = PassiveCampaignConfig(sites=("HK",),
                                   constellations=("tianqi",),
                                   days=1.0, seed=SEED,
                                   min_elevation_deg=mask_deg)
    result = PassiveCampaign(config).run()
    receptions = result.receptions("HK", "tianqi")
    return analyze_contacts(receptions, result.duration_s)


def compute():
    return {mask: run_mask(mask) for mask in MASKS_DEG}


def test_ablation_elevation_mask(benchmark):
    stats = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[mask, st.theoretical_daily_hours, st.effective_daily_hours,
             100.0 * st.duration_shrinkage]
            for mask, st in stats.items()]
    table = format_table(
        ["Elevation mask (deg)", "theo daily (h)", "eff daily (h)",
         "shrinkage (%)"],
        rows, precision=1,
        title="Ablation: elevation mask vs contact-window shrinkage "
              "(Tianqi @ HK)")
    write_output("ablation_elevation_mask", table)

    # Higher masks shrink the theoretical baseline ...
    assert stats[10.0].theoretical_daily_hours \
        < stats[0.0].theoretical_daily_hours
    # ... which softens the apparent shrinkage.
    assert stats[10.0].duration_shrinkage \
        < stats[0.0].duration_shrinkage + 1e-9
