"""Figure 4a — theoretical vs effective contact-window durations.

Paper: effective durations are 73.70-89.23 % shorter than theoretical
across all constellations; the aggregated daily contact duration shrinks
by 85.74-92.20 %.
"""

from satiot.core.contacts import (aggregate_stats,
                                  analyze_contacts)
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    out = {}
    for name in result.constellations:
        per_site = [analyze_contacts(result.receptions(code, name),
                                     result.duration_s)
                    for code in result.site_results]
        out[name] = aggregate_stats(per_site)
    return out


def test_fig4a_contact_durations(benchmark, passive_continent):
    stats = benchmark(compute, passive_continent)
    rows = []
    for name, st in sorted(stats.items()):
        theo = st.theoretical_summary()
        eff = st.effective_summary()
        rows.append([
            passive_continent.constellations[name].name,
            theo.mean / 60.0, eff.mean / 60.0,
            100.0 * st.mean_duration_shrinkage,
            100.0 * st.duration_shrinkage,
        ])
    table = format_table(
        ["Constellation", "theo dur (min)", "eff dur (min)",
         "per-window shrink (%)", "aggregate shrink (%)"],
        rows, precision=1,
        title="Figure 4a: contact windows, theoretical vs effective "
              "(paper: 73.7-89.2 % per-window, 85.7-92.2 % aggregate)")
    write_output("fig4a_contact_windows", table)

    for row in rows:
        assert row[1] > row[2]            # effective < theoretical
        assert 60.0 < row[3] <= 100.0     # heavy per-window shrinkage
        assert 60.0 < row[4] <= 100.0     # heavy aggregate shrinkage
