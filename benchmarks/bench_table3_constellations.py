"""Table 3 — overview of the measured constellations."""

from satiot.constellations.catalog import build_all_constellations
from satiot.core.report import format_table

from conftest import write_output


def build_table3():
    rows = []
    for constellation in build_all_constellations().values():
        spec = constellation.spec
        footprints = constellation.footprint_areas_km2()
        for shell in spec.shells:
            rows.append([
                spec.name, spec.operator_region, shell.count,
                f"{shell.altitude_min_km:.1f}-{shell.altitude_max_km:.1f}",
                f"{footprints[shell.name]:.2e}",
                shell.inclination_deg,
                f"{spec.radio.frequency_hz / 1e6:.3f}",
            ])
    return rows


def test_table3_constellations(benchmark):
    rows = benchmark(build_table3)
    table = format_table(
        ["SNO", "Region", "#SATs", "Orbit alt (km)",
         "Footprint (km^2)", "Inclination (deg)", "DtS freq (MHz)"],
        rows, title="Table 3: measured constellations (from catalog)")
    write_output("table3_constellations", table)

    assert sum(r[2] for r in rows) == 39
    assert len({r[0] for r in rows}) == 4
