"""Figure 4b — contact intervals, theoretical vs effective.

Paper: intervals between two contacts with a constellation are enlarged
6.1-44.9x; Tianqi's effective contacts average 3.8 min with 15.6-min
intervals (vs 18.5 h daily theoretical presence).
"""

import numpy as np

from satiot.core.contacts import (aggregate_stats,
                                  analyze_contacts)
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    out = {}
    for name in result.constellations:
        per_site = [analyze_contacts(result.receptions(code, name),
                                     result.duration_s)
                    for code in result.site_results]
        out[name] = aggregate_stats(per_site)
    return out


def test_fig4b_contact_intervals(benchmark, passive_continent):
    stats = benchmark(compute, passive_continent)
    rows = []
    for name, st in sorted(stats.items()):
        theo_int = (np.mean(st.theoretical_intervals_s) / 60.0
                    if st.theoretical_intervals_s else None)
        eff_int = (np.mean(st.effective_intervals_s) / 60.0
                   if st.effective_intervals_s else None)
        rows.append([
            passive_continent.constellations[name].name,
            theo_int, eff_int, st.interval_inflation,
            st.theoretical_daily_hours, st.effective_daily_hours,
        ])
    table = format_table(
        ["Constellation", "theo interval (min)", "eff interval (min)",
         "inflation (x)", "theo daily (h)", "eff daily (h)"],
        rows, precision=1,
        title="Figure 4b: contact intervals, theoretical vs effective "
              "(paper: 6.1-44.9x inflation)")
    write_output("fig4b_contact_intervals", table)

    for row in rows:
        if row[1] is not None and row[2] is not None:
            assert row[2] > row[1]      # intervals inflate
            assert row[3] > 1.5         # by several-fold
        assert row[5] < row[4]          # daily hours collapse
