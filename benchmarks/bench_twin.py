"""Incremental ephemeris extension vs full recomputation.

Benchmarks the digital-twin serving tentpole: as the twin's clock
advances, each ``start=now`` query grows the fleet's time grid by one
quantum.  Without the extension tier every growth step is a fresh
constellation key — a full ``(N, T, 3)`` propagation of an
ever-longer grid.  With it, only the new suffix instants are
propagated and concatenated onto the cached prefix.

Timed head-to-head over the same growth schedule:

* **full recompute** — a cold cache per step (exactly what serving
  would do without the extension tier: no prior key ever matches);
* **incremental** — one cache serving the steps in order, extending.

Asserted contracts, checked in the same run that is timed:

* the final incrementally-assembled grid is **bit-identical** to one
  cold full-range propagation (the tests/twin property, re-verified
  at benchmark scale);
* every step actually took the extension fast path;
* growth-step speedup >= ``SPEEDUP_FLOOR`` (acceptance floor).  The
  initial base fill — identical cold work in both modes — is reported
  separately and excluded from the ratio.

Metrics land in ``benchmarks/output/twin_extension.json`` (CI
artifact) next to the human-readable table.  ``--smoke`` shrinks the
fleet and the schedule for CI.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

import numpy as np

from satiot.constellations.shells import ShellSpec, generate_shell_tles
from satiot.orbits.sgp4 import SGP4
from satiot.runtime.ephemeris_cache import EphemerisCache

from conftest import SEED, write_json, write_output

COARSE_STEP_S = 30.0
#: acceptance floor: cumulative extension speedup over the schedule
SPEEDUP_FLOOR = 5.0


def _fleet(count: int, seed: int) -> List[SGP4]:
    tles = generate_shell_tles(
        ShellSpec(name="twin", count=count, altitude_min_km=500.0,
                  altitude_max_km=620.0, inclination_deg=97.5),
        epochyr=24, epochdays=250.5, norad_base=91000, seed=seed)
    return [SGP4(tle) for tle in tles]


def _schedule(base: int, quantum: int, steps: int) -> List[np.ndarray]:
    """Grid sizes the advancing clock serves: base, base+q, ..."""
    full = np.arange(base + quantum * steps, dtype=float) \
        * COARSE_STEP_S
    return [full[:base + quantum * k] for k in range(steps + 1)]


def _time_full_recompute(props, epoch, grids) -> List[float]:
    """Every step on a cold cache: the no-extension-tier baseline."""
    times = []
    for grid in grids:
        cache = EphemerisCache()
        t0 = time.perf_counter()
        cache.constellation_grid(props, epoch, grid)
        times.append(time.perf_counter() - t0)
    return times


def _time_incremental(props, epoch, grids):
    """One cache serving the growth schedule in order."""
    cache = EphemerisCache()
    times = []
    result = None
    for grid in grids:
        t0 = time.perf_counter()
        result = cache.constellation_grid(props, epoch, grid)
        times.append(time.perf_counter() - t0)
    return times, result, cache.stats.grid_extensions


def run_benchmark(smoke: bool, seed: int = SEED) -> dict:
    if smoke:
        n_sats, base, quantum, steps = 39, 480, 30, 12
    else:
        n_sats, base, quantum, steps = 120, 960, 60, 16

    props = _fleet(n_sats, seed)
    epoch = props[0].tle.epoch
    grids = _schedule(base, quantum, steps)
    final = grids[-1]

    full_times = _time_full_recompute(props, epoch, grids)
    inc_times, (r_inc, v_inc), extensions = _time_incremental(
        props, epoch, grids)
    # Step 0 is the base fill — a cold full propagation in BOTH modes,
    # byte-for-byte the same work.  The tier's win is the growth
    # steps, so the speedup (and its floor) is measured over those.
    base_fill_s = inc_times[0]
    full_s = sum(full_times[1:])
    incremental_s = sum(inc_times[1:])

    # Bit-identity against one cold full-range propagation.
    r_ref, v_ref = EphemerisCache().constellation_grid(
        props, epoch, final)
    assert r_inc.tobytes() == r_ref.tobytes(), \
        "incremental r stack diverged from cold propagation"
    assert v_inc.tobytes() == v_ref.tobytes(), \
        "incremental v stack diverged from cold propagation"
    assert extensions == steps, \
        f"only {extensions}/{steps} steps took the extension fast path"

    speedup = full_s / incremental_s
    payload = {
        "benchmark": "twin_extension",
        "smoke": smoke,
        "n_sats": n_sats,
        "coarse_step_s": COARSE_STEP_S,
        "base_samples": base,
        "quantum_samples": quantum,
        "steps": steps,
        "final_samples": int(final.size),
        "grid_extensions": extensions,
        "base_fill_s": round(base_fill_s, 6),
        "full_recompute_s": round(full_s, 6),
        "incremental_s": round(incremental_s, 6),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    write_json("twin_extension", payload)

    lines = [
        f"Twin grid growth — incremental extension vs full recompute "
        f"({'smoke' if smoke else 'full'})",
        f"  {n_sats} sats, {steps} growth steps of {quantum} samples "
        f"on a {base}-sample base ({final.size} final, "
        f"{COARSE_STEP_S:.0f} s step)",
        f"  base fill {base_fill_s * 1e3:.1f} ms (both modes), then:",
        f"  full recompute {full_s * 1e3:9.1f} ms   "
        f"incremental {incremental_s * 1e3:8.1f} ms   "
        f"({speedup:6.1f}x)",
        f"  bit-identity vs cold propagation verified in-run; "
        f"floor {SPEEDUP_FLOOR:.0f}x",
    ]
    write_output("twin_extension", "\n".join(lines))

    assert speedup >= SPEEDUP_FLOOR, (
        f"extension speedup only {speedup:.2f}x over the growth "
        f"schedule (need >= {SPEEDUP_FLOOR}x)")
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="incremental ephemeris extension benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (39 sats, 12 growth steps)")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)
    run_benchmark(smoke=args.smoke, seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
