"""Runtime scaling — shard executor speedup and ephemeris-cache warmth.

Measures the two performance claims of ``satiot.runtime``:

* **shard speedup** — the same passive campaign run serially and on a
  worker pool must produce bit-identical trace datasets, and the pool
  must be faster once real cores are available (the speedup assertion is
  gated on ``os.cpu_count()`` so single-core CI boxes still verify
  correctness);
* **cache warmth** — a second campaign on a warm ephemeris cache must
  beat the cache-cold run, because every SGP4 grid and refined pass list
  is served from memory/disk instead of recomputed.

Tiny mode (``SATIOT_BENCH_TINY=1``, used by ``make bench-smoke``)
shrinks the campaign so the whole file runs in seconds.
"""

from __future__ import annotations

import os
import time

from satiot.core.campaign import PassiveCampaign, PassiveCampaignConfig
from satiot.core.report import format_table
from satiot.runtime import EphemerisCache, ShardExecutor

from conftest import SEED, write_output

TINY = os.environ.get("SATIOT_BENCH_TINY", "").strip() in ("1", "true")

SITES = ("HK", "SYD") if TINY else ("HK", "SYD", "LDN", "PGH")
DAYS = 0.25 if TINY else 1.0
WORKER_STEPS = (1, 2) if TINY else (1, 2, 4)


def _config() -> PassiveCampaignConfig:
    return PassiveCampaignConfig(sites=SITES, constellations=("tianqi",),
                                 days=DAYS, seed=SEED)


def _timed_run(workers: int, cache):
    start = time.perf_counter()
    result = PassiveCampaign(_config(), workers=workers,
                             ephemeris_cache=cache).run()
    return result, time.perf_counter() - start


def compute_scaling():
    rows = []
    baseline = None
    reference = None
    for workers in WORKER_STEPS:
        # A fresh memory-only cache per run: no warmth leaks between
        # worker counts, so the comparison is propagation-for-
        # propagation.
        result, wall = _timed_run(workers, EphemerisCache())
        if reference is None:
            reference, baseline = result, wall
        else:
            assert list(result.dataset) == list(reference.dataset), \
                f"workers={workers} diverged from the serial dataset"
        telemetry = result.telemetry
        rows.append([workers, telemetry.mode, result.total_traces,
                     round(wall, 3), round(baseline / wall, 2),
                     round(telemetry.parallel_efficiency, 2)])
    return rows, baseline


def compute_cache_warmth():
    cache = EphemerisCache()
    _, cold = _timed_run(1, cache)
    _, warm = _timed_run(1, cache)
    assert cache.stats.pass_hits > 0, "warm run never hit the cache"
    return cold, warm


def test_runtime_scaling(benchmark):
    (rows, serial_wall), (cold, warm) = benchmark.pedantic(
        lambda: (compute_scaling(), compute_cache_warmth()),
        rounds=1, iterations=1)

    cores = os.cpu_count() or 1
    best = min(r[3] for r in rows)
    if cores >= 4 and 4 in WORKER_STEPS:
        assert serial_wall / best >= 1.5, \
            f"expected >=1.5x at 4 workers, got {serial_wall / best:.2f}x"
    assert warm < cold, \
        f"cache-warm run ({warm:.3f}s) not faster than cold ({cold:.3f}s)"

    table = format_table(
        ["Workers", "mode", "traces", "wall (s)", "speedup",
         "efficiency"], rows,
        title=f"Runtime scaling — {len(SITES)} sites x {DAYS} d "
              f"({cores} cores, serial {serial_wall:.2f}s)")
    warmth = format_table(
        ["Cache state", "wall (s)", "vs cold"],
        [["cold", round(cold, 3), "1.00x"],
         ["warm", round(warm, 3), f"{cold / warm:.2f}x"]],
        title="Ephemeris cache warmth (serial, same process)")
    write_output("runtime_scaling", table + "\n\n" + warmth)


def test_executor_overhead(benchmark):
    """Pool bring-up + pickling overhead on trivial shards stays small."""
    from satiot.runtime import Shard

    shards = [Shard(index=i, kind="noop", key=str(i), payload=i)
              for i in range(8)]

    def run_pool():
        return ShardExecutor(workers=2).map(_identity, shards)

    outcomes = benchmark.pedantic(run_pool, rounds=1, iterations=1)
    assert [o.result for o in outcomes] == list(range(8))


def _identity(shard):
    return shard.payload
