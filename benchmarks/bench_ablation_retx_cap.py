"""Ablation — the DtS retransmission budget.

The paper fixes the cap at five; this ablation sweeps it, exposing the
reliability/energy/latency trade the protocol designer faces: each extra
permitted retransmission buys reliability at the cost of transmit energy
and DtS delay.
"""


from satiot.core.report import format_table
from satiot.network.server import (latency_decomposition_minutes,
                                   reliability_report)

from conftest import run_active, write_output

CAPS = (0, 1, 2, 5)


def compute(shared_segment):
    out = {}
    for cap in CAPS:
        result = run_active(shared_segment, max_retransmissions=cap)
        records = result.all_satellite_records()
        report = reliability_report(records)
        lat = latency_decomposition_minutes(records)
        attempts = sum(len(r.attempts) for r in records)
        out[cap] = (report.reliability, lat["dts_min"],
                    attempts / max(report.generated, 1))
    return out


def test_ablation_retx_cap(benchmark, shared_ground_segment):
    sweep = benchmark.pedantic(compute, args=(shared_ground_segment,),
                               rounds=1, iterations=1)
    rows = [[cap, rel, dts, attempts]
            for cap, (rel, dts, attempts) in sweep.items()]
    table = format_table(
        ["Max retransmissions", "e2e reliability", "DtS delay (min)",
         "Tx attempts/packet"],
        rows, precision=3,
        title="Ablation: retransmission budget vs reliability/cost")
    write_output("ablation_retx_cap", table)

    rels = [sweep[c][0] for c in CAPS]
    assert rels == sorted(rels)  # monotone in the cap
    # Energy proxy: attempts per packet grow with the budget.
    assert sweep[5][2] > sweep[0][2]
