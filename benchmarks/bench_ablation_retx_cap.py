"""Ablation — the DtS retransmission budget.

The paper fixes the cap at five; this ablation sweeps it, exposing the
reliability/energy/latency trade the protocol designer faces: each extra
permitted retransmission buys reliability at the cost of transmit energy
and DtS delay.

Driven by the committed spec ``scenarios/ablation_retx_cap.json``
(kind ``active``, sweeping ``mac.max_retransmissions``).
"""

from satiot.core.report import format_table

from conftest import run_bench_scenario, write_output

AXIS = "mac.max_retransmissions"


def compute():
    return run_bench_scenario("ablation_retx_cap")


def test_ablation_retx_cap(benchmark):
    run = benchmark.pedantic(compute, rounds=1, iterations=1)
    store = run.store
    by_cap = {run.cell_params(cell)[AXIS]: cell
              for cell in store.cells()}
    rows = [[cap,
             store.value(cell, "reliability"),
             store.value(cell, "dts_min"),
             store.value(cell, "tx_attempts_per_packet")]
            for cap, cell in by_cap.items()]
    table = format_table(
        ["Max retransmissions", "e2e reliability", "DtS delay (min)",
         "Tx attempts/packet"],
        rows, precision=3,
        title="Ablation: retransmission budget vs reliability/cost")
    write_output("ablation_retx_cap", table)

    caps = sorted(by_cap)
    rels = [store.value(by_cap[cap], "reliability") for cap in caps]
    assert rels == sorted(rels)  # monotone in the cap
    # Energy proxy: attempts per packet grow with the budget.
    assert store.value(by_cap[5], "tx_attempts_per_packet") \
        > store.value(by_cap[0], "tx_attempts_per_packet")
