"""Serving-layer load benchmark: micro-batched vs. unbatched throughput.

Starts two in-process :class:`satiot.serving.ServingServer` instances —
one with the micro-batching engine enabled, one degraded to honest
per-request serial service — and drives both with an asyncio load
generator sweeping concurrency levels.  Every request queries
``/v1/passes`` for a *unique* random location, so the result cache
cannot help and the comparison isolates the batching engine's shared
orbital work (one SGP4 grid + TEME→ECEF conversion per satellite per
batch instead of per request).

Reported per (mode, concurrency): throughput (req/s), client-side
p50/p90/p99/max latency, status counts; plus the server-side batch-size
histogram — the direct evidence that coalescing happened.  Metrics land
in ``benchmarks/output/serving_load.json`` (uploaded as a CI artifact)
next to a human-readable table.

Run standalone (the pytest session collects no tests from this file)::

    cd benchmarks && PYTHONPATH=../src python bench_serving.py --smoke

Full mode asserts the tentpole acceptance criterion: at 512 concurrent
clients the batched server delivers ≥ 5× the unbatched throughput.
Smoke mode (CI, seconds not minutes) asserts a conservative ≥ 1.5× at
its top concurrency — the batching win is algorithmic (shared frame
conversions), not parallelism, so it holds on single-core boxes too.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from satiot.serving import ServingConfig, ServingServer

OUTPUT_DIR = Path(__file__).parent / "output"

FULL_CONCURRENCY = (1, 32, 512)
SMOKE_CONCURRENCY = (1, 32)
FULL_HORIZON_S = 86400.0
SMOKE_HORIZON_S = 21600.0
FULL_SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 1.5


def percentile(sorted_ms: List[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    rank = max(0, min(len(sorted_ms) - 1,
                      round(q / 100.0 * (len(sorted_ms) - 1))))
    return sorted_ms[rank]


# ----------------------------------------------------------------------
# Minimal asyncio HTTP/1.1 client (keep-alive)
# ----------------------------------------------------------------------
async def _http_get(reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter, path: str):
    writer.write(f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n"
                 .encode("ascii"))
    await writer.drain()
    header = await reader.readuntil(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    length = 0
    for line in header.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _connect(port: int):
    for _ in range(40):
        try:
            return await asyncio.open_connection("127.0.0.1", port)
        except OSError:
            await asyncio.sleep(0.05)
    raise RuntimeError("could not connect to benchmark server")


async def _client(port: int, n_requests: int,
                  make_path: Callable[[], str],
                  latencies_ms: List[float],
                  statuses: Dict[int, int]) -> None:
    reader, writer = await _connect(port)
    try:
        for _ in range(n_requests):
            start = time.perf_counter()
            status, _ = await _http_get(reader, writer, make_path())
            latencies_ms.append(
                (time.perf_counter() - start) * 1000.0)
            statuses[status] = statuses.get(status, 0) + 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Load levels
# ----------------------------------------------------------------------
def _path_factory(seed: int, horizon_s: float) -> Callable[[], str]:
    """Unique random observer per request → no result-cache hits."""
    rng = np.random.default_rng(seed)

    def make_path() -> str:
        lat = float(rng.uniform(-60.0, 60.0))
        lon = float(rng.uniform(-180.0, 180.0))
        return (f"/v1/passes?lat={lat:.6f}&lon={lon:.6f}"
                f"&horizon_s={horizon_s:.0f}&min_elevation_deg=10")
    return make_path


async def _run_level(port: int, concurrency: int, total_requests: int,
                     horizon_s: float, seed: int) -> dict:
    latencies_ms: List[float] = []
    statuses: Dict[int, int] = {}
    share, extra = divmod(total_requests, concurrency)
    start = time.perf_counter()
    await asyncio.gather(*(
        _client(port, share + (1 if i < extra else 0),
                _path_factory(seed + i, horizon_s),
                latencies_ms, statuses)
        for i in range(concurrency)))
    wall_s = time.perf_counter() - start
    ordered = sorted(latencies_ms)
    return {
        "concurrency": concurrency,
        "requests": total_requests,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(total_requests / wall_s, 2),
        "latency_ms": {
            "p50": round(percentile(ordered, 50.0), 3),
            "p90": round(percentile(ordered, 90.0), 3),
            "p99": round(percentile(ordered, 99.0), 3),
            "max": round(ordered[-1], 3) if ordered else 0.0,
        },
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
    }


async def _bench_mode(batching: bool, concurrency_levels, horizon_s,
                      coarse_step_s: float, seed: int) -> dict:
    config = ServingConfig(
        port=0, batching=batching, max_batch=256, window_s=0.002,
        max_pending=8192, coarse_step_s=coarse_step_s,
        cache_decimals=6, cache_ttl_s=3600.0)
    server = ServingServer(config)
    await server.start()
    try:
        port = server.bound_port
        # Warm the SGP4 grid cache so both modes pay propagation once,
        # outside the timed window (the comparison targets the
        # per-request frame-conversion + pass-search work).
        await _run_level(port, 1, 2, horizon_s, seed=seed + 9000)
        levels = []
        for concurrency in concurrency_levels:
            total = max(32, 2 * concurrency)
            level = await _run_level(port, concurrency, total,
                                     horizon_s, seed=seed)
            levels.append(level)
            print(f"  [{'batched' if batching else 'unbatched':9s}] "
                  f"c={concurrency:4d}  "
                  f"{level['throughput_rps']:8.1f} req/s  "
                  f"p50 {level['latency_ms']['p50']:8.2f} ms  "
                  f"p99 {level['latency_ms']['p99']:8.2f} ms")
        passes_metrics = server.metrics.endpoint("passes").to_dict()
        return {
            "mode": "batched" if batching else "unbatched",
            "levels": levels,
            "server_metrics": passes_metrics,
        }
    finally:
        await server.close()


# ----------------------------------------------------------------------
def run_benchmark(smoke: bool, seed: int = 42) -> dict:
    concurrency_levels = SMOKE_CONCURRENCY if smoke else FULL_CONCURRENCY
    horizon_s = SMOKE_HORIZON_S if smoke else FULL_HORIZON_S
    results = {}
    for batching in (False, True):
        results["batched" if batching else "unbatched"] = asyncio.run(
            _bench_mode(batching, concurrency_levels, horizon_s,
                        coarse_step_s=30.0, seed=seed))

    top = concurrency_levels[-1]
    speedups = {}
    for batched_level, unbatched_level in zip(
            results["batched"]["levels"],
            results["unbatched"]["levels"]):
        c = batched_level["concurrency"]
        speedups[str(c)] = round(
            batched_level["throughput_rps"]
            / unbatched_level["throughput_rps"], 2)
    payload = {
        "benchmark": "serving_load",
        "smoke": smoke,
        "horizon_s": horizon_s,
        "concurrency_levels": list(concurrency_levels),
        "speedup_batched_vs_unbatched": speedups,
        "top_concurrency": top,
        "modes": results,
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "serving_load.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    lines = [f"Serving load — batched vs unbatched "
             f"({'smoke' if smoke else 'full'}, horizon "
             f"{horizon_s / 3600.0:.0f} h)"]
    for mode in ("unbatched", "batched"):
        for level in results[mode]["levels"]:
            lat = level["latency_ms"]
            lines.append(
                f"  {mode:9s} c={level['concurrency']:4d}  "
                f"{level['throughput_rps']:8.1f} req/s  "
                f"p50 {lat['p50']:8.2f} ms  p99 {lat['p99']:8.2f} ms")
    lines.append(f"  speedup at c={top}: {speedups[str(top)]}x")
    histogram = results["batched"]["server_metrics"][
        "batch_size_histogram"]
    lines.append(f"  batched batch-size histogram: {histogram}")
    (OUTPUT_DIR / "serving_load.txt").write_text(
        "\n".join(lines) + "\n")
    print("\n".join(lines))

    floor = SMOKE_SPEEDUP_FLOOR if smoke else FULL_SPEEDUP_FLOOR
    top_speedup = speedups[str(top)]
    assert top_speedup >= floor, (
        f"batched throughput only {top_speedup:.2f}x unbatched at "
        f"c={top} (need >= {floor}x)")
    statuses = {
        status
        for mode in results.values()
        for level in mode["levels"]
        for status in level["statuses"]}
    assert statuses == {"200"}, f"non-200 responses seen: {statuses}"
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="satiot.serving load benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (seconds, lower speedup "
                             "floor)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    run_benchmark(smoke=args.smoke, seed=args.seed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
