"""Serving-layer load benchmark: micro-batched vs. unbatched throughput.

Starts two in-process :class:`satiot.serving.ServingServer` instances —
one with the micro-batching engine enabled, one degraded to honest
per-request serial service — and drives both with an asyncio load
generator sweeping concurrency levels.  Every request queries
``/v1/passes`` for a *unique* random location, so the result cache
cannot help and the comparison isolates the batching engine's shared
orbital work (one SGP4 grid + TEME→ECEF conversion per satellite per
batch instead of per request).

Reported per (mode, concurrency): throughput (req/s), client-side
p50/p90/p99/max latency, status counts; plus the server-side batch-size
histogram — the direct evidence that coalescing happened.  Metrics land
in ``benchmarks/output/serving_load.json`` (uploaded as a CI artifact)
next to a human-readable table.

A second phase benchmarks the **multi-worker fleet**
(:class:`satiot.serving.ServingFleet`): for each worker count a
supervised ``SO_REUSEPORT`` fleet is driven by a *multi-process* load
generator (several forked loader processes, each running thousands of
asyncio keep-alive clients), producing a per-worker-count scaling table
— req/s, client p50/p99, peak per-process RSS from each child's
``getrusage`` — in ``benchmarks/output/serving_fleet.json``.  All
worker counts share one ephemeris disk tier, so the table doubles as
the zero-copy evidence: every worker's constellation grid must be
mmap-shared (``grid_private_bytes == 0``), and probe responses must be
byte-identical across worker counts.

Run standalone (the pytest session collects no tests from this file)::

    cd benchmarks && PYTHONPATH=../src python bench_serving.py --smoke

Full mode asserts the tentpole acceptance criteria: at 512 concurrent
clients the batched server delivers ≥ 5× the unbatched throughput, and
at 4k+ concurrent clients the top fleet delivers ≥ 10× single-worker
throughput (the fleet floor needs real cores — it is not asserted in
smoke mode, which runs on single-core CI boxes).  Smoke mode (CI,
seconds not minutes) asserts a conservative ≥ 1.5× batching win at its
top concurrency plus the fleet's byte-identity and mmap-sharing
invariants, which hold at any core count.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from satiot.serving import (FleetConfig, ServingConfig, ServingFleet,
                            ServingServer)

OUTPUT_DIR = Path(__file__).parent / "output"

FULL_CONCURRENCY = (1, 32, 512)
SMOKE_CONCURRENCY = (1, 32)
FULL_HORIZON_S = 86400.0
SMOKE_HORIZON_S = 21600.0
FULL_SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 1.5

FULL_WORKER_COUNTS = (1, 2, 4, 8)
SMOKE_WORKER_COUNTS = (1, 2)
FULL_CLIENTS = 4096
SMOKE_CLIENTS = 64
#: Top-fleet vs single-worker throughput floor (full mode only: the
#: scaling is horizontal, so it needs at least as many cores as
#: workers plus loaders).
FLEET_SPEEDUP_FLOOR = 10.0
PROBE_REQUESTS = 12


def percentile(sorted_ms: List[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    rank = max(0, min(len(sorted_ms) - 1,
                      round(q / 100.0 * (len(sorted_ms) - 1))))
    return sorted_ms[rank]


# ----------------------------------------------------------------------
# Minimal asyncio HTTP/1.1 client (keep-alive)
# ----------------------------------------------------------------------
async def _http_get(reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter, path: str):
    writer.write(f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n"
                 .encode("ascii"))
    await writer.drain()
    header = await reader.readuntil(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    length = 0
    for line in header.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _connect(port: int):
    for _ in range(40):
        try:
            return await asyncio.open_connection("127.0.0.1", port)
        except OSError:
            await asyncio.sleep(0.05)
    raise RuntimeError("could not connect to benchmark server")


async def _client(port: int, n_requests: int,
                  make_path: Callable[[], str],
                  latencies_ms: List[float],
                  statuses: Dict[int, int]) -> None:
    reader, writer = await _connect(port)
    try:
        for _ in range(n_requests):
            start = time.perf_counter()
            status, _ = await _http_get(reader, writer, make_path())
            latencies_ms.append(
                (time.perf_counter() - start) * 1000.0)
            statuses[status] = statuses.get(status, 0) + 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Load levels
# ----------------------------------------------------------------------
def _path_factory(seed: int, horizon_s: float) -> Callable[[], str]:
    """Unique random observer per request → no result-cache hits."""
    rng = np.random.default_rng(seed)

    def make_path() -> str:
        lat = float(rng.uniform(-60.0, 60.0))
        lon = float(rng.uniform(-180.0, 180.0))
        return (f"/v1/passes?lat={lat:.6f}&lon={lon:.6f}"
                f"&horizon_s={horizon_s:.0f}&min_elevation_deg=10")
    return make_path


async def _run_level(port: int, concurrency: int, total_requests: int,
                     horizon_s: float, seed: int) -> dict:
    latencies_ms: List[float] = []
    statuses: Dict[int, int] = {}
    share, extra = divmod(total_requests, concurrency)
    start = time.perf_counter()
    await asyncio.gather(*(
        _client(port, share + (1 if i < extra else 0),
                _path_factory(seed + i, horizon_s),
                latencies_ms, statuses)
        for i in range(concurrency)))
    wall_s = time.perf_counter() - start
    ordered = sorted(latencies_ms)
    return {
        "concurrency": concurrency,
        "requests": total_requests,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(total_requests / wall_s, 2),
        "latency_ms": {
            "p50": round(percentile(ordered, 50.0), 3),
            "p90": round(percentile(ordered, 90.0), 3),
            "p99": round(percentile(ordered, 99.0), 3),
            "max": round(ordered[-1], 3) if ordered else 0.0,
        },
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
    }


async def _bench_mode(batching: bool, concurrency_levels, horizon_s,
                      coarse_step_s: float, seed: int) -> dict:
    config = ServingConfig(
        port=0, batching=batching, max_batch=256, window_s=0.002,
        max_pending=8192, coarse_step_s=coarse_step_s,
        cache_decimals=6, cache_ttl_s=3600.0)
    server = ServingServer(config)
    await server.start()
    try:
        port = server.bound_port
        # Warm the SGP4 grid cache so both modes pay propagation once,
        # outside the timed window (the comparison targets the
        # per-request frame-conversion + pass-search work).
        await _run_level(port, 1, 2, horizon_s, seed=seed + 9000)
        levels = []
        for concurrency in concurrency_levels:
            total = max(32, 2 * concurrency)
            level = await _run_level(port, concurrency, total,
                                     horizon_s, seed=seed)
            levels.append(level)
            print(f"  [{'batched' if batching else 'unbatched':9s}] "
                  f"c={concurrency:4d}  "
                  f"{level['throughput_rps']:8.1f} req/s  "
                  f"p50 {level['latency_ms']['p50']:8.2f} ms  "
                  f"p99 {level['latency_ms']['p99']:8.2f} ms")
        passes_metrics = server.metrics.endpoint("passes").to_dict()
        return {
            "mode": "batched" if batching else "unbatched",
            "levels": levels,
            "server_metrics": passes_metrics,
        }
    finally:
        await server.close()


# ----------------------------------------------------------------------
# Multi-worker fleet scaling
# ----------------------------------------------------------------------
def _load_proc_main(port: int, n_clients: int, n_requests: int,
                    horizon_s: float, seed: int, conn) -> None:
    """One forked load-generator process: ``n_clients`` concurrent
    keep-alive clients sharing ``n_requests``; results go back over the
    pipe (latencies, statuses, own peak RSS from ``getrusage``)."""
    import resource

    latencies_ms: List[float] = []
    statuses: Dict[int, int] = {}

    async def run() -> None:
        share, extra = divmod(n_requests, n_clients)
        await asyncio.gather(*(
            _client(port, share + (1 if i < extra else 0),
                    _path_factory(seed + i, horizon_s),
                    latencies_ms, statuses)
            for i in range(n_clients)))

    start = time.perf_counter()
    asyncio.run(run())
    wall_s = time.perf_counter() - start
    conn.send({
        "wall_s": wall_s,
        "latencies_ms": latencies_ms,
        "statuses": {str(k): v for k, v in statuses.items()},
        "loader_rss_max_kib": resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss,
    })
    conn.close()


def _run_fleet_level(port: int, clients: int, total_requests: int,
                     horizon_s: float, seed: int) -> dict:
    """Drive one fleet with a multi-process load generator."""
    ctx = multiprocessing.get_context("fork")
    loaders = 4 if clients >= 256 else 2
    per_clients, c_extra = divmod(clients, loaders)
    per_requests, r_extra = divmod(total_requests, loaders)
    pipes, procs = [], []
    for i in range(loaders):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_load_proc_main,
            args=(port, per_clients + (1 if i < c_extra else 0),
                  per_requests + (1 if i < r_extra else 0),
                  horizon_s, seed + 100_000 * (i + 1), child_conn),
            daemon=True)
        proc.start()
        child_conn.close()
        pipes.append(parent_conn)
        procs.append(proc)
    start = time.perf_counter()
    results = [conn.recv() for conn in pipes]
    wall_s = time.perf_counter() - start
    for proc in procs:
        proc.join()
    latencies = sorted(ms for r in results for ms in r["latencies_ms"])
    statuses: Dict[str, int] = {}
    for r in results:
        for status, count in r["statuses"].items():
            statuses[status] = statuses.get(status, 0) + count
    return {
        "clients": clients,
        "loaders": loaders,
        "requests": total_requests,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(total_requests / wall_s, 2),
        "latency_ms": {
            "p50": round(percentile(latencies, 50.0), 3),
            "p90": round(percentile(latencies, 90.0), 3),
            "p99": round(percentile(latencies, 99.0), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
        "statuses": statuses,
        "loader_rss_max_kib": max(r["loader_rss_max_kib"]
                                  for r in results),
    }


async def _probe(port: int, horizon_s: float, seed: int) -> List[bytes]:
    """Fixed deterministic request set for cross-fleet byte-identity."""
    make_path = _path_factory(seed, horizon_s)
    paths = [make_path() for _ in range(PROBE_REQUESTS)]
    reader, writer = await _connect(port)
    bodies = []
    try:
        for path in paths:
            status, body = await _http_get(reader, writer, path)
            assert status == 200, (status, body[:200])
            bodies.append(body)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
    return bodies


def _fleet_config() -> ServingConfig:
    return ServingConfig(
        port=0, batching=True, max_batch=256, window_s=0.002,
        max_pending=8192, coarse_step_s=30.0, cache_decimals=6,
        cache_ttl_s=3600.0)


def run_fleet_benchmark(smoke: bool,
                        worker_counts: Optional[Sequence[int]] = None,
                        clients: Optional[int] = None,
                        seed: int = 42) -> dict:
    """Per-worker-count scaling table over one shared ephemeris tier."""
    if worker_counts is None:
        worker_counts = SMOKE_WORKER_COUNTS if smoke \
            else FULL_WORKER_COUNTS
    if clients is None:
        clients = SMOKE_CLIENTS if smoke else FULL_CLIENTS
    horizon_s = SMOKE_HORIZON_S if smoke else FULL_HORIZON_S
    total_requests = max(256, 4 * clients)
    shared_dir = tempfile.mkdtemp(prefix="satiot-bench-fleet-")

    # Warm the shared segment tier once (a 1-worker fleet writes the
    # constellation-grid segments); every benchmarked fleet then opens
    # them via np.load(mmap_mode="r") — one resident grid machine-wide.
    warm = ServingFleet(_fleet_config(), FleetConfig(
        workers=1, ephemeris_dir=shared_dir))
    warm.start()
    try:
        warm.wait_ready()
        asyncio.run(_probe(warm.bound_port, horizon_s, seed + 7))
        _run_fleet_level(warm.bound_port, min(clients, 32), 64,
                         horizon_s, seed + 13)
    finally:
        warm.stop()

    levels: List[dict] = []
    probes: Dict[int, List[bytes]] = {}
    for workers in worker_counts:
        fleet = ServingFleet(_fleet_config(), FleetConfig(
            workers=workers, ephemeris_dir=shared_dir))
        port = fleet.start()
        try:
            fleet.wait_ready()
            probes[workers] = asyncio.run(
                _probe(port, horizon_s, seed + 7))
            # Fresh per-level coordinates: the disk tier is shared
            # across levels by design (that's the zero-copy story), so
            # reusing seeds would let later levels serve straight from
            # the on-disk pass cache and flatter their throughput.
            level = _run_fleet_level(port, clients, total_requests,
                                     horizon_s, seed + 7919 * workers)
            metrics = fleet.fleet_metrics()
            worker_rows = {}
            for wid, row in metrics["_workers"].items():
                worker_rows[wid] = {
                    "rss_max_kib": row.get("rss_max_kib"),
                    "ephemeris": row.get("ephemeris"),
                }
            level.update({
                "workers": workers,
                "mode": metrics["_fleet"]["mode"],
                "worker_rss_max_kib": max(
                    (row.get("rss_max_kib") or 0
                     for row in metrics["_workers"].values()),
                    default=0),
                "grid_mmap_bytes_max":
                    metrics["_fleet"]["grid_mmap_bytes_max"],
                "grid_private_bytes_total":
                    metrics["_fleet"]["grid_private_bytes_total"],
                "per_worker": worker_rows,
            })
            levels.append(level)
            lat = level["latency_ms"]
            print(f"  [fleet] workers={workers:2d}  "
                  f"{level['throughput_rps']:8.1f} req/s  "
                  f"p50 {lat['p50']:8.2f} ms  "
                  f"p99 {lat['p99']:8.2f} ms  "
                  f"worker rss {level['worker_rss_max_kib']:7d} KiB")
        finally:
            fleet.stop()

    baseline = levels[0]["throughput_rps"]
    scaling = {str(level["workers"]):
               round(level["throughput_rps"] / baseline, 2)
               for level in levels}
    payload = {
        "benchmark": "serving_fleet",
        "smoke": smoke,
        "horizon_s": horizon_s,
        "clients": clients,
        "requests_per_level": total_requests,
        "worker_counts": list(worker_counts),
        "scaling_vs_one_worker": scaling,
        "levels": levels,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "serving_fleet.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    lines = [f"Serving fleet scaling "
             f"({'smoke' if smoke else 'full'}, {clients} clients, "
             f"horizon {horizon_s / 3600.0:.0f} h)"]
    for level in levels:
        lat = level["latency_ms"]
        lines.append(
            f"  workers={level['workers']:2d} ({level['mode']:9s})  "
            f"{level['throughput_rps']:8.1f} req/s  "
            f"p50 {lat['p50']:8.2f} ms  p99 {lat['p99']:8.2f} ms  "
            f"rss {level['worker_rss_max_kib']:7d} KiB  "
            f"grid mmap/private "
            f"{level['grid_mmap_bytes_max']}/"
            f"{level['grid_private_bytes_total']} B")
    lines.append(f"  scaling vs 1 worker: {scaling}")
    (OUTPUT_DIR / "serving_fleet.txt").write_text(
        "\n".join(lines) + "\n")
    print("\n".join(lines))

    # Invariants that hold at any core count.
    reference = probes[worker_counts[0]]
    for workers, bodies in probes.items():
        assert bodies == reference, (
            f"fleet with {workers} workers served different bytes "
            f"than {worker_counts[0]} worker(s)")
    statuses = {status
                for level in levels for status in level["statuses"]}
    assert statuses == {"200"}, f"non-200 responses seen: {statuses}"
    for level in levels:
        assert level["grid_private_bytes_total"] == 0, (
            f"workers hold private grid copies at "
            f"workers={level['workers']}: "
            f"{level['grid_private_bytes_total']} bytes (zero-copy "
            f"mmap tier not engaged)")
        assert level["grid_mmap_bytes_max"] > 0, (
            f"no mmap-shared grid bytes at workers={level['workers']}")
    if not smoke:
        top = levels[-1]
        speedup = top["throughput_rps"] / baseline
        assert speedup >= FLEET_SPEEDUP_FLOOR, (
            f"fleet with {top['workers']} workers only {speedup:.2f}x "
            f"one worker at {clients} clients "
            f"(need >= {FLEET_SPEEDUP_FLOOR}x)")
    return payload


# ----------------------------------------------------------------------
def run_benchmark(smoke: bool, seed: int = 42) -> dict:
    concurrency_levels = SMOKE_CONCURRENCY if smoke else FULL_CONCURRENCY
    horizon_s = SMOKE_HORIZON_S if smoke else FULL_HORIZON_S
    results = {}
    for batching in (False, True):
        results["batched" if batching else "unbatched"] = asyncio.run(
            _bench_mode(batching, concurrency_levels, horizon_s,
                        coarse_step_s=30.0, seed=seed))

    top = concurrency_levels[-1]
    speedups = {}
    for batched_level, unbatched_level in zip(
            results["batched"]["levels"],
            results["unbatched"]["levels"]):
        c = batched_level["concurrency"]
        speedups[str(c)] = round(
            batched_level["throughput_rps"]
            / unbatched_level["throughput_rps"], 2)
    payload = {
        "benchmark": "serving_load",
        "smoke": smoke,
        "horizon_s": horizon_s,
        "concurrency_levels": list(concurrency_levels),
        "speedup_batched_vs_unbatched": speedups,
        "top_concurrency": top,
        "modes": results,
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "serving_load.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    lines = [f"Serving load — batched vs unbatched "
             f"({'smoke' if smoke else 'full'}, horizon "
             f"{horizon_s / 3600.0:.0f} h)"]
    for mode in ("unbatched", "batched"):
        for level in results[mode]["levels"]:
            lat = level["latency_ms"]
            lines.append(
                f"  {mode:9s} c={level['concurrency']:4d}  "
                f"{level['throughput_rps']:8.1f} req/s  "
                f"p50 {lat['p50']:8.2f} ms  p99 {lat['p99']:8.2f} ms")
    lines.append(f"  speedup at c={top}: {speedups[str(top)]}x")
    histogram = results["batched"]["server_metrics"][
        "batch_size_histogram"]
    lines.append(f"  batched batch-size histogram: {histogram}")
    (OUTPUT_DIR / "serving_load.txt").write_text(
        "\n".join(lines) + "\n")
    print("\n".join(lines))

    floor = SMOKE_SPEEDUP_FLOOR if smoke else FULL_SPEEDUP_FLOOR
    top_speedup = speedups[str(top)]
    assert top_speedup >= floor, (
        f"batched throughput only {top_speedup:.2f}x unbatched at "
        f"c={top} (need >= {floor}x)")
    statuses = {
        status
        for mode in results.values()
        for level in mode["levels"]
        for status in level["statuses"]}
    assert statuses == {"200"}, f"non-200 responses seen: {statuses}"
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="satiot.serving load benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (seconds, lower speedup "
                             "floor)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--server-workers", default=None,
                        metavar="K[,K...]",
                        help="fleet worker counts to sweep (default: "
                             "1,2 smoke / 1,2,4,8 full)")
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent clients per fleet level "
                             "(default: 64 smoke / 4096 full)")
    parser.add_argument("--fleet-only", action="store_true",
                        help="skip the batched-vs-unbatched phase")
    parser.add_argument("--no-fleet", action="store_true",
                        help="skip the multi-worker fleet phase")
    args = parser.parse_args(argv)
    if args.fleet_only and args.no_fleet:
        parser.error("--fleet-only and --no-fleet are exclusive")
    worker_counts = None
    if args.server_workers:
        worker_counts = tuple(
            int(k) for k in args.server_workers.split(",") if k.strip())
    if not args.fleet_only:
        run_benchmark(smoke=args.smoke, seed=args.seed)
    if not args.no_fleet:
        run_fleet_benchmark(smoke=args.smoke,
                            worker_counts=worker_counts,
                            clients=args.clients, seed=args.seed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
