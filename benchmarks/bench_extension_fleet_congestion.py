"""Extension — fleet-scale congestion (paper Section 3.1's warning).

Sweeps the regional background-device density and measures its effect
on the three monitored nodes: contention erodes uplink success, the
satellite's processing loss grows, and deliveries queue behind the
fleet's backlog at the downlink.
"""

import numpy as np

from satiot.constellations.catalog import build_constellation
from satiot.core.fleet import (FleetModel, congested_mac_config,
                               delivery_delay_under_load_s)
from satiot.core.report import format_table
from satiot.network.downlink import DownlinkConfig
from satiot.network.mac import MacConfig
from satiot.network.server import reliability_report
from satiot.network.store_forward import GroundSegment

from conftest import SEED, run_active, write_output

DENSITIES = (0.0, 50.0, 500.0, 2000.0)
ALTITUDE_KM = 856.0


def compute(shared_segment):
    out = {}
    constellation = build_constellation("tianqi", seed=SEED)
    epoch = constellation.satellites[0].tle.epoch
    unbatched = GroundSegment(constellation, epoch, 86400.0,
                              processing_batch_s=0.0)
    norad = constellation.satellites[0].norad_id
    for density in DENSITIES:
        fleet = FleetModel(device_density_per_mkm2=density)
        mac = congested_mac_config(fleet, ALTITUDE_KM, MacConfig())
        result = run_active(shared_segment, mac_config=mac)
        report = reliability_report(result.all_satellite_records())
        retx = result.retransmission_counts()
        delivery = delivery_delay_under_load_s(
            unbatched, fleet, constellation, 1000.0, norad,
            downlink=DownlinkConfig(throughput_bytes_s=2000.0))
        out[density] = (report.reliability,
                        float(np.mean(retx)) if retx else 0.0,
                        fleet.expected_contenders(ALTITUDE_KM),
                        (delivery - 1000.0) / 60.0
                        if delivery is not None else None)
    return out


def test_extension_fleet_congestion(benchmark, shared_ground_segment):
    sweep = benchmark.pedantic(compute, args=(shared_ground_segment,),
                               rounds=1, iterations=1)
    rows = [[density, contenders, rel, retx, delay]
            for density, (rel, retx, contenders, delay)
            in sweep.items()]
    table = format_table(
        ["Fleet density (/Mkm^2)", "contenders/beacon", "reliability",
         "mean retx", "delivery delay (min)"],
        rows, precision=2,
        title="Extension: background fleet congestion vs monitored "
              "nodes")
    write_output("extension_fleet_congestion", table)

    rels = [sweep[d][0] for d in DENSITIES]
    retxs = [sweep[d][1] for d in DENSITIES]
    # Congestion monotonically erodes the link (within noise for the
    # sparse end) and inflates retransmissions.
    assert rels[0] >= rels[-1]
    assert retxs[-1] > retxs[0]
    delays = [sweep[d][3] for d in DENSITIES if sweep[d][3] is not None]
    assert delays == sorted(delays)
