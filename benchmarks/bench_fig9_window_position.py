"""Figure 9 — where within a contact window beacons are received.

Paper Appendix C: 70.4 % of successful receptions occur in the middle
30-70 % of the window; losses concentrate at the low-elevation edges.
"""

import numpy as np

from satiot.core.contacts import (mid_window_fraction,
                                  window_position_fractions)
from satiot.core.report import format_table

from conftest import write_output

BINS = np.linspace(0.0, 1.0, 11)


def compute(result):
    receptions = [r for sr in result.site_results.values()
                  for r in sr.receptions]
    positions = window_position_fractions(receptions)
    histogram, _ = np.histogram(positions, bins=BINS)
    return positions, histogram, mid_window_fraction(receptions)


def test_fig9_window_positions(benchmark, passive_continent):
    positions, histogram, mid = benchmark(compute, passive_continent)
    total = histogram.sum()
    rows = [[f"{BINS[i]:.1f}-{BINS[i + 1]:.1f}", int(histogram[i]),
             histogram[i] / total]
            for i in range(len(histogram))]
    table = format_table(
        ["Window position", "#receptions", "fraction"],
        rows, precision=3,
        title="Figure 9: beacon receptions within a contact window "
              f"(middle 30-70%: {mid:.1%}; paper 70.4%)")
    write_output("fig9_window_position", table)

    assert 0.5 < mid < 0.95
    # Edge bins are depleted relative to the centre.
    centre = histogram[4] + histogram[5]
    edges = histogram[0] + histogram[-1]
    assert centre > 2 * edges
