"""Figure 3d — per-contact beacon reception, sunny vs rainy.

Paper: >50 % of Tianqi beacons are dropped even on sunny days.
"""

import numpy as np

from satiot.core.contacts import reception_rates_by_weather
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    out = {}
    for name in result.constellations:
        receptions = [r for code in result.site_results
                      for r in result.receptions(code, name)]
        sunny, rainy = reception_rates_by_weather(receptions)
        out[name] = (sunny, rainy)
    return out


def test_fig3d_beacon_reception_by_weather(benchmark, passive_continent):
    rates = benchmark(compute, passive_continent)
    rows = []
    for name, (sunny, rainy) in sorted(rates.items()):
        rows.append([
            passive_continent.constellations[name].name,
            float(np.mean(sunny)) if sunny else None, len(sunny),
            float(np.mean(rainy)) if rainy else None, len(rainy),
        ])
    table = format_table(
        ["Constellation", "sunny rx rate", "#contacts",
         "rainy rx rate", "#contacts"],
        rows, precision=3,
        title="Figure 3d: beacon reception per contact "
              "(paper: >50 % dropped even sunny)")
    write_output("fig3d_beacon_loss", table)

    sunny, rainy = rates["tianqi"]
    assert np.mean(sunny) < 0.5        # >50 % loss even when sunny
    if len(rainy) >= 10:
        assert np.mean(rainy) <= np.mean(sunny) + 0.05
