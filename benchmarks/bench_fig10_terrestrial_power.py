"""Figure 10 — terrestrial node per-mode power consumption.

Paper measurements: Tx 1,630 mW, Rx 265 mW, Standby 146 mW,
Sleep 19.1 mW.  These values are carried verbatim by the profile; the
bench verifies the profile and the per-packet energy costing built on
top of it.
"""

import pytest

from satiot.core.references import TERRESTRIAL_POWER_MW as PAPER_MW
from satiot.core.report import format_table
from satiot.energy.behavior import TerrestrialBehavior
from satiot.energy.profiles import TERRESTRIAL_NODE_PROFILE

from conftest import write_output


def compute():
    behavior = TerrestrialBehavior()
    per_packet_mj = (behavior.modulation.airtime_s(20)
                     * TERRESTRIAL_NODE_PROFILE.tx_mw)
    return TERRESTRIAL_NODE_PROFILE.as_dict(), per_packet_mj


def test_fig10_terrestrial_power(benchmark):
    powers, per_packet = benchmark(compute)
    rows = [[mode, powers[mode], PAPER_MW[mode]]
            for mode in ("tx", "rx", "standby", "sleep")]
    table = format_table(
        ["Mode", "profile (mW)", "paper (mW)"],
        rows, precision=1,
        title="Figure 10: terrestrial node power consumption")
    table += f"\nTx energy per 20-byte packet: {per_packet:.1f} mW*s"
    write_output("fig10_terrestrial_power", table)

    for mode, value in PAPER_MW.items():
        assert powers[mode] == pytest.approx(value)
