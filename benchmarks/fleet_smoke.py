#!/usr/bin/env python
"""CI smoke: ``satiot serve --workers 2`` is byte-identical to 1 worker.

Drives the real CLI end to end — fork, port parsing from the banner,
SIGINT shutdown — not the in-process ServingFleet API (the test suite
covers that).  A deterministic request burst is replayed against

* ``--workers 1``  (the plain single-process server), then
* ``--workers 2``  (a supervised fleet),

and every response body must match byte for byte.  Exit status is the
verdict, so CI can run this file directly:

    PYTHONPATH=src python benchmarks/fleet_smoke.py
"""

import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

BANNER = re.compile(r"satiot serving on http://[\d.]+:(\d+)")

PATHS = tuple(
    f"/v1/passes?constellation=pico&lat={lat:.6f}&lon={lon:.6f}"
    f"&horizon_s=3600&min_elevation_deg=10"
    for lat, lon in ((22.3, 114.2), (-33.9, 18.4), (64.1, -21.9),
                     (1.35, 103.8), (48.85, 2.35), (-12.05, -77.05)))


def start_server(workers: int, cache_dir: str):
    cmd = [sys.executable, "-m", "satiot", "serve", "--port", "0",
           "--constellations", "pico", "--step", "120",
           "--workers", str(workers), "--cache-dir", cache_dir]
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            env=env)
    deadline = time.monotonic() + 180.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server (workers={workers}) exited before its banner "
                f"(rc={proc.poll()})")
        sys.stdout.write(line)
        match = BANNER.search(line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise RuntimeError(f"no banner within 180 s (workers={workers})")


def fetch(port: int, path: str, retries: int = 100) -> bytes:
    last = None
    for _ in range(retries):
        try:
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=10.0) as sock:
                sock.sendall((f"GET {path} HTTP/1.1\r\nHost: s\r\n"
                              f"Connection: close\r\n\r\n").encode())
                data = b""
                while chunk := sock.recv(65536):
                    data += chunk
            head, sep, body = data.partition(b"\r\n\r\n")
            if not sep:
                raise OSError("truncated response")
            status = int(head.split(b" ", 2)[1])
            if status != 200:
                raise RuntimeError(f"{path} -> {status}: {body[:200]}")
            return body
        except OSError as error:
            last = error
            time.sleep(0.05)
    raise RuntimeError(f"unreachable after {retries} tries: {last}")


def burst(workers: int, cache_dir: str):
    proc, port = start_server(workers, cache_dir)
    try:
        return [fetch(port, path) for path in PATHS]
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def main() -> int:
    with tempfile.TemporaryDirectory(
            prefix="satiot-fleet-smoke-") as cache_dir:
        single = burst(1, cache_dir)
        fleet = burst(2, cache_dir)
    mismatches = [path for path, a, b in zip(PATHS, single, fleet)
                  if a != b]
    if mismatches:
        print(f"FAIL: {len(mismatches)}/{len(PATHS)} payloads differ "
              f"between --workers 1 and --workers 2:")
        for path in mismatches:
            print(f"  {path}")
        return 1
    print(f"OK: {len(PATHS)}/{len(PATHS)} payloads byte-identical "
          f"across --workers 1 and --workers 2")
    return 0


if __name__ == "__main__":
    sys.exit(main())
