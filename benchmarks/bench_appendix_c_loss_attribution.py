"""Appendix C — attribution of beacon losses to their causes.

The paper lists three loss factors (long communication distances,
Doppler, limited device capability) without quantifying their shares;
the simulator knows every deterministic link term, so this bench does:
for each constellation, lost beacons are attributed to distance, to the
low-elevation excess regime, or to fading/stochastic causes.
"""

from satiot.core.beacon_loss import attribute_losses
from satiot.core.report import format_table

from conftest import write_output


def compute(result):
    out = {}
    for name, constellation in result.constellations.items():
        receptions = [r for code in result.site_results
                      for r in result.receptions(code, name)]
        radio = constellation.radio
        out[constellation.name] = attribute_losses(
            receptions,
            eirp_dbm=radio.beacon_eirp_dbm,
            frequency_hz=radio.frequency_hz)
    return out


def test_appendix_c_loss_attribution(benchmark, passive_continent):
    attributions = benchmark(compute, passive_continent)
    rows = []
    for name, attribution in sorted(attributions.items()):
        shares = attribution.shares()
        rows.append([
            name, attribution.total_beacons,
            attribution.reception_rate,
            shares["distance"], shares["elevation"], shares["fading"],
        ])
    table = format_table(
        ["Constellation", "#beacons", "rx rate", "lost: distance",
         "lost: low elevation", "lost: fading"],
        rows, precision=3,
        title="Appendix C: beacon-loss attribution by link regime")
    write_output("appendix_c_loss_attribution", table)

    for attribution in attributions.values():
        lost = attribution.total_beacons - attribution.received
        attributed = (attribution.lost_to_distance
                      + attribution.lost_to_elevation
                      + attribution.lost_to_fading)
        assert attributed == lost
        # The deterministic link regimes explain a real share of loss.
        shares = attribution.shares()
        assert shares["distance"] + shares["elevation"] > 0.2
