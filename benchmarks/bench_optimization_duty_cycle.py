"""Optimization study — pass-prediction-based receiver duty cycling.

The paper's conclusion calls for energy optimization of DtS nodes; the
dominant drain is the always-on monitoring receiver.  This bench runs
the wake-plan optimizer over real predicted passes at the Yunnan site
and quantifies the battery-life/latency trade.
"""

from satiot.constellations.catalog import build_constellation
from satiot.core.active import YUNNAN_PLANTATION
from satiot.core.report import format_table
from satiot.energy import Battery, TianqiBehavior
from satiot.energy.optimizer import plan_wake_windows
from satiot.orbits.passes import PassPredictor

from conftest import SEED, write_output

DAYS = 2.0
BUDGETS_H = (2.0, 4.0, 8.0, 24.0)


def compute():
    constellation = build_constellation("tianqi", seed=SEED)
    epoch = constellation.satellites[0].tle.epoch
    span_s = DAYS * 86400.0
    windows = []
    for satellite in constellation:
        predictor = PassPredictor(satellite.propagator,
                                  YUNNAN_PLANTATION)
        windows.extend(predictor.find_passes(epoch, span_s))

    behavior = TianqiBehavior()
    battery = Battery()
    attempts = [(0.0, 20)] * int(48 * DAYS * 1.5)

    out = {}
    # Baseline: receiver on whenever a satellite is predicted overhead.
    from satiot.core.stats import merge_intervals, total_length
    always_rx = total_length(merge_intervals(
        (w.rise_s, w.set_s) for w in windows))
    baseline = behavior.timeline(span_s, always_rx, attempts).breakdown()
    out["always on (paper)"] = (always_rx / span_s, always_rx / span_s,
                                battery.lifetime_days_from_breakdown(
                                    baseline), 0.3)
    for budget_h in BUDGETS_H:
        plan = plan_wake_windows(windows, span_s, budget_h * 3600.0)
        timeline = behavior.timeline(span_s, min(plan.rx_on_s, span_s),
                                     attempts)
        days = battery.lifetime_days_from_breakdown(timeline.breakdown())
        out[f"wake plan, {budget_h:g} h budget"] = (
            plan.rx_duty_cycle, plan.worst_gap_s() / 3600.0, days,
            len(plan.selected) / DAYS)
    return out


def test_optimization_duty_cycle(benchmark):
    sweep = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for name, (duty, gap_or_duty, days, wakes) in sweep.items():
        rows.append([name, duty, gap_or_duty, days, wakes])
    table = format_table(
        ["Policy", "Rx duty", "worst gap (h) / duty", "battery (days)",
         "wakes/day"],
        rows, precision=2,
        title="Optimization: receiver duty cycling vs battery life "
              "(paper: always-on -> 48 days)")
    write_output("optimization_duty_cycle", table)

    baseline_days = sweep["always on (paper)"][2]
    best_days = sweep["wake plan, 24 h budget"][2]
    # Duty cycling recovers a large factor of battery life.
    assert best_days > 3 * baseline_days
    # Tighter budgets cost energy monotonically.
    ordered = [sweep[f"wake plan, {b:g} h budget"][2]
               for b in BUDGETS_H]
    assert ordered == sorted(ordered)
