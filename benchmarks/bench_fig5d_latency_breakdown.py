"""Figure 5d — decomposition of Tianqi's end-to-end latency.

Paper: waiting for a satellite pass 55.2 min, DtS (re)transmissions
10.4 min, Tianqi delivery 56.9 min.
"""

from satiot.core.references import LATENCY_DECOMPOSITION_MIN as PAPER
from satiot.core.report import format_table
from satiot.network.server import latency_decomposition_minutes

from conftest import write_output


def compute(result):
    return latency_decomposition_minutes(result.all_satellite_records())


def test_fig5d_latency_breakdown(benchmark, active_default):
    decomposition = benchmark(compute, active_default)
    rows = [
        ["(1) waiting for satellite pass", decomposition["wait_min"],
         PAPER["wait_min"]],
        ["(2) DtS (re)transmissions", decomposition["dts_min"],
         PAPER["dts_min"]],
        ["(3) Tianqi delivery", decomposition["delivery_min"],
         PAPER["delivery_min"]],
        ["total", decomposition["total_min"], PAPER["total_min"]],
    ]
    table = format_table(
        ["Segment", "measured (min)", "paper (min)"],
        rows, precision=1,
        title="Figure 5d: Tianqi latency decomposition")
    write_output("fig5d_latency_breakdown", table)

    # Shape: segments 1 and 3 dominate; DtS is the small one.
    assert decomposition["wait_min"] > decomposition["dts_min"]
    assert decomposition["delivery_min"] > decomposition["dts_min"]
    total = (decomposition["wait_min"] + decomposition["dts_min"]
             + decomposition["delivery_min"])
    assert abs(total - decomposition["total_min"]) < 0.5
