#!/usr/bin/env python3
"""Export every paper figure's data series to CSV for plotting.

Runs a small passive + active campaign, builds the plottable series of
each figure via :mod:`satiot.core.figures`, and writes one CSV per
series under ``figure_data/`` — ready for matplotlib, gnuplot or a
spreadsheet.

Run:  python examples/figures_export.py [outdir]
"""

import csv
import sys
from pathlib import Path

from satiot import (ActiveCampaign, ActiveCampaignConfig, PassiveCampaign,
                    PassiveCampaignConfig)
from satiot.core import figures


def write_series(outdir: Path, figure_series) -> int:
    count = 0
    for name, (x, y) in figure_series.series.items():
        safe = name.replace(" ", "_").replace("/", "-")
        path = outdir / f"fig{figure_series.figure}_{safe}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow([figure_series.xlabel, figure_series.ylabel])
            writer.writerows(zip(x, y))
        count += 1
    return count


def main(outdir: str = "figure_data") -> None:
    out = Path(outdir)
    out.mkdir(exist_ok=True)

    print("Running passive campaign (HK + SYD, 1 day) ...")
    passive = PassiveCampaign(PassiveCampaignConfig(
        sites=("HK", "SYD"), days=1.0, seed=42)).run()
    print("Running active campaign (2 days) ...")
    active = ActiveCampaign(ActiveCampaignConfig(days=2.0, seed=42)).run()

    written = 0
    written += write_series(out, figures.fig3a_presence_bars(passive))
    written += write_series(out, figures.fig3b_rssi_cdfs(passive))
    written += write_series(out,
                            figures.fig3c_rssi_vs_distance_curve(passive))
    written += write_series(out, figures.fig4a_duration_cdfs(passive))
    written += write_series(out, figures.fig4b_interval_cdfs(passive))
    written += write_series(out, figures.fig8_distance_cdfs(passive))
    written += write_series(out, figures.fig9_window_histogram(passive))
    written += write_series(out, figures.fig5b_retransmission_cdf(
        active.all_satellite_records()))
    written += write_series(out, figures.fig5c_latency_cdfs(
        active.all_satellite_records(),
        active.all_terrestrial_records()))
    print(f"Wrote {written} series files under {out}/")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figure_data")
