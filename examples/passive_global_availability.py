#!/usr/bin/env python3
"""Passive campaign: global availability of satellite IoT constellations.

Reproduces the paper's Section 3.1 workflow at small scale: deploy
TinyGS-style stations at the four continent sites, passively collect
beacon traces from all four constellations for a day, and report the
theoretical-vs-effective contact statistics behind Figures 3a and 4.

Run:  python examples/passive_global_availability.py [days]
"""

import sys

import numpy as np

from satiot import PassiveCampaign, PassiveCampaignConfig, analyze_contacts
from satiot.core.contacts import aggregate_stats
from satiot.core.contacts import mid_window_fraction
from satiot.core.report import format_table


def main(days: float = 1.0) -> None:
    config = PassiveCampaignConfig(
        sites=("HK", "SYD", "LDN", "PGH"), days=days, seed=42)
    print(f"Running passive campaign: {len(config.sites)} sites, "
          f"{days:g} day(s), 39 satellites ...")
    result = PassiveCampaign(config).run()
    print(f"Collected {result.total_traces} beacon traces\n")

    rows = []
    for name, constellation in sorted(result.constellations.items()):
        receptions = [r for code in result.site_results
                      for r in result.receptions(code, name)]
        stats = aggregate_stats(
            [analyze_contacts(result.receptions(code, name),
                              result.duration_s)
             for code in result.site_results])
        rows.append([
            constellation.name, len(constellation),
            stats.theoretical_daily_hours, stats.effective_daily_hours,
            100.0 * stats.duration_shrinkage,
            np.mean(stats.effective_durations_s) / 60.0,
            mid_window_fraction(receptions),
        ])
    print(format_table(
        ["Constellation", "#SATs", "theo (h/day)", "eff (h/day)",
         "shrink (%)", "eff contact (min)", "mid-window frac"],
        rows, precision=1,
        title="Contact-window statistics across the four continent sites"))

    print("\nPaper touchstones: Tianqi 18.5 h theoretical vs 1.8 h "
          "effective; shrinkage 85.7-92.2 %; 70.4 % of receptions in "
          "the middle of the window.")

    # Persist the dataset like the paper's packet-trace archive.
    out = "passive_traces.csv"
    result.dataset.to_csv(out)
    print(f"\nWrote {result.total_traces} traces to {out}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
