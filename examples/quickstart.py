#!/usr/bin/env python3
"""Quickstart: track a Tianqi satellite and listen for its beacons.

Builds the Tianqi constellation from the paper's Table 3 parameters,
predicts today's passes over Hong Kong, simulates beacon reception
through one pass with the calibrated DtS channel, and prints the trace —
the smallest end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

from satiot import GeodeticPoint, PassPredictor, build_constellation
from satiot.groundstation import BeaconReceiver, GroundStation, Scheduler
from satiot.sim import RngStreams


def main() -> None:
    # 1. The Tianqi constellation (22 satellites, three shells).
    tianqi = build_constellation("tianqi")
    epoch = tianqi.satellites[0].tle.epoch
    print(f"Constellation: {tianqi.name}, {len(tianqi)} satellites, "
          f"DtS at {tianqi.radio.frequency_hz / 1e6:.2f} MHz")

    # 2. Predict one satellite's passes over Hong Kong for a day.
    hong_kong = GeodeticPoint(22.30, 114.17)
    satellite = tianqi.satellites[0]
    predictor = PassPredictor(satellite.propagator, hong_kong)
    windows = predictor.find_passes(epoch, 86400.0)
    print(f"\n{satellite.name}: {len(windows)} passes over Hong Kong "
          "in 24 h")
    for w in windows:
        print(f"  rise +{w.rise_s / 3600:5.2f} h  "
              f"duration {w.duration_s / 60:5.1f} min  "
              f"max elevation {w.max_elevation_deg:5.1f} deg")

    # 3. Deploy a $30 TinyGS-style station and schedule it.
    station = GroundStation("HK-1", "HK", hong_kong)
    scheduler = Scheduler([station])
    schedule = scheduler.build_schedule(list(tianqi), epoch, 43200.0)
    print(f"\nScheduler assigned {len(schedule.assigned)} passes "
          f"({schedule.coverage:.0%} of predicted windows) to HK-1")

    # 4. Listen through the best pass and inspect the beacon trace.
    receiver = BeaconReceiver()
    streams = RngStreams(seed=7)
    best = max(schedule.assigned,
               key=lambda sp: sp.window.max_elevation_deg)
    reception = receiver.receive_pass(best, epoch, pass_id="HK-demo-0",
                                      rng=streams.get("demo"))
    print(f"\nBest pass ({best.satellite.name}, max el "
          f"{best.window.max_elevation_deg:.0f} deg): "
          f"{reception.beacons_received}/{reception.beacons_sent} beacons "
          f"decoded, effective window "
          f"{reception.effective_duration_s / 60:.1f} of "
          f"{best.window.duration_s / 60:.1f} min")
    for trace in reception.traces[:5]:
        print(f"  t+{trace.time_s - best.window.rise_s:6.1f}s  "
              f"RSSI {trace.rssi_dbm:7.1f} dBm  SNR {trace.snr_db:6.1f} dB"
              f"  el {trace.elevation_deg:5.1f} deg  "
              f"range {trace.range_km:6.0f} km")
    if len(reception.traces) > 5:
        print(f"  ... and {len(reception.traces) - 5} more")


if __name__ == "__main__":
    main()
