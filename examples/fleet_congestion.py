#!/usr/bin/env python3
"""What happens when satellite IoT actually gets popular?

The paper warns that a satellite's footprint covers thousands of km²
holding many devices, so bursty concurrent uplinks will pressure the
satellites.  This example sweeps the regional device density and shows
the three effects on a deployment like the paper's: beacon contention,
satellite-side losses, and downlink queueing.

Run:  python examples/fleet_congestion.py
"""

from satiot.constellations.catalog import build_constellation
from satiot.core.fleet import (FleetModel, congested_mac_config,
                               delivery_delay_under_load_s)
from satiot.core.report import format_table
from satiot.network.downlink import DownlinkConfig
from satiot.network.mac import MacConfig
from satiot.network.store_forward import GroundSegment

ALTITUDE_KM = 856.0   # Tianqi main shell


def main() -> None:
    constellation = build_constellation("tianqi")
    epoch = constellation.satellites[0].tle.epoch
    segment = GroundSegment(constellation, epoch, 86400.0,
                            processing_batch_s=0.0)
    norad = constellation.satellites[0].norad_id

    rows = []
    for density in (0.0, 10.0, 100.0, 1000.0, 5000.0):
        fleet = FleetModel(device_density_per_mkm2=density)
        mac = congested_mac_config(fleet, ALTITUDE_KM, MacConfig())
        delivery = delivery_delay_under_load_s(
            segment, fleet, constellation, 1000.0, norad,
            downlink=DownlinkConfig(throughput_bytes_s=2000.0))
        rows.append([
            density,
            fleet.devices_in_footprint(ALTITUDE_KM),
            fleet.expected_contenders(ALTITUDE_KM),
            mac.capture_probability[1],
            mac.satellite_loss_probability,
            (delivery - 1000.0) / 60.0 if delivery else None,
        ])
    print(format_table(
        ["density (/Mkm^2)", "devices in footprint",
         "contenders/beacon", "solo capture prob", "satellite loss",
         "delivery delay (min)"],
        rows, precision=3,
        title="Fleet congestion at the Tianqi main shell"))

    print("\nReading: already at tens of devices per million km² an "
          "uncoordinated uplink's capture probability collapses, and "
          "at thousands the satellite-side loss and downlink queueing "
          "become visible — the regime where the constellation-aware "
          "MAC policies in satiot.network.policies become necessary.")


if __name__ == "__main__":
    main()
