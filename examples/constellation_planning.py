#!/usr/bin/env python3
"""Constellation planning: how many satellites for continuous service?

The paper's takeaway is that today's IoT constellations provide only
intermittent connectivity.  This example uses the library as a design
tool — the "potential optimizations" direction of the paper — sweeping
constellation size and altitude to see how daily presence, contact
intervals and store-and-forward buffer needs evolve.

Run:  python examples/constellation_planning.py
"""

import numpy as np

from satiot.constellations.catalog import (ConstellationSpec,
                                           DtSRadioProfile,
                                           build_constellation)
from satiot.constellations.shells import ShellSpec
from satiot.core.availability import daily_presence_hours
from satiot.core.report import format_table
from satiot.core.stats import interval_gaps, merge_intervals
from satiot.orbits.frames import GeodeticPoint
from satiot.orbits.passes import PassPredictor

SITE = GeodeticPoint(21.95, 100.85, 1.2)  # the paper's Yunnan site
READING_BYTES = 20
READING_INTERVAL_S = 1800.0


def build_custom(count: int, altitude_km: float, inclination: float):
    spec = ConstellationSpec(
        name=f"PLAN-{count}",
        operator_region="design study",
        shells=(ShellSpec(f"P{count}", count=count,
                          altitude_min_km=altitude_km - 10.0,
                          altitude_max_km=altitude_km + 10.0,
                          inclination_deg=inclination),),
        radio=DtSRadioProfile(frequency_hz=400.45e6),
        norad_base=70000 + count,
    )
    return build_constellation(spec.name, spec=spec)


def contact_gaps_minutes(constellation, site, epoch, days=1.0):
    spans = []
    for satellite in constellation:
        predictor = PassPredictor(satellite.propagator, site)
        for window in predictor.find_passes(epoch, days * 86400.0):
            spans.append((window.rise_s, window.set_s))
    merged = merge_intervals(spans)
    gaps = interval_gaps(merged, 0.0, days * 86400.0)
    return [g / 60.0 for g in gaps]


def main() -> None:
    rows = []
    for count in (4, 8, 16, 32, 64):
        constellation = build_custom(count, 600.0, 97.5)
        epoch = constellation.satellites[0].tle.epoch
        hours = daily_presence_hours(constellation, SITE, epoch)
        gaps = contact_gaps_minutes(constellation, SITE, epoch)
        max_gap = max(gaps) if gaps else 0.0
        # Store-and-forward buffer: readings accumulated over the worst
        # gap (the paper: "buffer size should be determined based on the
        # duration and interval characteristics of contact windows").
        buffer_bytes = int(np.ceil(max_gap * 60.0 / READING_INTERVAL_S)
                           * READING_BYTES)
        rows.append([count, hours,
                     float(np.mean(gaps)) if gaps else 0.0, max_gap,
                     buffer_bytes])
    print(format_table(
        ["#SATs @600 km SSO", "presence (h/day)", "mean gap (min)",
         "max gap (min)", "node buffer (bytes)"],
        rows, precision=1,
        title="Constellation sizing for the Yunnan site "
              "(theoretical coverage)"))

    print("\nFor calibration, today's constellations at the same site:")
    rows = []
    for name in ("fossa", "cstp", "pico", "tianqi"):
        constellation = build_constellation(name)
        epoch = constellation.satellites[0].tle.epoch
        hours = daily_presence_hours(constellation, SITE, epoch)
        rows.append([constellation.name, len(constellation), hours])
    print(format_table(["Constellation", "#SATs", "presence (h/day)"],
                       rows, precision=1))


if __name__ == "__main__":
    main()
