#!/usr/bin/env python3
"""Energy budgeting: what would make satellite IoT nodes last?

The paper identifies the always-on DtS receiver as the battery killer
(14.9x drain vs terrestrial).  This example explores the optimization
space the paper's conclusion calls for: duty-cycling the monitoring
receiver using pass predictions, and lowering the retransmission budget.

Run:  python examples/energy_budget.py
"""

from satiot.core.report import format_table
from satiot.energy import Battery, TerrestrialBehavior, TianqiBehavior

DAY = 86400.0
PACKETS_PER_DAY = 48
PAYLOAD = 20


def tianqi_lifetime(monitoring_fraction: float,
                    retransmissions_per_packet: float) -> float:
    """Battery life (days) for a Tianqi node duty-cycling its receiver.

    ``monitoring_fraction`` is the share of the day the DtS receiver is
    on; the paper's node keeps it on whenever a satellite is predicted
    overhead (~78 % of the day at the Yunnan site).
    """
    behavior = TianqiBehavior()
    attempts_per_day = PACKETS_PER_DAY * (1.0 + retransmissions_per_packet)
    attempts = [(0.0, PAYLOAD)] * int(round(attempts_per_day))
    timeline = behavior.timeline(DAY, monitoring_fraction * DAY, attempts)
    return Battery().lifetime_days_from_breakdown(timeline.breakdown())


def main() -> None:
    terrestrial = TerrestrialBehavior().timeline(
        DAY, [PAYLOAD] * PACKETS_PER_DAY)
    terrestrial_days = Battery().lifetime_days_from_breakdown(
        terrestrial.breakdown())
    print(f"Terrestrial reference: {terrestrial_days:.0f} days "
          "(paper: 718)\n")

    rows = []
    for monitoring, label in [
            (0.78, "paper behaviour: Rx on for every predicted pass"),
            (0.40, "Rx only for passes above 20 deg max elevation"),
            (0.15, "Rx only for the best 2-3 passes per day"),
            (0.05, "scheduled wake-ups, one pass per day"),
    ]:
        for retx in (1.5, 0.5):
            days = tianqi_lifetime(monitoring, retx)
            rows.append([label if retx == 1.5 else "", monitoring, retx,
                         days, days / terrestrial_days])
    print(format_table(
        ["Monitoring policy", "Rx duty", "retx/pkt",
         "battery (days)", "vs terrestrial"],
        rows, precision=2,
        title="DtS receiver duty-cycling: the optimization space the "
              "paper calls for"))

    print("\nTakeaway: the monitoring receiver, not the 2.2x Tx power, "
          "dominates the drain; pass-prediction-based wake-up recovers "
          "an order of magnitude of battery life at the cost of longer "
          "data latency.")


if __name__ == "__main__":
    main()
