#!/usr/bin/env python3
"""Operator ground stations vs the crowd-sourced community network.

Tianqi delivers data through 12 ground stations, all in China — one of
the two big latency segments the paper measures.  The works the paper
cites (L2D2, community ground stations) propose using volunteer
networks like TinyGS's ~1,800 stations as a distributed downlink.  This
example quantifies what that would buy: how often a Tianqi satellite is
within range of someone who could take its data.

Run:  python examples/community_downlink.py
"""

from satiot.constellations.catalog import build_constellation
from satiot.core.report import format_table
from satiot.groundstation.community import CommunityNetwork
from satiot.network.store_forward import (TIANQI_GROUND_STATIONS,
                                          GroundSegment)


def main() -> None:
    constellation = build_constellation("tianqi")
    epoch = constellation.satellites[0].tle.epoch
    satellite = constellation.satellites[0]

    print("Building the operator baseline (12 stations in China) ...")
    segment = GroundSegment(constellation, epoch, 86400.0,
                            TIANQI_GROUND_STATIONS)
    operator_gap_h = segment.mean_gap_hours(satellite.norad_id)

    rows = []
    for count in (12, 100, 400, 1800):
        network = CommunityNetwork.synthesize(count=count, seed=0)
        visible = network.visibility_fraction(
            satellite.propagator, epoch, span_s=21600.0, step_s=60.0)
        gap_min = network.mean_gap_to_contact_s(
            satellite.propagator, epoch, span_s=21600.0,
            step_s=60.0) / 60.0
        rows.append([count, visible, gap_min])
    print(format_table(
        ["#community stations", "time visible to someone",
         "mean contact gap (min)"],
        rows, precision=2,
        title="Community downlink coverage of one Tianqi satellite"))
    print(f"\nOperator baseline: mean gap between Chinese "
          f"ground-station contacts = {operator_gap_h * 60.0:.0f} min")
    print("\nReading: a TinyGS-scale volunteer network keeps the "
          "satellite within range of a receiver most of the time, "
          "turning the paper's ~55-minute delivery segment into a "
          "minutes-scale one — if the operator trusted third-party "
          "downlink (the L2D2 proposition).")


if __name__ == "__main__":
    main()
