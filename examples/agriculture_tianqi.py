#!/usr/bin/env python3
"""Active campaign: the paper's smart-agriculture deployment.

Three battery-powered Tianqi nodes at a Yunnan coffee plantation send a
20-byte reading every 30 minutes through the Tianqi constellation, with
a terrestrial LoRaWAN carrying the same readings for comparison —
the Section 3.2 experiment, reproduced end to end: reliability, latency
decomposition, retransmissions, energy, battery life and service cost.

Run:  python examples/agriculture_tianqi.py [days]
"""

import sys


from satiot import ActiveCampaign, ActiveCampaignConfig
from satiot.core.energy_analysis import compare_energy
from satiot.core.performance import (compare_systems,
                                     retransmission_histogram)
from satiot.core.report import format_kv, format_table
from satiot.econ.pricing import TIANQI_COSTS, TERRESTRIAL_COSTS


def main(days: float = 3.0) -> None:
    config = ActiveCampaignConfig(days=days, seed=42)
    print(f"Running active campaign: 3 Tianqi nodes + terrestrial "
          f"LoRaWAN, {days:g} day(s) at the Yunnan plantation ...")
    result = ActiveCampaign(config).run()

    comparison = compare_systems(result.all_satellite_records(),
                                 result.all_terrestrial_records())
    print("\n" + format_kv([
        ("satellite reliability", comparison.satellite_reliability),
        ("terrestrial reliability", comparison.terrestrial_reliability),
        ("satellite latency (min)", comparison.satellite_latency_min),
        ("terrestrial latency (min)", comparison.terrestrial_latency_min),
        ("latency ratio (paper 643.6x)", comparison.latency_ratio),
    ], precision=3, title="End-to-end performance"))

    print("\n" + format_kv([
        ("(1) waiting for pass (min)", comparison.wait_min),
        ("(2) DtS (re)transmissions (min)", comparison.dts_min),
        ("(3) Tianqi delivery (min)", comparison.delivery_min),
    ], precision=1, title="Latency decomposition (paper 55.2/10.4/56.9)"))

    hist = retransmission_histogram(result.all_satellite_records())
    rows = [[k, v] for k, v in hist.items()]
    print("\n" + format_table(["DtS retransmissions", "fraction"], rows,
                              precision=3))

    tianqi_energy = next(iter(result.tianqi_energy.values()))
    terrestrial_energy = next(iter(result.terrestrial_energy.values()))
    energy = compare_energy(tianqi_energy, terrestrial_energy)
    print("\n" + format_kv([
        ("Tianqi avg power (mW)", energy.tianqi_avg_power_mw),
        ("terrestrial avg power (mW)", energy.terrestrial_avg_power_mw),
        ("battery drain ratio (paper 14.9x)", energy.drain_ratio),
        ("Tianqi battery life (days, paper 48)",
         energy.tianqi_battery_days),
        ("terrestrial battery life (days, paper 718)",
         energy.terrestrial_battery_days),
    ], precision=1, title="Energy"))

    packets_per_day = 48.0
    print("\n" + format_kv([
        ("Tianqi node hardware ($)", TIANQI_COSTS.device_cost_usd),
        ("Tianqi service ($/month, paper 23.76)",
         TIANQI_COSTS.monthly_data_cost_usd(packets_per_day, 20)),
        ("terrestrial node + gateway ($)",
         TERRESTRIAL_COSTS.end_node_cost_usd
         + TERRESTRIAL_COSTS.gateway_cost_usd),
        ("LTE backhaul ($/month)",
         TERRESTRIAL_COSTS.monthly_data_cost_usd(1)),
    ], precision=2, title="Costs (paper Table 2)"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 3.0)
